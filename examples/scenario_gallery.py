#!/usr/bin/env python
"""Scenario gallery: drive every preset and render the trajectories.

Runs the modular pipeline through each scenario preset (plus the curved
road) and renders a top-down ASCII strip of the recorded trajectory —
'E' marks the ego path weaving through the numbered NPC paths. Also shows
what one oracle attack does to the picture. No trained checkpoints needed.

Run:  python examples/scenario_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import record_episode
from repro.eval.recorder import Trajectory
from repro.sim import PRESETS, curved_world


def show(title: str, trajectory: Trajectory, world) -> None:
    collision = world.collisions[-1] if world.collisions else None
    outcome = (
        f"{collision.kind.value} collision with {collision.other} "
        f"at t={collision.time:.1f}s"
        if collision
        else f"clean, {world.passed_npcs} NPCs passed"
    )
    print(f"--- {title} ({outcome}) ---")
    print(trajectory.render_ascii(width=96))
    print()


def main() -> None:
    for name, preset in sorted(PRESETS.items()):
        trajectory, world = record_episode(
            lambda w: ModularAgent(w.road), seed=3, scenario=preset()
        )
        show(f"preset: {name}", trajectory, world)

    # Curved road variant (generic Frenet path).
    world = curved_world(rng=np.random.default_rng(3))
    agent = ModularAgent(world.road)
    agent.reset(world)
    trajectory = Trajectory()
    trajectory.record(world)
    while not world.done:
        world.tick(agent.act(world))
        trajectory.record(world)
    show("curved freeway", trajectory, world)

    # The same paper scenario under an oracle attack.
    trajectory, world = record_episode(
        lambda w: ModularAgent(w.road),
        attacker=OracleAttacker(budget=1.0),
        seed=3,
    )
    show("paper scenario + oracle attack (eps=1.0)", trajectory, world)


if __name__ == "__main__":
    main()
