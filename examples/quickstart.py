#!/usr/bin/env python
"""Quickstart: drive the paper's scenario and launch one attack.

Builds the Fig. 1(a) freeway world (ego at 16 m/s, six NPCs at 6 m/s),
drives it with the modular pipeline, then repeats the episode with the
scripted oracle attacker at full budget and reports what changed — no
trained checkpoints required.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import run_episode
from repro.sensors import BevCamera, BevCameraConfig
from repro.sim import make_world

GLYPHS = {0: " ", 1: ".", 2: "|", 3: "#"}


def ascii_frame(world) -> str:
    """A coarse ASCII rendering of the ego-centric semantic camera."""
    camera = BevCamera(BevCameraConfig(rows=20, cols=23, half_width=11.0))
    grid = camera.render(world)
    lines = ["".join(GLYPHS[int(cell)] for cell in row) for row in grid[::-1]]
    return "\n".join(lines)


def main() -> None:
    print("=== scenario preview (ego-centric semantic camera) ===")
    world = make_world(rng=np.random.default_rng(7))
    print(ascii_frame(world))
    print("legend: '#' vehicle, '|' lane marking, '.' road, ' ' off-road\n")

    print("=== nominal episode (modular pipeline) ===")
    nominal = run_episode(lambda w: ModularAgent(w.road), seed=7)
    print(
        f"steps={nominal.steps}  passed NPCs={nominal.passed_npcs}/6  "
        f"collision={nominal.collision}  "
        f"driving reward={nominal.nominal_return:.1f}  "
        f"tracking RMSE={nominal.deviation_rmse:.3f} lane-widths\n"
    )

    print("=== same episode under the oracle action-space attack ===")
    attacked = run_episode(
        lambda w: ModularAgent(w.road),
        attacker=OracleAttacker(budget=1.0),
        seed=7,
    )
    outcome = (
        f"{attacked.collision.kind.value} collision with "
        f"{attacked.collision.other} at t={attacked.collision.time:.1f}s"
        if attacked.collision
        else "no collision"
    )
    print(
        f"steps={attacked.steps}  outcome={outcome}\n"
        f"driving reward={attacked.nominal_return:.1f} "
        f"(was {nominal.nominal_return:.1f})  "
        f"adversarial reward={attacked.adversarial_return:.1f}  "
        f"attack effort={attacked.mean_effort:.2f}"
    )
    if attacked.time_to_collision is not None:
        print(
            f"time from attack initiation to collision: "
            f"{attacked.time_to_collision:.2f}s "
            "(best human reaction: 1.25s)"
        )


if __name__ == "__main__":
    main()
