#!/usr/bin/env python
"""Regenerate every shipped checkpoint in ``artifacts/``.

Pipeline (Section numbers refer to the paper):

1. End-to-end driver (Sec. III-C): behaviour cloning of the modular
   pipeline + optional SAC refinement on the shaped reward.
2. Camera attacker vs. the e2e driver (Sec. IV-D): behaviour cloning of
   the oracle baseline + SAC refinement on R_adv (kept only if better).
3. Camera attacker vs. the modular pipeline (for Fig. 5).
4. IMU attacker via learning-from-teacher (Sec. IV-E).
5. Adversarially fine-tuned drivers, rho = 1/11 and 1/2 (Sec. VI-A).
6. PNN second column (Sec. VI-B).

Run:  python examples/train_all.py [--fast] [--sac] [--health N]
  --fast    tiny budgets (smoke test, ~1 minute)
  --sac     enable the SAC refinement stages (slower; selection keeps the
            better checkpoint either way)
  --health  emit an ``update_health`` trace record every N SAC updates so
            ``python -m repro.obsv watch $REPRO_TRACE`` can monitor the
            run live (needs REPRO_TRACE pointing at a JSONL file)
  --checkpoint-every N
            snapshot resumable SAC training state every N env steps
            (rotated, keep-last-3 per stage; 0 = off)
  --checkpoint-dir  where snapshots go (default: <out>/checkpoints)
  --resume  continue each SAC stage from its newest snapshot; a run
            killed mid-stage picks up where it left off, bit-identically
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.agents.e2e.agent import EndToEndAgent, save_progressive
from repro.agents.e2e.training import DriverTrainConfig, train_driver
from repro.agents.modular.agent import ModularAgent
from repro.core.training import (
    AttackTrainConfig,
    train_camera_attacker,
    train_imu_attacker,
)
from repro.defense.finetune import FinetuneConfig, adversarial_finetune
from repro.defense.pnn_defense import PnnTrainConfig, train_pnn_column
from repro.experiments import registry
from repro.rl.bc import BcConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smoke-test budgets")
    parser.add_argument("--sac", action="store_true", help="run SAC stages")
    parser.add_argument(
        "--out", default=None, help="output directory (default: ./artifacts)"
    )
    parser.add_argument(
        "--health", type=int, default=0, metavar="N",
        help="emit update_health trace records every N SAC updates"
             " (watch-compatible; 0 = off)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="snapshot resumable SAC state every N env steps (0 = off)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="snapshot directory (default: <out>/checkpoints)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume each SAC stage from its newest snapshot",
    )
    args = parser.parse_args()

    out = Path(args.out) if args.out else registry.artifacts_dir()
    out.mkdir(parents=True, exist_ok=True)
    ckpt_base = Path(args.checkpoint_dir) if args.checkpoint_dir else (
        out / "checkpoints"
    )
    started = time.time()

    def stamp(label: str) -> None:
        print(f"[{time.time() - started:7.1f}s] {label}", flush=True)

    def crash_safety(sac_cfg, stage: str) -> None:
        """Point one SAC stage's snapshots at its own subdirectory.

        Stages 2 and 3 share a loop label (``sac-attack``), so the
        per-stage directory is what keeps their snapshots apart.
        """
        sac_cfg.checkpoint_every = args.checkpoint_every
        sac_cfg.checkpoint_dir = str(ckpt_base / stage)
        sac_cfg.resume = args.resume

    # 1. End-to-end driver.
    stamp("training end-to-end driver (BC from modular expert)")
    driver_cfg = DriverTrainConfig(
        bc_episodes=10 if args.fast else 40,
        sac_steps=(500 if args.fast else 8_000) if args.sac else 0,
    )
    driver_cfg.sac.health_every = args.health
    crash_safety(driver_cfg.sac, "driver")
    driver, driver_metrics = train_driver(driver_cfg, progress=True)
    driver.save(out / registry.E2E_DRIVER, {"metrics": driver_metrics})
    stamp(f"driver: {driver_metrics}")

    def e2e_victim(world):
        return EndToEndAgent(driver.policy)

    def modular_victim(world):
        return ModularAgent(world.road)

    # 2. Camera attacker vs. e2e driver.
    stamp("training camera attacker vs e2e driver")
    attack_cfg = AttackTrainConfig(
        bc_episodes=8 if args.fast else 30,
        sac_steps=(500 if args.fast else 6_000) if args.sac else 0,
        eval_episodes=3 if args.fast else 8,
    )
    attack_cfg.sac.health_every = args.health
    crash_safety(attack_cfg.sac, "camera-e2e")
    camera, camera_metrics = train_camera_attacker(
        e2e_victim, attack_cfg, progress=True
    )
    camera.save(out / registry.CAMERA_ATTACKER_E2E, {"metrics": camera_metrics})
    stamp(f"camera attacker (e2e victim): {camera_metrics}")

    # 3. Camera attacker vs. modular pipeline.
    stamp("training camera attacker vs modular pipeline")
    crash_safety(attack_cfg.sac, "camera-modular")
    camera_mod, camera_mod_metrics = train_camera_attacker(
        modular_victim, attack_cfg, progress=True
    )
    camera_mod.save(
        out / registry.CAMERA_ATTACKER_MODULAR, {"metrics": camera_mod_metrics}
    )
    stamp(f"camera attacker (modular victim): {camera_mod_metrics}")

    # 4. IMU attacker (learning-from-teacher).
    stamp("training IMU attacker (learning-from-teacher)")
    crash_safety(attack_cfg.sac, "imu")
    imu, imu_metrics = train_imu_attacker(
        camera, e2e_victim, attack_cfg, progress=True
    )
    imu.save(out / registry.IMU_ATTACKER, {"metrics": imu_metrics})
    stamp(f"imu attacker: {imu_metrics}")

    # 5. Adversarial fine-tuning.
    for rho, filename in (
        (1.0 / 11.0, registry.FINETUNED_RHO_11),
        (0.5, registry.FINETUNED_RHO_2),
    ):
        stamp(f"adversarial fine-tuning rho={rho:.3f}")
        finetune_cfg = FinetuneConfig(
            rho=rho, episodes=12 if args.fast else 44
        )
        tuned = adversarial_finetune(driver, camera, finetune_cfg, progress=True)
        tuned.save(out / filename, {"rho": rho})

    # 6. PNN column.
    stamp("training PNN adversarial column")
    pnn_cfg = PnnTrainConfig(
        episodes=12 if args.fast else 120,
        bc=BcConfig(epochs=8 if args.fast else 30, lr=5e-4),
    )
    column = train_pnn_column(driver, camera, pnn_cfg, progress=True)
    save_progressive(column, out / registry.PNN_COLUMN)

    stamp(f"done — artifacts in {out}")


if __name__ == "__main__":
    main()
