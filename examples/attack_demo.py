#!/usr/bin/env python
"""Attack demo: learned camera vs. IMU attacks across budgets.

Loads the shipped attack checkpoints and sweeps the attack budget against
the end-to-end driver, printing per-episode traces for the full-budget
camera attack and the Fig. 4-style summary for both attackers.

Requires artifacts (run ``python examples/train_all.py`` first).

Run:  python examples/attack_demo.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.eval import run_episode, run_episodes, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt


def trace_one_attack() -> None:
    print("=== one full-budget camera attack, step by step ===")
    from repro.agents.modular.behavior import BehaviorPlanner
    from repro.core.rewards import critical_moment
    from repro.sim import make_world

    world = make_world(rng=np.random.default_rng(11))
    victim = registry.e2e_victim(world)
    victim.reset(world)
    attacker = registry.camera_attacker(1.0)
    attacker.reset(world)
    planner = BehaviorPlanner(world.road)
    planner.reset(world)

    result = None
    while not world.done:
        control = victim.act(world)
        delta = attacker.delta(world, control)
        critical = critical_moment(world)
        result = world.tick(control, steer_delta=delta)
        if result.step % 5 == 0 or result.done:
            _, d, _ = world.road.to_frenet(world.ego.state.position)
            print(
                f"  t={result.time:5.1f}s  lateral={d:+6.2f}m  "
                f"delta={delta:+5.2f}  critical={'Y' if critical else 'n'}"
            )
    outcome = result.collision.kind.value if result.collision else "none"
    print(f"  -> outcome: {outcome} (step {result.step})\n")


def sweep(n_episodes: int) -> None:
    print("=== budget sweep (Fig. 4 protocol) ===")
    table = Table(
        f"camera vs IMU attack, {n_episodes} episodes per cell",
        ["attacker", "budget", "success", "mean driving reward",
         "mean adversarial reward"],
    )
    for kind in ("camera", "imu"):
        for budget in (0.25, 0.5, 0.75, 1.0):
            maker = (
                registry.camera_attacker
                if kind == "camera"
                else registry.imu_attacker
            )
            results = run_episodes(
                registry.e2e_victim,
                lambda b=budget, m=maker: m(b),
                n_episodes=n_episodes,
                seed=2024,
            )
            table.add(
                kind,
                fmt(budget),
                fmt(success_rate(results)),
                fmt(float(np.mean([r.nominal_return for r in results])), 1),
                fmt(float(np.mean([r.adversarial_return for r in results])), 1),
            )
    table.show()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=8)
    args = parser.parse_args()
    trace_one_attack()
    sweep(args.episodes)


if __name__ == "__main__":
    main()
