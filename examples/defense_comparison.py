#!/usr/bin/env python
"""Defense comparison: fine-tuning vs. progressive neural networks.

Evaluates the five driving agents of Section VI — the original end-to-end
driver, the two adversarially fine-tuned variants (rho = 1/11, 1/2) and
the two PNN/Simplex variants (sigma = 0.2, 0.4) — under camera attacks,
printing the Fig. 6-style reward table and the Fig. 8-style success rates.

Requires artifacts (run ``python examples/train_all.py`` first).

Run:  python examples/defense_comparison.py [--episodes N]
"""

from __future__ import annotations

import argparse

from repro.experiments import fig6, fig8
from repro.experiments.common import Table, fmt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=6)
    args = parser.parse_args()

    result = fig6.run(n_episodes=args.episodes)
    result.table().show()

    print()
    forgetting = Table(
        "Catastrophic forgetting at zero attack budget",
        ["agent", "nominal reward", "drop vs original"],
    )
    baseline = result.cell("original", 0.0).nominal.mean
    for agent in fig6.AGENTS:
        mean = result.cell(agent, 0.0).nominal.mean
        forgetting.add(agent, fmt(mean, 1), fmt(baseline - mean, 1))
    forgetting.show()

    print()
    windows = fig8.run(rounds=max(args.episodes // 2, 3))
    windows.table().show()
    print(
        "\nReading: the PNN agents keep the original policy's nominal "
        "driving intact (zero drop) while admitting the fewest successful "
        "attacks overall — at the cost of the idealized switcher "
        "assumption (Section VI-B)."
    )


if __name__ == "__main__":
    main()
