#!/usr/bin/env python
"""Run the complete evaluation protocol and write EXPERIMENTS.md.

Evaluates the shipped checkpoints (run ``python examples/train_all.py``
first if ``artifacts/`` is empty) on every figure and in-text scalar of
the paper's evaluation section, and writes the paper-vs-measured report.

Run:  python examples/reproduce_all.py [--episodes N] [--rounds R] [--out PATH]
"""

from __future__ import annotations

import argparse

from repro.experiments.report import generate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=20)
    parser.add_argument("--rounds", type=int, default=8)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    path = generate(args.out, episodes=args.episodes, rounds=args.rounds)
    print(f"report written to {path}")


if __name__ == "__main__":
    main()
