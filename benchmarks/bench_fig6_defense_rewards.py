"""Fig. 6 bench — nominal driving rewards of original and enhanced agents.

Evaluates pi_ori, pi_adv,rho=1/11, pi_adv,rho=1/2, pi_pnn,sigma=0.2 and
pi_pnn,sigma=0.4 under camera attacks with budgets {0, 0.25, 0.5, 0.75, 1}.
"""

import pytest

from repro.experiments import fig6


@pytest.mark.experiment
def test_fig6_defense_reward_distributions(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: fig6.run(n_episodes=10), rounds=1, iterations=1
    )
    result.table().show()

    original_mid = result.cell("original", 0.5).nominal.mean
    # Every enhanced agent noticeably raises the mean nominal reward under
    # the mid-budget attack.
    for agent in (
        "finetuned rho=1/11",
        "finetuned rho=1/2",
        "pnn sigma=0.2",
        "pnn sigma=0.4",
    ):
        assert result.cell(agent, 0.5).nominal.mean > original_mid + 20.0

    # Catastrophic forgetting: fine-tuning sacrifices nominal driving; the
    # nominal-heavy mix (rho = 1/2) sacrifices less than rho = 1/11.
    original_clean = result.cell("original", 0.0).nominal.mean
    ft11_clean = result.cell("finetuned rho=1/11", 0.0).nominal.mean
    ft2_clean = result.cell("finetuned rho=1/2", 0.0).nominal.mean
    assert ft11_clean < original_clean - 2.0
    assert ft11_clean <= ft2_clean + 1.0

    # The PNN switcher keeps nominal driving exactly intact at zero budget
    # (it routes to pi_ori below sigma).
    for agent in ("pnn sigma=0.2", "pnn sigma=0.4"):
        clean = result.cell(agent, 0.0).nominal.mean
        assert abs(clean - original_clean) < 1e-9

    # The two PNN agents coincide once the budget exceeds both sigmas
    # (they share the same adversarial column).
    for budget in (0.5, 0.75, 1.0):
        a = result.cell("pnn sigma=0.2", budget).nominal.mean
        b = result.cell("pnn sigma=0.4", budget).nominal.mean
        assert abs(a - b) < 1e-9
