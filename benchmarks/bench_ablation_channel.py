"""Ablation bench — injection-channel imperfections (Section IV-B).

The paper argues the attack is realizable over two physical pathways: CAN
message manipulation (quantized payloads) and IEMI on the analog servo
line (additive noise). This ablation degrades the learned camera
attacker's channel accordingly and measures how much attack effectiveness
survives each imperfection.
"""

import numpy as np
import pytest

from repro.core import InjectionChannel, InjectionChannelConfig, LearnedAttacker
from repro.eval import run_episodes, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt

CHANNELS = (
    ("ideal", InjectionChannelConfig(budget=1.0)),
    ("CAN quantized 0.125", InjectionChannelConfig(budget=1.0, quantization=0.125)),
    ("CAN quantized 0.25", InjectionChannelConfig(budget=1.0, quantization=0.25)),
    ("IEMI noise 0.05", InjectionChannelConfig(budget=1.0, noise_std=0.05)),
    ("IEMI noise 0.20", InjectionChannelConfig(budget=1.0, noise_std=0.20)),
)


@pytest.mark.experiment
def test_channel_imperfection_ablation(benchmark, artifacts_ready):
    def sweep():
        rows = []
        base = registry.camera_attacker(1.0)
        for label, config in CHANNELS:
            def attacker_factory(cfg=config):
                return LearnedAttacker(
                    base.policy,
                    base.sensor,
                    channel=InjectionChannel(
                        cfg, rng=np.random.default_rng(11)
                    ),
                    name="camera",
                )

            results = run_episodes(
                registry.e2e_victim,
                attacker_factory,
                n_episodes=10,
                seed=4321,
            )
            rows.append(
                (
                    label,
                    success_rate(results),
                    float(np.mean([r.nominal_return for r in results])),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation — injection channel imperfections (camera attacker)",
        ["channel", "success", "victim nominal return"],
    )
    for label, success, nominal in rows:
        table.add(label, fmt(success), fmt(nominal, 1))
    table.show()

    by_label = {label: success for label, success, _ in rows}
    # The attack survives realistic channel imperfections: a coarsely
    # quantized CAN payload still collapses the victim.
    assert by_label["CAN quantized 0.25"] >= by_label["ideal"] - 0.4
