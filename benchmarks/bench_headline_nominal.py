"""Headline scalars bench (paper Sections III-C, V-A, V-B).

Reproduces: nominal driving quality of the end-to-end agent (5.96/6 NPCs,
180/180 steps, no collisions), the ~84% nominal-reward reduction under the
full-budget camera attack, and the time-to-collision comparison against
the 1.25 s human reaction floor.
"""

import pytest

from repro.experiments import headline


@pytest.mark.experiment
def test_headline_scalars(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: headline.run(n_episodes=30), rounds=1, iterations=1
    )
    result.table().show()

    # Shape assertions (orderings, not absolute values).
    assert result.mean_passed >= 5.5
    assert result.nominal_collision_rate == 0.0
    assert 0.6 <= result.camera_reward_reduction <= 1.0
    assert result.ttc_e2e_mean is not None
    assert result.ttc_modular_mean is not None
    # The end-to-end victim collapses faster than the modular one, and
    # faster than the best human driver could react.
    assert result.ttc_e2e_mean < result.ttc_modular_mean
    assert result.ttc_e2e_mean < 1.25
