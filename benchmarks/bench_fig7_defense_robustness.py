"""Fig. 7 bench — robustness of enhanced agents (deviation vs. effort).

Budgets 0 to 1.2 step 0.1 x 10 rounds for the four enhanced agents.
Paper headline: average tracking errors 0.038 / 0.027 / 0.02 / 0.017 for
rho=1/11, rho=1/2, sigma=0.4, sigma=0.2; PNN agents admit no successful
attacks at low effort.
"""

import pytest

from repro.experiments import fig7


@pytest.mark.experiment
def test_fig7_enhanced_agent_robustness(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: fig7.run(rounds=10), rounds=1, iterations=1
    )
    result.table().show()

    # The balanced mix tracks better than the adversarial-heavy mix
    # (paper: 0.027 vs 0.038).
    assert result.average_tracking_error(
        "finetuned rho=1/2"
    ) < result.average_tracking_error("finetuned rho=1/11")

    # No agent loses to a near-zero-effort attack; the PNN agents hold at
    # least as long as the weaker fine-tuned agent before the first
    # successful attack.
    for agent in result.points:
        assert result.min_successful_effort(agent) > 0.1
    assert result.min_successful_effort("pnn sigma=0.2") >= (
        result.min_successful_effort("finetuned rho=1/11") - 0.1
    )

    # PNN agents admit fewer successful attacks overall than the
    # adversarial-heavy fine-tuned agent (Fig. 8's headline, visible here).
    ft11 = sum(p.successful for p in result.points["finetuned rho=1/11"])
    for agent in ("pnn sigma=0.2", "pnn sigma=0.4"):
        assert sum(p.successful for p in result.points[agent]) < ft11
