"""Substrate micro-benchmarks: simulator tick rate, sensor rendering and
SAC update throughput. These are conventional pytest-benchmark timings
(multiple rounds) rather than experiment reproductions.
"""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.rl import Sac, SacConfig
from repro.sensors import BevCamera, Imu
from repro.sim import Control, make_world


@pytest.fixture()
def ticking_world():
    world = make_world(rng=np.random.default_rng(0))
    agent = ModularAgent(world.road)
    agent.reset(world)
    return world, agent


def test_world_tick_rate(benchmark, ticking_world):
    world, agent = ticking_world

    def tick():
        if world.done:
            return
        world.tick(agent.act(world))

    benchmark(tick)


def test_bev_camera_render(benchmark):
    world = make_world(rng=np.random.default_rng(1))
    camera = BevCamera()
    benchmark(lambda: camera.render(world))


def test_imu_observe(benchmark):
    world = make_world(rng=np.random.default_rng(2))
    world.tick(Control(thrust=0.2))
    imu = Imu()
    benchmark(lambda: imu.observe(world))


def test_sac_update_throughput(benchmark):
    config = SacConfig(hidden=(128, 128), batch_size=128, buffer_capacity=5_000)
    sac = Sac(455, 2, config, rng=np.random.default_rng(3))
    rng = np.random.default_rng(4)
    for _ in range(300):
        sac.observe(
            rng.normal(size=455), rng.uniform(-1, 1, 2), rng.normal(),
            rng.normal(size=455), False,
        )
    benchmark(sac.update)


def test_policy_inference(benchmark):
    from repro.rl.policy import SquashedGaussianPolicy

    policy = SquashedGaussianPolicy(455, 2, (128, 128))
    obs = np.random.default_rng(5).normal(size=455)
    benchmark(lambda: policy.act(obs, deterministic=True))
