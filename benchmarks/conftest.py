"""Benchmark-suite configuration.

Every figure/table of the paper's evaluation has one bench module. The
benches evaluate the shipped checkpoints in ``artifacts/`` (regenerate
with ``python examples/train_all.py``) and print the reproduced rows next
to the paper's reference values; pytest-benchmark records the wall-clock
of one full experiment run.

Run:  pytest benchmarks/ --benchmark-only
      pytest benchmarks/ --benchmark-only -s   # also show the reproduced tables
(`examples/reproduce_all.py` writes the same tables into EXPERIMENTS.md.)

Telemetry artifact — ``BENCH_telemetry.json``
    Every bench session enables the span tracer and, on teardown, writes a
    machine-readable perf snapshot to ``BENCH_telemetry.json`` at the repo
    root so successive PRs have a trajectory to compare against. Layout::

        {
          "schema": 2,
          "wall_clock_s": <total session seconds>,
          "python": "...", "numpy": "...", "platform": "...",
          "spans":   {"<span path>": {count, total_s, self_total_s,
                                      mean_us, self_mean_us, p50_us,
                                      p90_us, p99_us, min_us, max_us}, ...},
          "metrics": {"counters": {...}, "gauges": {...},
                      "histograms": {...}},  # repro.telemetry snapshot
          "profile": {...}   # only under REPRO_PROF: FLOP counters,
                             # per-span MFLOP/s, tracemalloc figures
        }

    Span paths follow :mod:`repro.telemetry.spans` nesting (e.g.
    ``episode/world.tick``); durations are wall-clock microseconds.
    Schema 2 adds the exact self-time fields (inclusive minus direct
    children, from the tracer's child bookkeeping) that ``repro.obsv
    profile`` and the ``regress`` self-time budget gates consume, plus
    the optional ``profile`` section mirrored from the env-installed
    profiling session (:mod:`repro.obsv.prof`) when ``REPRO_PROF`` is
    set for the bench run.

    On teardown the fresh snapshot is diffed against a baseline (same
    thresholds as ``python -m repro.obsv regress``); breaches are printed
    as warnings but do not fail the bench session. The baseline is
    ``REPRO_BENCH_BASELINE`` when set (empty string disables the diff),
    else the committed ``benchmarks/BASELINE_telemetry.json``.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment: full paper-experiment reproduction bench"
    )


@pytest.fixture(scope="session")
def artifacts_ready():
    """Skip experiment benches cleanly when checkpoints are missing."""
    from repro.experiments import registry

    required = [
        registry.E2E_DRIVER,
        registry.CAMERA_ATTACKER_E2E,
        registry.CAMERA_ATTACKER_MODULAR,
        registry.IMU_ATTACKER,
        registry.FINETUNED_RHO_11,
        registry.FINETUNED_RHO_2,
        registry.PNN_COLUMN,
    ]
    missing = [name for name in required if not registry.has_artifact(name)]
    if missing:
        pytest.skip(
            f"missing artifacts {missing}; run `python examples/train_all.py`"
        )
    return True


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry(request):
    """Collect spans/metrics for the session; write BENCH_telemetry.json."""
    import numpy as np

    from repro.telemetry.metrics import get_registry
    from repro.telemetry.spans import get_tracer

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    started = time.perf_counter()
    yield
    payload = {
        "schema": 2,
        "wall_clock_s": round(time.perf_counter() - started, 3),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "spans": tracer.snapshot(),
        "metrics": get_registry().snapshot(),
    }
    from repro.obsv.prof import env_session

    profiling = env_session()
    if profiling is not None and profiling.running:
        payload["profile"] = profiling.peek()
    out = Path(str(request.config.rootpath)) / "BENCH_telemetry.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if not was_enabled:
        tracer.disable()

    baseline = os.environ.get("REPRO_BENCH_BASELINE")
    if baseline is None:
        committed = Path(__file__).with_name("BASELINE_telemetry.json")
        if committed.exists():
            baseline = str(committed)
    if baseline:
        from repro.obsv.regress import compare_snapshots, report

        try:
            reference = json.loads(Path(baseline).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"\n[bench-regress] baseline {baseline!r} unreadable: {exc}")
        else:
            breaches = compare_snapshots(payload, reference)
            print(f"\n[bench-regress] vs {baseline}:")
            for line in report(breaches).splitlines():
                print(f"[bench-regress] {line}")
