"""Benchmark-suite configuration.

Every figure/table of the paper's evaluation has one bench module. The
benches evaluate the shipped checkpoints in ``artifacts/`` (regenerate
with ``python examples/train_all.py``) and print the reproduced rows next
to the paper's reference values; pytest-benchmark records the wall-clock
of one full experiment run.

Run:  pytest benchmarks/ --benchmark-only
      pytest benchmarks/ --benchmark-only -s   # also show the reproduced tables
(`examples/reproduce_all.py` writes the same tables into EXPERIMENTS.md.)
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment: full paper-experiment reproduction bench"
    )


@pytest.fixture(scope="session")
def artifacts_ready():
    """Skip experiment benches cleanly when checkpoints are missing."""
    from repro.experiments import registry

    required = [
        registry.E2E_DRIVER,
        registry.CAMERA_ATTACKER_E2E,
        registry.CAMERA_ATTACKER_MODULAR,
        registry.IMU_ATTACKER,
        registry.FINETUNED_RHO_11,
        registry.FINETUNED_RHO_2,
        registry.PNN_COLUMN,
    ]
    missing = [name for name in required if not registry.has_artifact(name)]
    if missing:
        pytest.skip(
            f"missing artifacts {missing}; run `python examples/train_all.py`"
        )
    return True
