"""Fig. 4 bench — attack effects under various attack configurations.

Reproduces both panels: (a) nominal driving reward and (b) adversarial
reward distributions across attack budgets {0, 0.25, 0.5, 0.75, 1.0} for
the camera- and IMU-based attacks on the end-to-end agent (30 episodes
per cell, as in the paper).
"""

import pytest

from repro.experiments import fig4


@pytest.mark.experiment
def test_fig4_attack_budget_sweep(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: fig4.run(n_episodes=30), rounds=1, iterations=1
    )
    result.table().show()
    print(
        f"camera eps=1 reward reduction: "
        f"{100 * result.reward_reduction('camera'):.1f}% (paper: ~84%)"
    )

    # Panel (a): the camera attack at full budget collapses the driving
    # reward by the paper's headline margin.
    assert result.reward_reduction("camera") > 0.6

    # Panel (b): nominal driving yields a negative adversarial reward.
    assert result.cell("camera", 0.0).adversarial.mean < 0.0

    # Camera >= IMU in mean adversarial reward at matched high budgets.
    for budget in (0.5, 0.75, 1.0):
        camera_cell = result.cell("camera", budget)
        imu_cell = result.cell("imu", budget)
        assert camera_cell.adversarial.mean >= imu_cell.adversarial.mean - 2.0

    # Sharp transition between eps=0.25 and eps=0.75 (both attackers).
    for attacker in ("camera", "imu"):
        low = result.cell(attacker, 0.25)
        high = result.cell(attacker, 0.75)
        assert low.success <= 0.2
        assert high.success >= 0.6
        assert low.nominal.mean > 3.0 * high.nominal.mean
