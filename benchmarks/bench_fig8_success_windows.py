"""Fig. 8 bench — attack success rate per attack-effort window.

Windows the deviation-vs-effort episodes (width 0.2, 0.0 to 0.8+) for the
nominal agent and the four enhanced agents. Paper shape: fine-tuned agents
show higher success rates than PNN agents; the nominal agent is worst.
"""

import pytest

from repro.experiments import fig8


@pytest.mark.experiment
def test_fig8_success_rate_windows(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: fig8.run(rounds=8), rounds=1, iterations=1
    )
    result.table().show()

    # Overall ordering: nominal agent worst, PNN agents best.
    original = result.overall_success("original")
    ft11 = result.overall_success("finetuned rho=1/11")
    ft2 = result.overall_success("finetuned rho=1/2")
    pnn02 = result.overall_success("pnn sigma=0.2")
    pnn04 = result.overall_success("pnn sigma=0.4")

    assert original > max(ft11, ft2)
    assert max(pnn02, pnn04) < original
    assert min(pnn02, pnn04) <= min(ft11, ft2)

    # Every enhanced agent beats the nominal agent inside the paper's
    # mid-effort window [0.4, 0.6), where the transition happens.
    windows_original = dict(
        (label, rate) for label, rate, _ in result.windows("original")
    )
    for agent in (
        "finetuned rho=1/11",
        "finetuned rho=1/2",
        "pnn sigma=0.2",
        "pnn sigma=0.4",
    ):
        windows_agent = dict(
            (label, rate) for label, rate, _ in result.windows(agent)
        )
        assert windows_agent["[0.4,0.6)"] <= windows_original["[0.4,0.6)"]
