"""Ablation bench — adversarial sensor quality (Section IV-A trade-off).

The paper frames the camera/IMU choice as precision vs. covertness. This
ablation stresses the covert side: the learned IMU attacker is evaluated
with increasing sensor noise (consumer-grade MEMS bias/white noise),
measuring how much attack effectiveness the covert channel retains; and
the camera attacker is evaluated through coarser grids by re-using the
oracle at reduced observation ranges as a proxy for a degraded view.
"""

import numpy as np
import pytest

from repro.core import (
    ImuAttackObservation,
    InjectionChannel,
    InjectionChannelConfig,
    LearnedAttacker,
    OracleAttacker,
)
from repro.eval import run_episodes, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt
from repro.sensors import GaussianNoise

IMU_NOISE = (0.0, 0.05, 0.2, 0.8)
ORACLE_RANGES = (25.0, 15.0, 8.0)


@pytest.mark.experiment
def test_imu_noise_ablation(benchmark, artifacts_ready):
    def sweep():
        rows = []
        base = registry.imu_attacker(1.0)
        for std in IMU_NOISE:
            def attacker_factory(std=std):
                noise = (
                    GaussianNoise(
                        std=std,
                        bias_std=std / 4.0,
                        rng=np.random.default_rng(77),
                    )
                    if std > 0.0
                    else None
                )
                return LearnedAttacker(
                    base.policy,
                    ImuAttackObservation(noise=noise),
                    channel=InjectionChannel(
                        InjectionChannelConfig(budget=1.0)
                    ),
                    name="imu",
                )

            results = run_episodes(
                registry.e2e_victim, attacker_factory, n_episodes=8, seed=888
            )
            rows.append(
                (
                    std,
                    success_rate(results),
                    float(np.mean([r.adversarial_return for r in results])),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation — IMU sensor noise vs attack effectiveness",
        ["noise std", "success", "adv return"],
    )
    for std, success, adv in rows:
        table.add(fmt(std), fmt(success), fmt(adv, 1))
    table.show()

    by_std = {std: success for std, success, _ in rows}
    # Moderate MEMS-grade noise does not disable the covert attack.
    assert by_std[0.05] >= by_std[0.0] - 0.4


@pytest.mark.experiment
def test_oracle_observation_range_ablation(benchmark, artifacts_ready):
    def sweep():
        rows = []
        for max_range in ORACLE_RANGES:
            results = run_episodes(
                registry.e2e_victim,
                lambda r=max_range: OracleAttacker(budget=1.0, max_range=r),
                n_episodes=8,
                seed=999,
            )
            rows.append((max_range, success_rate(results)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation — attacker observation range (oracle, budget 1.0)",
        ["max range (m)", "success"],
    )
    for max_range, success in rows:
        table.add(fmt(max_range, 0), fmt(success))
    table.show()
    # A severely truncated view still attacks (the kill window is close).
    by_range = {r: s for r, s in rows}
    assert by_range[8.0] > 0.0
