"""Generate ``benchmarks/BASELINE_metrics.json`` — the scientific baseline.

Runs the paper's headline configuration cells in-process (seeds 0..N-1,
batch engine where available) and snapshots their episode-level metric
distributions with seeded bootstrap CIs via
:func:`repro.obsv.compare.metric_snapshot`. The committed snapshot is the
baseline side of ``python -m repro.obsv regress <current> <baseline>
--metrics``: any future build whose cell means leave these CIs fails the
gate, the scientific twin of the ``BASELINE_telemetry.json`` perf gate.

Cells cover both victims nominal and under the learned action-space
attacks (claims anchor to EXPERIMENTS.md):

* modular pipeline, nominal and under the camera attacker at eps 1.0;
* end-to-end driver, nominal and under the camera attacker at eps 1.0
  and 0.5, plus the IMU attacker at eps 1.0.

Cells whose attacker checkpoint is missing are skipped with a notice (a
fresh clone without ``examples/train_all.py`` artifacts still produces
the nominal-only baseline). Regenerate after an intentional behaviour
change:

    PYTHONPATH=src python benchmarks/make_baseline_metrics.py

and commit the refreshed JSON together with the change that moved the
numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.eval import run_episode, run_episode_batch
from repro.experiments import registry
from repro.obsv.compare import StatConfig, metric_snapshot
from repro.obsv.loader import split_episodes
from repro.telemetry.trace import TraceWriter

#: Episodes per configuration cell (seeds ``0..N-1``).
DEFAULT_EPISODES = 20

#: Default output path, relative to this file.
DEFAULT_OUT = Path(__file__).resolve().parent / "BASELINE_metrics.json"


def _cells() -> list[dict]:
    """The configuration cells the baseline covers.

    ``attacker`` is a zero-arg factory (checkpoint loading deferred so
    missing artifacts skip the cell instead of crashing the run).
    """
    return [
        {
            "victim": registry.modular_victim,
            "attacker": None,
            "needs": (),
            "claim": "EXPERIMENTS.md: modular pipeline nominal driving",
        },
        {
            "victim": registry.modular_victim,
            "attacker": lambda: registry.camera_attacker(1.0, "modular"),
            "needs": (registry.CAMERA_ATTACKER_MODULAR,),
            "claim": "EXPERIMENTS.md: camera attack vs modular, eps 1.0",
        },
        {
            "victim": registry.e2e_victim,
            "attacker": None,
            "needs": (registry.E2E_DRIVER,),
            "claim": "EXPERIMENTS.md: end-to-end driver nominal driving",
        },
        {
            "victim": registry.e2e_victim,
            "attacker": lambda: registry.camera_attacker(1.0, "e2e"),
            "needs": (registry.E2E_DRIVER, registry.CAMERA_ATTACKER_E2E),
            "claim": "EXPERIMENTS.md: camera attack vs e2e, eps 1.0",
        },
        {
            "victim": registry.e2e_victim,
            "attacker": lambda: registry.camera_attacker(0.5, "e2e"),
            "needs": (registry.E2E_DRIVER, registry.CAMERA_ATTACKER_E2E),
            "claim": "EXPERIMENTS.md: camera attack vs e2e, eps 0.5",
        },
        {
            "victim": registry.e2e_victim,
            "attacker": lambda: registry.imu_attacker(1.0),
            "needs": (registry.E2E_DRIVER, registry.IMU_ATTACKER),
            "claim": "EXPERIMENTS.md: IMU attack vs e2e, eps 1.0",
        },
    ]


def run_cell(cell: dict, episodes: int) -> tuple[list, dict | None]:
    """Run one cell and return (episode traces, provenance payload)."""
    attacker = cell["attacker"]() if cell["attacker"] else None
    writer = TraceWriter(None)
    seeds = list(range(episodes))
    try:
        run_episode_batch(
            cell["victim"], attacker=attacker, seeds=seeds, trace=writer
        )
    except TypeError:
        # No batched twin for this agent: scalar fallback, same seeds.
        for seed in seeds:
            run_episode(
                cell["victim"], attacker=attacker, seed=seed,
                trace=writer, episode_id=seed,
            )
    provenance = next(
        (e for e in writer.events if e.get("event") == "provenance"), None
    )
    return split_episodes(writer.events), provenance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--episodes", type=int, default=DEFAULT_EPISODES,
        help=f"episodes per cell (default {DEFAULT_EPISODES})",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help="output snapshot path (default benchmarks/BASELINE_metrics.json)",
    )
    parser.add_argument(
        "--stat-seed", type=int, default=0,
        help="bootstrap RNG seed recorded in the snapshot (default 0)",
    )
    args = parser.parse_args(argv)

    stat = StatConfig(stat_seed=args.stat_seed)
    all_episodes = []
    claims: dict[str, str] = {}
    provenance = None
    for cell in _cells():
        missing = [n for n in cell["needs"] if not registry.has_artifact(n)]
        if missing:
            print(f"skip (missing {', '.join(missing)}): {cell['claim']}")
            continue
        episodes, cell_provenance = run_cell(cell, args.episodes)
        provenance = provenance or cell_provenance
        complete = [e for e in episodes if e.complete]
        if not complete:
            print(f"skip (no complete episodes): {cell['claim']}")
            continue
        first = complete[0]
        from repro.obsv.compare import cell_key

        claims[cell_key(first.victim, first.attacker, first.budget)] = (
            cell["claim"]
        )
        all_episodes.extend(complete)
        print(f"ran {len(complete)} episodes: {cell['claim']}")

    if not all_episodes:
        print("no cells produced episodes; nothing written", file=sys.stderr)
        return 1

    snapshot = metric_snapshot(
        all_episodes, stat, claims=claims, provenance=provenance
    )
    out = Path(args.out)
    out.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"wrote {out} — {len(snapshot['cells'])} cell(s),"
        f" stat seed {stat.stat_seed}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
