"""Batch-engine throughput bench: lockstep vs scalar headline episodes.

Times the same nominal end-to-end evaluation as ``bench_headline_nominal``
through :func:`repro.eval.run_episode_batch` and asserts the structural
speedup the batch engine exists for: >= 10x episodes/sec over the scalar
reference loop at batch 64. The measured ratio lands in
``BENCH_telemetry.json`` as the ``batch_speedup_headline_nominal`` gauge,
so ``python -m repro.obsv regress`` tracks it across PRs like any other
perf metric.
"""

import time

import pytest

from repro.eval import run_episode, run_episode_batch
from repro.telemetry.metrics import get_registry

#: Episodes advanced in lockstep; the README's guidance sweet spot.
BATCH = 64
#: Scalar episodes timed for the reference rate (each ~180 ticks).
SCALAR_EPISODES = 4
#: The acceptance floor for the structural speedup.
MIN_SPEEDUP = 10.0


@pytest.mark.batch
@pytest.mark.experiment
def test_batch_headline_nominal_speedup(benchmark, artifacts_ready):
    from repro.experiments import registry

    victim = registry.e2e_victim

    start = time.perf_counter()
    for seed in range(SCALAR_EPISODES):
        result = run_episode(victim, seed=seed)
        assert result.collision is None
    scalar_rate = SCALAR_EPISODES / (time.perf_counter() - start)

    def batched():
        return run_episode_batch(victim, seeds=list(range(BATCH)))

    start = time.perf_counter()
    results = benchmark.pedantic(batched, rounds=1, iterations=1)
    batch_rate = BATCH / (time.perf_counter() - start)

    assert len(results) == BATCH
    # Same episodes, same outcomes (nominal driving never collides).
    assert all(r.collision is None for r in results)
    assert all(r.steps == 180 for r in results)

    speedup = batch_rate / scalar_rate
    get_registry().gauge("batch_speedup_headline_nominal").set(speedup)
    get_registry().gauge("batch_episodes_per_s").set(batch_rate)
    assert speedup >= MIN_SPEEDUP, (
        f"batch engine {speedup:.1f}x vs scalar, need >= {MIN_SPEEDUP}x"
        f" ({batch_rate:.1f} vs {scalar_rate:.1f} episodes/s)"
    )
