"""Fig. 5 bench — modular vs. end-to-end resilience to camera attacks.

Budgets 0 to 1.2 in steps of 0.1, 10 rounds each (the paper's protocol),
for both victim agents. Also reproduces the Section V-B time-to-collision
scalars (paper: e2e 0.87 s / modular 1.14 s, vs. 1.25 s human floor).
"""

import pytest

from repro.experiments import fig5


@pytest.mark.experiment
def test_fig5_resilience_scatter(benchmark, artifacts_ready):
    result = benchmark.pedantic(
        lambda: fig5.run(rounds=10), rounds=1, iterations=1
    )
    result.table().show()

    # The modular agent holds out to a higher attack-effort level than the
    # end-to-end agent (paper: ~0.6 vs ~0.5).
    modular_threshold = result.dominance_threshold("modular")
    e2e_threshold = result.dominance_threshold("e2e")
    assert modular_threshold >= e2e_threshold

    # The modular agent tracks the reference path more tightly at low
    # attack effort (the PID feedback advantage).
    assert result.low_effort_rmse("modular") < result.low_effort_rmse("e2e")

    # Both victims eventually succumb: the sweep produces successes.
    assert sum(p.successful for p in result.for_victim("modular")) > 0
    assert sum(p.successful for p in result.for_victim("e2e")) > 0

    # Time-to-collision: attacks on the e2e agent complete faster.
    ttc_e2e = result.time_to_collision("e2e")
    ttc_modular = result.time_to_collision("modular")
    assert ttc_e2e is not None and ttc_modular is not None
    assert ttc_e2e.mean < ttc_modular.mean
    assert ttc_e2e.beats_human_reaction
