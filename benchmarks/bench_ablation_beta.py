"""Ablation bench — the critical-moment threshold beta (Section IV-D).

The paper fixes beta = cos(pi/6) ~ 0.866 for the indicator I(omega).
This ablation sweeps beta for the oracle attacker: a tight window
(small beta) misses opportunities, a loose one (beta -> 1) attacks from
geometrically hopeless positions and wastes effort.
"""

import math

import numpy as np
import pytest

from repro.core import BETA, OracleAttacker
from repro.eval import run_episodes, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt

BETAS = (
    ("cos(pi/3)  (tight)", math.cos(math.pi / 3.0)),
    ("cos(pi/4)", math.cos(math.pi / 4.0)),
    ("cos(pi/6) (paper)", BETA),
    ("cos(pi/12) (loose)", math.cos(math.pi / 12.0)),
)


@pytest.mark.experiment
def test_beta_threshold_ablation(benchmark, artifacts_ready):
    def sweep():
        rows = []
        for label, beta in BETAS:
            results = run_episodes(
                registry.e2e_victim,
                lambda b=beta: OracleAttacker(budget=1.0, beta=b),
                n_episodes=10,
                seed=1234,
            )
            rows.append(
                (
                    label,
                    success_rate(results),
                    float(np.mean([r.adversarial_return for r in results])),
                    float(np.mean([r.mean_effort for r in results])),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation — critical-moment threshold beta",
        ["beta", "success", "adv return", "mean effort"],
    )
    for label, success, adv, effort in rows:
        table.add(label, fmt(success), fmt(adv, 1), fmt(effort))
    table.show()

    by_label = {label: success for label, success, _, _ in rows}
    # The paper's choice is at least as effective as the tight window.
    assert by_label["cos(pi/6) (paper)"] >= by_label["cos(pi/3)  (tight)"]
