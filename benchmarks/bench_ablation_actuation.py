"""Ablation bench — Eq. (1) actuation smoothing (steer retain rate alpha).

The per-step blend ``a_t = (1-alpha) nu_t + alpha a_{t-1}`` governs how
fast both the victim's corrections and the attacker's perturbations reach
the wheels. This ablation sweeps alpha for the modular victim under the
oracle attack: sluggish actuation (large alpha) delays the PID's
counter-steer more than it delays the attack ramp, shifting the outcome.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import OracleAttacker
from repro.eval import run_episode
from repro.experiments.common import Table, fmt
from repro.sim import ScenarioConfig, VehicleConfig

ALPHAS = (0.2, 0.4, 0.6, 0.8)


@pytest.mark.experiment
def test_actuation_smoothing_ablation(benchmark):
    def sweep():
        rows = []
        for alpha in ALPHAS:
            scenario = ScenarioConfig(
                vehicle=VehicleConfig(steer_retain=alpha)
            )
            results = [
                run_episode(
                    lambda world: ModularAgent(world.road),
                    attacker=OracleAttacker(budget=0.8),
                    seed=seed,
                    scenario=scenario,
                )
                for seed in range(10)
            ]
            rows.append(
                (
                    alpha,
                    sum(r.attack_successful for r in results) / len(results),
                    float(np.mean([r.deviation_rmse for r in results])),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Ablation — Eq. (1) steer retain rate alpha (modular victim, "
        "oracle attack, budget 0.8)",
        ["alpha", "attack success", "deviation RMSE"],
    )
    for alpha, success, rmse in rows:
        table.add(fmt(alpha, 1), fmt(success), fmt(rmse, 3))
    table.show()
    assert len(rows) == len(ALPHAS)
