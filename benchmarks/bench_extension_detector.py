"""Extension bench — detector-driven switcher vs. the idealized one.

The paper's PNN defense assumes the switcher knows the attack budget and
names a detected-perturbation magnitude as the practical proxy. This bench
evaluates that proxy: a residual detector inverting Eq. (1) to recover the
injected perturbation, driving the same Simplex switch. It should match
the idealized switcher at low/mid budgets and lag by at most one control
tick at saturated ones.
"""

import numpy as np
import pytest

from repro.agents.e2e import EndToEndAgent
from repro.defense import DetectorSwitchedAgent
from repro.eval import run_episodes, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt

BUDGETS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.mark.experiment
def test_detector_vs_idealized_switcher(benchmark, artifacts_ready):
    def sweep():
        rows = []
        for budget in BUDGETS:
            attacker_factory = (
                None
                if budget == 0.0
                else lambda b=budget: registry.camera_attacker(b)
            )

            def detector_victim(world, b=budget):
                # Label trips by context so attack-free trips surface as
                # detector_false_trips_total in the obsv dashboard.
                return DetectorSwitchedAgent(
                    EndToEndAgent(registry._e2e_state()[0]),
                    registry.pnn_column(),
                    sigma=0.2,
                    context="nominal" if b == 0.0 else "attacked",
                )

            detector_results = run_episodes(
                detector_victim, attacker_factory, n_episodes=8, seed=6000
            )
            ideal_results = run_episodes(
                lambda world, b=budget: registry.pnn_victim(world, 0.2, b),
                attacker_factory,
                n_episodes=8,
                seed=6000,
            )
            rows.append(
                (
                    budget,
                    success_rate(detector_results),
                    float(
                        np.mean([r.nominal_return for r in detector_results])
                    ),
                    success_rate(ideal_results),
                    float(np.mean([r.nominal_return for r in ideal_results])),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Extension — residual-detector switcher vs idealized switcher "
        "(pnn sigma=0.2)",
        ["budget", "detector success", "detector nominal",
         "idealized success", "idealized nominal"],
    )
    for budget, ds, dn, s, n in rows:
        table.add(fmt(budget), fmt(ds), fmt(dn, 1), fmt(s), fmt(n, 1))
    table.show()

    by_budget = {row[0]: row for row in rows}
    # Without an attack the detector never falsely switches: identical
    # nominal driving.
    assert by_budget[0.0][2] == pytest.approx(by_budget[0.0][4], abs=1.0)
    # At the mid budget the detector matches the idealized switcher.
    assert by_budget[0.5][1] <= by_budget[0.5][3] + 0.25
