"""Experiment dashboard: one document summarizing a run directory.

Aggregates three artifact families the observability layer produces:

* **episode traces** (``*.jsonl``) — per (victim, attacker, budget) cell:
  episode counts, side-collision (attack success) and collision rates,
  mean strike effort, mean returns, and a per-episode return sparkline;
* **metrics snapshots** (``EXPERIMENTS_metrics.json`` or any registry
  ``to_json`` output) — process-wide counters including the residual
  detector's trip/false-trip/latency instrumentation;
* **bench telemetry** (``BENCH_telemetry.json``) — session wall-clock and
  the hottest span paths.

Output is markdown; :func:`to_html` wraps it into a dependency-free
self-contained HTML page.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from repro.core.injection import ACTIVE_THRESHOLD
from repro.obsv.loader import EpisodeTrace, load_episodes
from repro.obsv.render import fmt, markdown_table, sparkline

#: Hex digits of git SHA / config hash shown in the provenance table.
_SHORT_HASH = 10


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _strike_effort(episode: EpisodeTrace) -> float | None:
    """Mean |delta| over active ticks (the paper's attack-effort metric)."""
    active = [d for d in episode.deltas() if d > ACTIVE_THRESHOLD]
    return _mean(active)


def _episode_rows(episodes: list[EpisodeTrace]) -> list[list[str]]:
    cells: dict[tuple[str, str, str], list[EpisodeTrace]] = {}
    for episode in episodes:
        if not episode.complete:
            continue
        key = (
            episode.victim,
            episode.attacker,
            fmt(episode.budget, 2) if episode.budget is not None else "-",
        )
        cells.setdefault(key, []).append(episode)
    rows = []
    for (victim, attacker, budget), bucket in sorted(cells.items()):
        n = len(bucket)
        side = sum(e.collision == "SIDE" for e in bucket) / n
        collided = sum(e.collision is not None for e in bucket) / n
        efforts = [e for e in (_strike_effort(ep) for ep in bucket)
                   if e is not None]
        returns = [
            float(e.end["nominal_return"])
            for e in bucket
            if "nominal_return" in (e.end or {})
        ]
        rows.append(
            [
                victim,
                attacker,
                budget,
                n,
                fmt(side, 2),
                fmt(collided, 2),
                fmt(_mean(efforts), 2),
                fmt(_mean(returns), 1),
                sparkline(returns, width=24) if returns else "",
            ]
        )
    return rows


def _scan_trace_provenance(path: Path) -> dict:
    """Label + provenance summary of one trace file (dir-walk backend).

    Mirrors the hoisting :meth:`repro.obsv.store.TelemetryStore.ingest_trace`
    performs — the run label is the first cross-process ``run`` stamp, the
    rest comes from the trace's ``provenance`` event — so the dashboard's
    provenance table is byte-identical between both backends.
    """
    label = prov = None
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict):
                    continue
                if label is None and event.get("run") is not None:
                    label = str(event["run"])
                if prov is None and event.get("event") == "provenance":
                    prov = event
                if label is not None and prov is not None:
                    break
    except OSError:
        pass
    prov = prov or {}
    return {
        "source": path.name,
        "label": label,
        "git_sha": prov.get("git_sha"),
        "dirty": prov.get("git_dirty"),
        "config_hash": prov.get("config_hash"),
    }


def _short(value: str | None) -> str:
    if not value:
        return "-"
    return value if value == "unknown" else value[:_SHORT_HASH]


def _provenance_section(rows: list[dict] | None) -> list[str]:
    """Markdown for the run-provenance table (empty when nothing known)."""
    rows = rows or []
    if not any(r.get("git_sha") or r.get("label") for r in rows):
        return []
    lines = ["## Run provenance", ""]
    table = []
    for row in sorted(rows, key=lambda r: str(r.get("source", ""))):
        dirty = row.get("dirty")
        table.append(
            [
                f"`{row.get('source', '?')}`",
                str(row.get("label") or "-"),
                _short(row.get("git_sha")),
                "-" if dirty is None else ("yes" if dirty else "no"),
                _short(row.get("config_hash")),
            ]
        )
    lines.extend(
        markdown_table(
            ["trace", "run label", "git sha", "dirty", "config"], table
        )
    )
    lines.append("")
    return lines


def _load_json(path: str | Path | None) -> dict | None:
    if path is None:
        return None
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def _detector_section(counters: dict, gauges: dict) -> list[str]:
    trips = {k: v for k, v in counters.items() if k.startswith("detector_")}
    latency = {k: v for k, v in gauges.items() if k.startswith("detector_")}
    if not trips and not latency:
        return []
    lines = ["## Residual attack detector", ""]
    rows = [[f"`{name}`", fmt(value, 0)] for name, value in sorted(trips.items())]
    rows += [[f"`{name}` (gauge)", fmt(value, 0)]
             for name, value in sorted(latency.items())]
    lines.extend(markdown_table(["metric", "value"], rows))
    lines.append("")
    return lines


def _render_dashboard(
    source_label: str,
    episodes: list[EpisodeTrace],
    trace_file_count: int,
    metrics: dict | None,
    metrics_name: str,
    bench: dict | None,
    bench_name: str,
    max_spans: int = 12,
    provenance_rows: list[dict] | None = None,
) -> str:
    """Render the markdown document from already-loaded inputs.

    Both backends — the JSONL directory walk and the SQLite telemetry
    store — feed this renderer, which is what keeps their output
    byte-identical for the same run directory.
    """
    lines: list[str] = ["# Experiment dashboard", ""]
    out = lines.append
    out(f"Source directory: `{source_label}`")
    out("")

    out("## Episodes")
    out("")
    if episodes:
        complete = [e for e in episodes if e.complete]
        out(
            f"{len(complete)} complete episodes across"
            f" {trace_file_count} trace file(s)."
        )
        out("")
        lines.extend(
            markdown_table(
                ["victim", "attacker", "eps", "n", "success", "collision",
                 "mean effort", "mean reward", "reward trend"],
                _episode_rows(episodes),
            )
        )
    else:
        out(f"No episode traces (`*.jsonl`) found in `{source_label}`.")
    out("")

    lines.extend(_provenance_section(provenance_rows))

    if metrics is not None:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        lines.extend(_detector_section(counters, gauges))
        if counters:
            out(f"## Counters (`{metrics_name}`)")
            out("")
            rows = [[f"`{name}`", fmt(value, 0)]
                    for name, value in sorted(counters.items())]
            lines.extend(markdown_table(["counter", "value"], rows))
            out("")

    if bench is not None:
        out(f"## Bench telemetry (`{bench_name}`)")
        out("")
        out(
            f"Session wall-clock {fmt(bench.get('wall_clock_s'), 1)} s on"
            f" python {bench.get('python', '?')} /"
            f" numpy {bench.get('numpy', '?')}."
        )
        out("")
        spans = bench.get("spans", {})
        if spans:
            ranked = sorted(
                spans.items(),
                key=lambda item: -float(item[1].get("total_s", 0.0)),
            )[:max_spans]
            rows = [
                [
                    f"`{name}`",
                    int(stats.get("count", 0)),
                    fmt(stats.get("total_s"), 2),
                    fmt(stats.get("mean_us"), 0),
                    fmt(stats.get("p99_us"), 0),
                ]
                for name, stats in ranked
            ]
            lines.extend(
                markdown_table(
                    ["span", "calls", "total s", "mean us", "p99 us"], rows
                )
            )
            out("")
    return "\n".join(lines) + "\n"


def build_dashboard(
    trace_dir: str | Path,
    metrics_path: str | Path | None = None,
    bench_path: str | Path | None = None,
    max_spans: int = 12,
) -> str:
    """Render the markdown dashboard for one run directory.

    ``metrics_path``/``bench_path`` default to ``EXPERIMENTS_metrics.json``
    and ``BENCH_telemetry.json`` inside (or next to) ``trace_dir``.
    """
    trace_dir = Path(trace_dir)
    if metrics_path is None:
        metrics_path = trace_dir / "EXPERIMENTS_metrics.json"
    if bench_path is None:
        bench_path = trace_dir / "BENCH_telemetry.json"

    trace_files = sorted(trace_dir.glob("*.jsonl"))
    episodes: list[EpisodeTrace] = []
    provenance_rows: list[dict] = []
    for path in trace_files:
        episodes.extend(load_episodes(path))
        provenance_rows.append(_scan_trace_provenance(path))
    return _render_dashboard(
        str(trace_dir),
        episodes,
        len(trace_files),
        _load_json(metrics_path),
        Path(metrics_path).name,
        _load_json(bench_path),
        Path(bench_path).name,
        max_spans=max_spans,
        provenance_rows=provenance_rows,
    )


def build_dashboard_from_store(
    store_path: str | Path, max_spans: int = 12
) -> str:
    """Render the same dashboard from an ingested telemetry store.

    For a store populated by ``TelemetryStore.ingest_dir`` the output is
    identical to :func:`build_dashboard` over the original directory —
    no JSONL re-parsing involved.
    """
    from repro.obsv.store import TelemetryStore

    with TelemetryStore(store_path) as store:
        source = store.get_meta("source_dir") or str(store_path)
        episodes = store.episodes()
        trace_file_count = sum(
            1 for info in store.runs() if info.kind == "trace"
        )
        metrics = store.snapshot("EXPERIMENTS_metrics.json")
        bench = store.snapshot("BENCH_telemetry.json")
        provenance_rows = [
            {
                "source": Path(row["source"]).name,
                "label": row["label"],
                "git_sha": row["git_sha"],
                "dirty": (
                    None if row["dirty"] is None else bool(row["dirty"])
                ),
                "config_hash": row["config_hash"],
            }
            for row in store.run_provenance()
        ]
    return _render_dashboard(
        source,
        episodes,
        trace_file_count,
        metrics,
        "EXPERIMENTS_metrics.json",
        bench,
        "BENCH_telemetry.json",
        max_spans=max_spans,
        provenance_rows=provenance_rows,
    )


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro experiment dashboard</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace;
       max-width: 72rem; margin: 2rem auto; padding: 0 1rem;
       color: #1a1a2e; background: #fafaf7; }}
table {{ border-collapse: collapse; margin: 0.8rem 0; }}
th, td {{ border: 1px solid #c8c8c0; padding: 0.25rem 0.6rem;
          text-align: left; font-size: 0.85rem; }}
th {{ background: #ecece4; }}
h1, h2 {{ font-weight: 600; }}
code {{ background: #eeeee6; padding: 0 0.2rem; }}
</style></head><body>
{body}
</body></html>
"""


def to_html(markdown: str) -> str:
    """Convert the dashboard markdown into a self-contained HTML page.

    Understands exactly the constructs :func:`build_dashboard` emits —
    ``#``/``##`` headings, pipe tables, inline code, and paragraphs — no
    external renderer needed.
    """
    body: list[str] = []
    table: list[list[str]] = []

    def _inline(text: str) -> str:
        text = _html.escape(text)
        parts = text.split("`")
        for index in range(1, len(parts), 2):
            parts[index] = f"<code>{parts[index]}</code>"
        return "".join(parts)

    def flush_table() -> None:
        if not table:
            return
        body.append("<table>")
        header, *rest = table
        body.append(
            "<tr>" + "".join(f"<th>{_inline(c)}</th>" for c in header) + "</tr>"
        )
        for row in rest:
            body.append(
                "<tr>" + "".join(f"<td>{_inline(c)}</td>" for c in row) + "</tr>"
            )
        body.append("</table>")
        table.clear()

    for line in markdown.splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            if all(set(c) <= {"-", ":"} and c for c in cells):
                continue  # separator row
            table.append(cells)
            continue
        flush_table()
        if not stripped:
            continue
        if stripped.startswith("## "):
            body.append(f"<h2>{_inline(stripped[3:])}</h2>")
        elif stripped.startswith("# "):
            body.append(f"<h1>{_inline(stripped[2:])}</h1>")
        else:
            body.append(f"<p>{_inline(stripped)}</p>")
    flush_table()
    return _HTML_TEMPLATE.format(body="\n".join(body))
