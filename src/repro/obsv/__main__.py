"""Module entry point: ``python -m repro.obsv <subcommand>``."""

from repro.obsv.cli import main

raise SystemExit(main())
