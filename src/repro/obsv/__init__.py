"""Post-mortem analysis of telemetry artifacts (the consumer side).

``repro.telemetry`` produces JSONL episode traces, metrics snapshots, and
span timings; this package *reads* them:

* :mod:`repro.obsv.forensics` — per-episode post-mortems: lurk/strike
  phase segmentation, safety-margin timelines, collision geometry.
* :mod:`repro.obsv.replay` — re-simulates a recorded episode from its
  seed and diffs the regenerated tick stream against the trace.
* :mod:`repro.obsv.dashboard` — aggregates traces + metrics + bench
  telemetry into one markdown/HTML dashboard.
* :mod:`repro.obsv.regress` — compares ``BENCH_telemetry.json`` files and
  flags perf/behaviour regressions against a committed baseline.

Entry point: ``python -m repro.obsv {forensics,replay,dashboard,regress}``.
"""

from repro.obsv.forensics import EpisodeForensics, Phase, analyze, segment_phases
from repro.obsv.loader import EpisodeTrace, load_episodes, split_episodes
from repro.obsv.regress import Breach, RegressionThresholds, compare_snapshots
from repro.obsv.replay import FieldDiff, ReplayError, ReplayReport, replay_episode

__all__ = [
    "Breach",
    "EpisodeForensics",
    "EpisodeTrace",
    "FieldDiff",
    "Phase",
    "RegressionThresholds",
    "ReplayError",
    "ReplayReport",
    "analyze",
    "compare_snapshots",
    "load_episodes",
    "replay_episode",
    "segment_phases",
    "split_episodes",
]
