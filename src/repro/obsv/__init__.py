"""Post-mortem analysis and live monitoring of telemetry (consumer side).

``repro.telemetry`` produces JSONL episode traces, metrics snapshots, and
span timings; this package *reads* them:

* :mod:`repro.obsv.forensics` — per-episode post-mortems: lurk/strike
  phase segmentation, safety-margin timelines, collision geometry.
* :mod:`repro.obsv.replay` — re-simulates a recorded episode from its
  seed and diffs the regenerated tick stream against the trace.
* :mod:`repro.obsv.dashboard` — aggregates traces + metrics + bench
  telemetry into one markdown/HTML dashboard (JSONL- or store-backed).
* :mod:`repro.obsv.regress` — compares ``BENCH_telemetry.json`` files and
  flags perf/behaviour regressions against a committed baseline.
* :mod:`repro.obsv.store` — SQLite telemetry store: ingests traces and
  metrics snapshots into indexed tables with a filter/aggregate query API.
* :mod:`repro.obsv.alerts` — watchdog rules (NaN loss, Q divergence,
  entropy collapse, reward plateau, buffer starvation, throughput
  regression) over streaming trace events.
* :mod:`repro.obsv.watch` — live monitor that tails a growing training
  trace (or a directory of per-worker shards, multiplexed), renders a
  refreshing terminal view, and fires the watchdogs.
* :mod:`repro.obsv.serve` — localhost HTTP server fronting one run:
  live HTML dashboard, flamegraph, JSON query API, run comparison
  (``/compare``), and a Server-Sent-Events stream of new trace events
  and watchdog alerts.
* :mod:`repro.obsv.compare` — statistical A/B comparison of recorded
  runs (seeded bootstrap CIs, permutation tests, effect sizes, Holm
  correction) and the metric-snapshot regression gate behind
  ``obsv regress --metrics``.

Entry point: ``python -m repro.obsv
{forensics,replay,dashboard,compare,regress,ingest,query,watch,serve}``.
"""

from repro.obsv.alerts import Alert, WatchConfig, Watchdog
from repro.obsv.compare import (
    RunComparison,
    StatConfig,
    compare_metric_snapshots,
    compare_runs,
    load_run,
    metric_snapshot,
)
from repro.obsv.forensics import EpisodeForensics, Phase, analyze, segment_phases
from repro.obsv.loader import EpisodeTrace, load_episodes, split_episodes
from repro.obsv.regress import Breach, RegressionThresholds, compare_snapshots
from repro.obsv.replay import FieldDiff, ReplayError, ReplayReport, replay_episode
from repro.obsv.store import TelemetryStore, export_csv, is_store_path
from repro.obsv.watch import WatchState, watch_trace

__all__ = [
    "Alert",
    "Breach",
    "RunComparison",
    "StatConfig",
    "compare_metric_snapshots",
    "compare_runs",
    "load_run",
    "metric_snapshot",
    "EpisodeForensics",
    "EpisodeTrace",
    "FieldDiff",
    "Phase",
    "RegressionThresholds",
    "ReplayError",
    "ReplayReport",
    "TelemetryStore",
    "WatchConfig",
    "WatchState",
    "Watchdog",
    "analyze",
    "compare_snapshots",
    "export_csv",
    "is_store_path",
    "load_episodes",
    "replay_episode",
    "segment_phases",
    "split_episodes",
    "watch_trace",
]
