"""Per-episode post-mortems from JSONL tick traces.

The paper's learned attacker is *temporal*: it lurks with near-zero
injection, then strikes inside a short safety-critical window beside an
NPC (Fig. 8's success-window analysis). This module recovers that
structure from a recorded trace alone:

* lurk/strike **phase segmentation** of the injection-effort timeline
  (the strike threshold mirrors the episode runner: half the attack
  budget, floored at :data:`~repro.core.injection.ACTIVE_THRESHOLD`);
* per-phase effort and lateral-deviation statistics;
* **safety timelines** — nearest-NPC gap and estimated time-to-collision
  per tick, with minima;
* a **collision report**: which actor, ego pose and NPC gap at impact,
  and ticks/seconds from strike onset to impact.

Rendered as JSON (:meth:`EpisodeForensics.to_json`) or markdown
(:meth:`EpisodeForensics.to_markdown`, with sparkline timelines).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.injection import ACTIVE_THRESHOLD
from repro.obsv.loader import EpisodeTrace
from repro.obsv.render import fmt, markdown_table, sparkline

#: Lurk runs at most this long between two strike runs are absorbed into
#: the strike (a single sub-threshold tick does not end an attack).
BRIDGE_TICKS = 2


@dataclass(frozen=True)
class Phase:
    """One maximal run of lurk or strike behaviour."""

    kind: str  # "lurk" | "strike"
    #: First/last tick index of the run (as recorded, inclusive).
    start_tick: int
    end_tick: int
    ticks: int
    mean_abs_delta: float
    max_abs_delta: float
    #: Mean normalized lateral deviation over the run (None if untracked).
    mean_lateral: float | None
    #: Smallest nearest-NPC gap seen during the run, meters.
    min_npc_gap: float | None


def strike_threshold(
    budget: float | None, deltas: list[float], fraction: float = 0.5
) -> float:
    """|delta| level separating strike from lurk.

    Mirrors the episode runner's attack-initiation rule: ``fraction`` of
    the attack budget, floored at the active threshold. When the trace
    predates the ``budget`` field the peak injection stands in for it.
    """
    if budget is None or budget <= 0.0:
        budget = max(deltas, default=0.0)
    return max(ACTIVE_THRESHOLD, fraction * float(budget))


def _stats(ticks: list[dict]) -> tuple[float, float, float | None, float | None]:
    deltas = [abs(float(t["delta"])) for t in ticks]
    laterals = [float(t["lateral"]) for t in ticks if "lateral" in t]
    gaps = [float(t["npc_gap"]) for t in ticks if "npc_gap" in t]
    return (
        sum(deltas) / len(deltas),
        max(deltas),
        sum(laterals) / len(laterals) if laterals else None,
        min(gaps) if gaps else None,
    )


def segment_phases(
    ticks: list[dict], strike_level: float
) -> list[Phase]:
    """Split a tick stream into alternating lurk/strike phases.

    Each tick is classified by ``|delta| >= strike_level``; consecutive
    equal classifications merge into one phase, and lurk gaps of at most
    :data:`BRIDGE_TICKS` between two strike runs are absorbed into the
    strike so a single quiet tick does not split an attack in two.
    """
    if not ticks:
        return []
    labels = [
        "strike" if abs(float(t["delta"])) >= strike_level else "lurk"
        for t in ticks
    ]
    # Bridge short lurk gaps flanked by strikes.
    index = 0
    while index < len(labels):
        if labels[index] == "lurk":
            run_end = index
            while run_end < len(labels) and labels[run_end] == "lurk":
                run_end += 1
            flanked = index > 0 and run_end < len(labels)
            if flanked and run_end - index <= BRIDGE_TICKS:
                for j in range(index, run_end):
                    labels[j] = "strike"
            index = run_end
        else:
            index += 1

    phases: list[Phase] = []
    run_start = 0
    for index in range(1, len(labels) + 1):
        if index == len(labels) or labels[index] != labels[run_start]:
            run = ticks[run_start:index]
            mean_delta, max_delta, mean_lateral, min_gap = _stats(run)
            phases.append(
                Phase(
                    kind=labels[run_start],
                    start_tick=int(run[0]["tick"]),
                    end_tick=int(run[-1]["tick"]),
                    ticks=len(run),
                    mean_abs_delta=mean_delta,
                    max_abs_delta=max_delta,
                    mean_lateral=mean_lateral,
                    min_npc_gap=min_gap,
                )
            )
            run_start = index
    return phases


@dataclass
class EpisodeForensics:
    """Everything the post-mortem recovers from one episode trace."""

    episode: int | str
    seed: int | None
    victim: str
    attacker: str
    budget: float | None
    strike_level: float
    steps: int
    duration: float | None
    collision: str | None
    collision_with: str | None
    passed_npcs: int | None
    nominal_return: float | None
    adversarial_return: float | None
    phases: list[Phase] = field(default_factory=list)
    #: Tick-weighted mean |delta| per phase kind (NaN when the kind is absent).
    lurk_mean_delta: float = float("nan")
    strike_mean_delta: float = float("nan")
    lurk_mean_lateral: float | None = None
    strike_mean_lateral: float | None = None
    #: First strike tick (None = the attacker never struck).
    strike_onset_tick: int | None = None
    ticks_strike_to_collision: int | None = None
    seconds_strike_to_collision: float | None = None
    #: Smallest nearest-NPC gap over the episode and when it occurred.
    min_npc_gap: float | None = None
    min_npc_gap_tick: int | None = None
    #: Smallest estimated time-to-collision observed, seconds.
    min_ttc: float | None = None
    #: Ego pose at the final recorded tick (collision geometry).
    final_tick: dict = field(default_factory=dict)

    @property
    def struck(self) -> bool:
        return self.strike_onset_tick is not None

    # -- rendering ---------------------------------------------------------------

    def to_json(self) -> dict:
        return asdict(self)

    def to_markdown(self, ticks: list[dict] | None = None) -> str:
        lines: list[str] = []
        out = lines.append
        out(f"# Forensics — episode {self.episode}")
        out("")
        out(
            f"victim `{self.victim}` vs attacker `{self.attacker}`"
            f" (budget {fmt(self.budget, 2)}, strike level"
            f" {fmt(self.strike_level, 2)}), seed {self.seed}"
        )
        out("")
        outcome = self.collision or "no collision"
        if self.collision_with:
            outcome += f" with `{self.collision_with}`"
        out(
            f"- **outcome**: {outcome} after {self.steps} ticks"
            f" ({fmt(self.duration, 1)} s), {self.passed_npcs} NPCs passed"
        )
        out(
            f"- **returns**: nominal {fmt(self.nominal_return, 1)},"
            f" adversarial {fmt(self.adversarial_return, 1)}"
        )
        if self.struck:
            out(
                f"- **strike onset**: tick {self.strike_onset_tick};"
                " strike mean |delta|"
                f" {fmt(self.strike_mean_delta)} vs lurk"
                f" {fmt(self.lurk_mean_delta)}"
            )
        else:
            out("- **strike onset**: never (no strike phase)")
        if self.ticks_strike_to_collision is not None:
            out(
                f"- **strike-to-collision**: {self.ticks_strike_to_collision}"
                f" ticks ({fmt(self.seconds_strike_to_collision, 2)} s)"
            )
        if self.min_npc_gap is not None:
            out(
                f"- **minimum safety margin**: {fmt(self.min_npc_gap, 2)} m"
                f" to nearest NPC at tick {self.min_npc_gap_tick}"
            )
        if self.min_ttc is not None:
            out(f"- **minimum estimated TTC**: {fmt(self.min_ttc, 2)} s")
        if self.final_tick:
            out(
                "- **final pose**: x="
                f"{fmt(self.final_tick.get('x'), 1)},"
                f" y={fmt(self.final_tick.get('y'), 2)},"
                f" yaw={fmt(self.final_tick.get('yaw'), 3)},"
                f" speed={fmt(self.final_tick.get('speed'), 1)} m/s,"
                f" npc_gap={fmt(self.final_tick.get('npc_gap'), 2)} m"
            )
        out("")
        out("## Phases")
        out("")
        rows = [
            [
                p.kind,
                f"{p.start_tick}-{p.end_tick}",
                p.ticks,
                fmt(p.mean_abs_delta),
                fmt(p.max_abs_delta),
                fmt(p.mean_lateral),
                fmt(p.min_npc_gap, 2),
            ]
            for p in self.phases
        ]
        lines.extend(
            markdown_table(
                ["phase", "ticks", "n", "mean |delta|", "max |delta|",
                 "mean |lateral|", "min NPC gap (m)"],
                rows,
            )
        )
        if ticks:
            out("")
            out("## Timelines")
            out("")
            out("```")
            out(f"|delta|  {sparkline([abs(float(t['delta'])) for t in ticks])}")
            gaps = [t for t in ticks if "npc_gap" in t]
            if gaps:
                out(f"npc_gap  {sparkline([float(t['npc_gap']) for t in gaps])}")
            lateral = [t for t in ticks if "lateral" in t]
            if lateral:
                out(
                    "lateral  "
                    + sparkline([abs(float(t["lateral"])) for t in lateral])
                )
            out("```")
        return "\n".join(lines) + "\n"


def _kind_aggregate(phases: list[Phase], kind: str):
    """Tick-weighted mean |delta| and lateral over all phases of ``kind``."""
    chosen = [p for p in phases if p.kind == kind]
    ticks = sum(p.ticks for p in chosen)
    if ticks == 0:
        return float("nan"), None
    mean_delta = sum(p.mean_abs_delta * p.ticks for p in chosen) / ticks
    with_lateral = [p for p in chosen if p.mean_lateral is not None]
    lateral_ticks = sum(p.ticks for p in with_lateral)
    mean_lateral = (
        sum(p.mean_lateral * p.ticks for p in with_lateral) / lateral_ticks
        if lateral_ticks
        else None
    )
    return mean_delta, mean_lateral


def analyze(
    episode: EpisodeTrace, strike_fraction: float = 0.5
) -> EpisodeForensics:
    """Run the full post-mortem over one episode trace."""
    if not episode.ticks:
        raise ValueError(f"episode {episode.episode!r} has no tick events")
    ticks = episode.ticks
    deltas = episode.deltas()
    level = strike_threshold(episode.budget, deltas, strike_fraction)
    phases = segment_phases(ticks, level)
    lurk_delta, lurk_lateral = _kind_aggregate(phases, "lurk")
    strike_delta, strike_lateral = _kind_aggregate(phases, "strike")

    strike_onset = next(
        (p.start_tick for p in phases if p.kind == "strike"), None
    )
    end = episode.end or {}
    collision = end.get("collision")
    final = ticks[-1]
    ticks_to_collision = None
    seconds_to_collision = None
    if collision is not None and strike_onset is not None:
        ticks_to_collision = int(final["tick"]) - strike_onset + 1
        dt = None
        if len(ticks) >= 2:
            dt = float(ticks[1]["t"]) - float(ticks[0]["t"])
        if dt:
            seconds_to_collision = ticks_to_collision * dt

    gap_ticks = [t for t in ticks if "npc_gap" in t]
    min_gap = min_gap_tick = None
    if gap_ticks:
        smallest = min(gap_ticks, key=lambda t: float(t["npc_gap"]))
        min_gap = float(smallest["npc_gap"])
        min_gap_tick = int(smallest["tick"])
    ttcs = [float(t["ttc"]) for t in ticks if "ttc" in t]
    min_ttc = min(ttcs) if ttcs else None

    steps = int(end.get("steps", final["tick"]))
    duration = end.get("duration")
    return EpisodeForensics(
        episode=episode.episode,
        seed=episode.seed,
        victim=episode.victim,
        attacker=episode.attacker,
        budget=episode.budget,
        strike_level=level,
        steps=steps,
        duration=float(duration) if duration is not None else None,
        collision=collision,
        collision_with=end.get("collision_with"),
        passed_npcs=end.get("passed_npcs"),
        nominal_return=end.get("nominal_return"),
        adversarial_return=end.get("adversarial_return"),
        phases=phases,
        lurk_mean_delta=lurk_delta,
        strike_mean_delta=strike_delta,
        lurk_mean_lateral=lurk_lateral,
        strike_mean_lateral=strike_lateral,
        strike_onset_tick=strike_onset,
        ticks_strike_to_collision=ticks_to_collision,
        seconds_strike_to_collision=seconds_to_collision,
        min_npc_gap=min_gap,
        min_npc_gap_tick=min_gap_tick,
        min_ttc=min_ttc,
        final_tick={
            k: final[k]
            for k in ("tick", "t", "x", "y", "yaw", "speed", "npc_gap")
            if k in final
        },
    )
