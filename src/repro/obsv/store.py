"""SQLite-backed telemetry store: ingest traces once, query them forever.

The JSONL traces the telemetry layer emits are append-friendly but
read-hostile: every dashboard render, regression check, or ad-hoc
question re-parses whole files. :class:`TelemetryStore` ingests trace
files and metrics/bench snapshots into an indexed SQLite database
(stdlib ``sqlite3``, no extra deps) so downstream consumers — the
dashboard, ``repro.obsv regress``, and the ``query`` subcommand — hit
indexes instead of re-decoding JSON lines.

Layout (schema version 4):

* ``runs``      — one row per ingested source file (trace or snapshot),
  keyed by absolute path with mtime/size for change detection; re-ingest
  of an unchanged file is a no-op, a changed file is replaced. Since v4
  each trace run also hoists its **provenance**: the logical run label
  (the cross-process ``run`` context stamp), the git SHA / dirty flag /
  config hash from the trace's ``provenance`` event
  (:mod:`repro.telemetry.provenance`), and the full provenance payload —
  so "which runs came from commit X with config Y?" is one indexed
  query, and aggregates can group by run label, git SHA, or config hash.
* ``events``    — one row per trace event. The full record is kept as a
  JSON payload column; the hot filter fields (kind, episode, loop, step,
  tick, t, name, worker) are hoisted into indexed columns. ``name``
  (added in v2) carries span paths from ``span``/``profile`` events, so
  per-span self-time series are one indexed filter away. ``worker``
  (added in v3) carries the cross-process context stamp
  (:mod:`repro.telemetry.context`); shard files ingested without stamps
  inherit the worker id encoded in their filename
  (``trace.w<worker>.jsonl``), so multi-process sweeps filter and group
  per worker either way.
* ``snapshots`` — whole metrics / bench JSON documents by name
  (``EXPERIMENTS_metrics.json``, ``BENCH_telemetry.json``,
  ``PROFILE_report.json``, ...).
* ``meta``      — key/value store (schema version, source directory).

Opening an older store migrates it in place (``ALTER TABLE`` adding the
``name`` / ``worker`` columns, backfilled from payloads); stores newer
than this build refuse to open.

Field-level reads (``series`` / ``aggregate``) use the SQLite ``json1``
functions when available and fall back to decoding payloads in Python
otherwise, so the store works on minimal SQLite builds too.
"""

from __future__ import annotations

import csv
import io
import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.obsv.loader import EpisodeTrace, split_episodes
from repro.telemetry.log import get_logger
from repro.telemetry.trace import read_trace, validate_event

log = get_logger("obsv.store")

#: Default store filename inside an ingested run directory.
DEFAULT_STORE_NAME = "obsv.sqlite"

SCHEMA_VERSION = 4

#: Aggregations exposed by :meth:`TelemetryStore.aggregate` / the CLI.
AGGREGATES = ("count", "mean", "min", "max", "sum")

#: Provenance keys (hoisted onto ``runs`` in v4) usable as GROUP BY keys;
#: grouping by one joins events to their run row.
PROVENANCE_KEYS = ("label", "git_sha", "config_hash")

#: Columns usable as GROUP BY keys (all indexed or trivially cheap).
GROUP_KEYS = (
    "kind", "episode", "loop", "run", "name", "worker"
) + PROVENANCE_KEYS

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    source      TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL,
    mtime       REAL NOT NULL,
    size        INTEGER NOT NULL,
    events      INTEGER NOT NULL DEFAULT 0,
    label       TEXT,
    git_sha     TEXT,
    dirty       INTEGER,
    config_hash TEXT,
    provenance  TEXT
);
CREATE TABLE IF NOT EXISTS events (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id),
    seq     INTEGER NOT NULL,
    kind    TEXT NOT NULL,
    episode TEXT,
    loop    TEXT,
    step    INTEGER,
    tick    INTEGER,
    t       REAL,
    name    TEXT,
    worker  INTEGER,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events(kind);
CREATE INDEX IF NOT EXISTS idx_events_episode ON events(episode);
CREATE INDEX IF NOT EXISTS idx_events_loop ON events(loop);
CREATE TABLE IF NOT EXISTS snapshots (
    name    TEXT PRIMARY KEY,
    source  TEXT NOT NULL,
    payload TEXT NOT NULL
);
"""


#: The ``runs`` columns selected into :class:`RunInfo`, in field order.
_RUN_COLUMNS = (
    "run_id, source, kind, events, mtime, size,"
    " label, git_sha, dirty, config_hash"
)


@dataclass(frozen=True)
class RunInfo:
    """One ingested source file."""

    run_id: int
    source: str
    kind: str  # "trace" | "snapshot"
    events: int
    mtime: float
    size: int
    #: Logical run label (the cross-process ``run`` context stamp).
    label: str | None = None
    #: Git revision from the trace's provenance event.
    git_sha: str | None = None
    #: 1 when the working tree had uncommitted changes (None = unknown).
    dirty: int | None = None
    #: Scenario-config hash from the trace's provenance event.
    config_hash: str | None = None


def is_store_path(path: str | Path) -> bool:
    """Heuristic: does this path name a telemetry store (vs JSON/JSONL)?"""
    path = Path(path)
    if path.suffix in (".sqlite", ".db", ".sqlite3"):
        return True
    if not path.is_file():
        return False
    with path.open("rb") as handle:
        return handle.read(16) == b"SQLite format 3\x00"


class TelemetryStore:
    """Queryable SQLite mirror of trace files and telemetry snapshots."""

    def __init__(
        self,
        path: str | Path,
        lock_retries: int = 5,
        lock_backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Open (or create) a store.

        Writes run in explicit ``BEGIN IMMEDIATE`` transactions and retry
        ``database is locked`` errors up to ``lock_retries`` times with
        exponential backoff starting at ``lock_backoff`` seconds, so a
        live ``obsv watch`` and a concurrent ``obsv ingest`` sharing one
        store contend instead of crashing. ``sleep`` is injectable for
        tests.
        """
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock_retries = max(int(lock_retries), 0)
        self._lock_backoff = float(lock_backoff)
        self._sleep = sleep
        # Autocommit mode: _write issues its own BEGIN IMMEDIATE, and the
        # small native timeout keeps per-statement waits short so the
        # Python-level backoff governs contention.
        self._conn = sqlite3.connect(
            str(self.path), timeout=0.25, isolation_level=None
        )
        self._conn.executescript(_DDL)
        self._json1 = self._probe_json1()
        existing = self.get_meta("schema_version")
        if existing is None:
            self.set_meta("schema_version", str(SCHEMA_VERSION))
        elif int(existing) > SCHEMA_VERSION:
            raise ValueError(
                f"store {self.path} has schema v{existing}, "
                f"this build reads v{SCHEMA_VERSION}"
            )
        elif int(existing) < SCHEMA_VERSION:
            self._migrate(int(existing))
        # v2/v3 indexes; created here (not in _DDL) so they land after an
        # older store's migration has added the columns.
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_events_name ON events(name)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_events_worker ON events(worker)"
        )

    def _probe_json1(self) -> bool:
        try:
            self._conn.execute("SELECT json_extract('{}', '$.x')")
            return True
        except sqlite3.OperationalError:
            return False

    def _migrate(self, from_version: int) -> None:
        """Upgrade an older store in place (one transaction)."""
        log.info(
            "store.migrate", path=str(self.path),
            from_version=from_version, to_version=SCHEMA_VERSION,
        )
        json1 = self._json1

        def txn(conn: sqlite3.Connection) -> None:
            if from_version < 2:
                columns = {
                    row[1]
                    for row in conn.execute("PRAGMA table_info(events)")
                }
                if "name" not in columns:
                    conn.execute("ALTER TABLE events ADD COLUMN name TEXT")
                # Backfill from payloads so pre-migration span events are
                # filterable too.
                if json1:
                    conn.execute(
                        "UPDATE events SET name ="
                        " json_extract(payload, '$.name')"
                        " WHERE json_extract(payload, '$.name') IS NOT NULL"
                    )
                else:
                    rows = conn.execute(
                        "SELECT run_id, seq, payload FROM events"
                    ).fetchall()
                    for run_id, seq, payload in rows:
                        value = json.loads(payload).get("name")
                        if value is not None:
                            conn.execute(
                                "UPDATE events SET name = ?"
                                " WHERE run_id = ? AND seq = ?",
                                (str(value), run_id, seq),
                            )
            if from_version < 3:
                columns = {
                    row[1]
                    for row in conn.execute("PRAGMA table_info(events)")
                }
                if "worker" not in columns:
                    conn.execute(
                        "ALTER TABLE events ADD COLUMN worker INTEGER"
                    )
                if json1:
                    conn.execute(
                        "UPDATE events SET worker ="
                        " json_extract(payload, '$.worker')"
                        " WHERE json_extract(payload, '$.worker')"
                        " IS NOT NULL"
                    )
                else:
                    rows = conn.execute(
                        "SELECT run_id, seq, payload FROM events"
                    ).fetchall()
                    for run_id, seq, payload in rows:
                        value = json.loads(payload).get("worker")
                        if value is not None:
                            conn.execute(
                                "UPDATE events SET worker = ?"
                                " WHERE run_id = ? AND seq = ?",
                                (int(value), run_id, seq),
                            )
            if from_version < 4:
                columns = {
                    row[1]
                    for row in conn.execute("PRAGMA table_info(runs)")
                }
                for column, col_type in (
                    ("label", "TEXT"),
                    ("git_sha", "TEXT"),
                    ("dirty", "INTEGER"),
                    ("config_hash", "TEXT"),
                    ("provenance", "TEXT"),
                ):
                    if column not in columns:
                        conn.execute(
                            f"ALTER TABLE runs ADD COLUMN {column} {col_type}"
                        )
                # Backfill each trace run from its stored events: the
                # label is the first cross-process `run` stamp, the rest
                # comes from the trace's provenance event (pre-v4 traces
                # usually have neither — their columns stay NULL).
                run_ids = [
                    row[0]
                    for row in conn.execute(
                        "SELECT run_id FROM runs WHERE kind = 'trace'"
                    )
                ]
                for run_id in run_ids:
                    label = prov = None
                    for (payload,) in conn.execute(
                        "SELECT payload FROM events WHERE run_id = ?"
                        " ORDER BY seq",
                        (run_id,),
                    ):
                        event = json.loads(payload)
                        if label is None and event.get("run") is not None:
                            label = str(event["run"])
                        if prov is None and event.get("event") == "provenance":
                            prov = event
                        if label is not None and prov is not None:
                            break
                    if label is None and prov is None:
                        continue
                    conn.execute(
                        "UPDATE runs SET label = ?, git_sha = ?, dirty = ?,"
                        " config_hash = ?, provenance = ? WHERE run_id = ?",
                        (
                            label,
                            None if prov is None else prov.get("git_sha"),
                            None
                            if prov is None
                            else int(bool(prov.get("git_dirty"))),
                            None if prov is None else prov.get("config_hash"),
                            None
                            if prov is None
                            else json.dumps(prov, separators=(",", ":")),
                            run_id,
                        ),
                    )
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(SCHEMA_VERSION),),
            )

        self._write(txn)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    # -- write path ---------------------------------------------------------------

    @staticmethod
    def _is_locked(error: sqlite3.OperationalError) -> bool:
        return "locked" in str(error) or "busy" in str(error)

    def _write(self, txn: Callable[[sqlite3.Connection], object]) -> object:
        """Run ``txn(conn)`` atomically, retrying lock contention.

        ``BEGIN IMMEDIATE`` takes the write lock up front, so the
        transaction either starts with the lock held or fails fast here
        — never half-way through ``txn``. Lock errors back off
        exponentially (``lock_backoff * 2^attempt``) up to
        ``lock_retries`` times before propagating.
        """
        delay = self._lock_backoff
        for attempt in range(self._lock_retries + 1):
            retriable = attempt < self._lock_retries
            try:
                self._conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as error:
                if not self._is_locked(error) or not retriable:
                    raise
            else:
                try:
                    result = txn(self._conn)
                    self._conn.execute("COMMIT")
                    return result
                except BaseException as error:
                    try:
                        self._conn.execute("ROLLBACK")
                    except sqlite3.OperationalError:
                        pass
                    if not (
                        isinstance(error, sqlite3.OperationalError)
                        and self._is_locked(error)
                        and retriable
                    ):
                        raise
            log.warning(
                "store.locked_retry", path=str(self.path),
                attempt=attempt + 1, delay_s=delay,
            )
            self._sleep(delay)
            delay *= 2
        raise AssertionError("unreachable")  # loop always returns or raises

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- meta ---------------------------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        self._write(
            lambda conn: conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, str(value)),
            )
        )

    def get_meta(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    # -- ingest -------------------------------------------------------------------

    def _stat(self, path: Path) -> tuple[float, int]:
        stat = path.stat()
        return stat.st_mtime, stat.st_size

    def _existing_run(self, source: str) -> RunInfo | None:
        row = self._conn.execute(
            f"SELECT {_RUN_COLUMNS} FROM runs WHERE source = ?",
            (source,),
        ).fetchone()
        return None if row is None else RunInfo(*row)

    def ingest_trace(self, path: str | Path, force: bool = False) -> RunInfo:
        """Load one JSONL trace file (idempotent on unchanged files).

        Schema-invalid events are skipped, mirroring the non-strict JSONL
        loader, so store-backed consumers see the same event stream.
        Shard files (``trace.w<worker>.jsonl``) hoist the worker id from
        the filename for records missing an explicit ``worker`` stamp.
        """
        from repro.telemetry.context import shard_worker

        path = Path(path).resolve()
        mtime, size = self._stat(path)
        existing = self._existing_run(str(path))
        if (
            existing is not None
            and not force
            and existing.mtime == mtime
            and existing.size == size
        ):
            return existing
        events = [e for e in read_trace(path) if not validate_event(e)]
        worker_hint = shard_worker(path)
        # Hoist provenance onto the run row: the logical run label (first
        # cross-process `run` stamp) and the trace's provenance event.
        label = next(
            (
                str(e["run"])
                for e in events
                if e.get("run") is not None
            ),
            None,
        )
        prov = next(
            (e for e in events if e.get("event") == "provenance"), None
        )
        git_sha = None if prov is None else prov.get("git_sha")
        dirty = None if prov is None else int(bool(prov.get("git_dirty")))
        config_hash = None if prov is None else prov.get("config_hash")
        prov_json = (
            None if prov is None else json.dumps(prov, separators=(",", ":"))
        )

        def txn(conn: sqlite3.Connection) -> int:
            # Re-check under the write lock: another process may have
            # ingested this file between the fast-path check above and
            # BEGIN IMMEDIATE. Concurrent ingests of one file must end
            # with exactly one run row, never two.
            row = conn.execute(
                "SELECT run_id, mtime, size FROM runs WHERE source = ?",
                (str(path),),
            ).fetchone()
            if row is not None:
                if not force and row[1] == mtime and row[2] == size:
                    return row[0]  # a concurrent ingest beat us to it
                conn.execute(
                    "DELETE FROM events WHERE run_id = ?", (row[0],)
                )
                conn.execute(
                    "DELETE FROM runs WHERE run_id = ?", (row[0],)
                )
            cursor = conn.execute(
                "INSERT INTO runs (source, kind, mtime, size, events,"
                " label, git_sha, dirty, config_hash, provenance) "
                "VALUES (?, 'trace', ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(path), mtime, size, len(events),
                    label, git_sha, dirty, config_hash, prov_json,
                ),
            )
            run_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO events "
                "(run_id, seq, kind, episode, loop, step, tick, t, name,"
                " worker, payload) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        run_id,
                        seq,
                        str(event.get("event", "")),
                        None
                        if event.get("episode") is None
                        else str(event["episode"]),
                        event.get("loop"),
                        event.get("step"),
                        event.get("tick"),
                        event.get("t"),
                        None
                        if event.get("name") is None
                        else str(event["name"]),
                        worker_hint
                        if event.get("worker") is None
                        else int(event["worker"]),
                        json.dumps(event, separators=(",", ":")),
                    )
                    for seq, event in enumerate(events)
                ),
            )
            return run_id

        run_id = self._write(txn)
        return RunInfo(
            run_id, str(path), "trace", len(events), mtime, size,
            label, git_sha, dirty, config_hash,
        )

    def ingest_snapshot(
        self, path: str | Path, name: str | None = None
    ) -> RunInfo:
        """Load a metrics / bench JSON document under ``name`` (filename)."""
        path = Path(path).resolve()
        mtime, size = self._stat(path)
        name = name or path.name
        payload = path.read_text(encoding="utf-8")
        json.loads(payload)  # refuse to store non-JSON

        def txn(conn: sqlite3.Connection) -> int:
            # Same under-the-lock re-check as ingest_trace: concurrent
            # ingests of one snapshot must not leave duplicate run rows.
            row = conn.execute(
                "SELECT run_id FROM runs WHERE source = ?", (str(path),)
            ).fetchone()
            if row is not None:
                conn.execute(
                    "DELETE FROM runs WHERE run_id = ?", (row[0],)
                )
            cursor = conn.execute(
                "INSERT INTO runs (source, kind, mtime, size, events) "
                "VALUES (?, 'snapshot', ?, ?, 0)",
                (str(path), mtime, size),
            )
            conn.execute(
                "INSERT INTO snapshots (name, source, payload) VALUES (?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "source = excluded.source, payload = excluded.payload",
                (name, str(path), payload),
            )
            return cursor.lastrowid

        run_id = self._write(txn)
        return RunInfo(run_id, str(path), "snapshot", 0, mtime, size)

    def ingest_dir(
        self, directory: str | Path, pattern: str = "*.jsonl"
    ) -> dict[str, int]:
        """Ingest a run directory: traces plus the standard snapshots.

        Mirrors what the dashboard reads from a directory — every
        ``*.jsonl`` trace (sorted by name, which includes per-worker
        shard files ``trace.w<k>.jsonl``) and, when present,
        ``EXPERIMENTS_metrics.json`` / ``BENCH_telemetry.json``.
        Each shard ingests as its own run row, so re-ingesting a growing
        sweep only re-reads the shards that actually changed.
        """
        directory = Path(directory).resolve()
        summary = {"traces": 0, "events": 0, "snapshots": 0}
        for trace_path in sorted(directory.glob(pattern)):
            info = self.ingest_trace(trace_path)
            summary["traces"] += 1
            summary["events"] += info.events
        for name in (
            "EXPERIMENTS_metrics.json",
            "BENCH_telemetry.json",
            "PROFILE_report.json",
        ):
            candidate = directory / name
            if candidate.exists():
                self.ingest_snapshot(candidate)
                summary["snapshots"] += 1
        self.set_meta("source_dir", str(directory))
        return summary

    # -- query --------------------------------------------------------------------

    def runs(self) -> list[RunInfo]:
        rows = self._conn.execute(
            f"SELECT {_RUN_COLUMNS} FROM runs ORDER BY run_id"
        ).fetchall()
        return [RunInfo(*row) for row in rows]

    def run_provenance(self, run: int | None = None) -> list[dict]:
        """Provenance rows for ingested trace runs.

        One dict per trace run: ``run_id``, ``source``, ``label``,
        ``git_sha``, ``dirty``, ``config_hash``, ``events`` plus the full
        decoded ``provenance`` payload (None for pre-provenance traces).
        """
        sql = (
            "SELECT run_id, source, label, git_sha, dirty, config_hash,"
            " events, provenance FROM runs WHERE kind = 'trace'"
        )
        params: list = []
        if run is not None:
            sql += " AND run_id = ?"
            params.append(int(run))
        sql += " ORDER BY run_id"
        rows = []
        for row in self._conn.execute(sql, params):
            payload = None
            if row[7]:
                try:
                    payload = json.loads(row[7])
                except ValueError:
                    payload = None
            rows.append(
                {
                    "run_id": row[0],
                    "source": row[1],
                    "label": row[2],
                    "git_sha": row[3],
                    "dirty": row[4],
                    "config_hash": row[5],
                    "events": row[6],
                    "provenance": payload,
                }
            )
        return rows

    def _where(
        self,
        kind: str | None,
        episode: object | None,
        loop: str | None,
        run: int | None,
        name: str | None = None,
        worker: int | None = None,
        label: str | None = None,
        prefix: str = "",
    ) -> tuple[str, list]:
        """Build the filter clause.

        ``label`` selects events whose run row carries that logical run
        label (a subquery, so it works without joining). ``prefix``
        qualifies the event columns (``"e."``) for joined queries where
        ``kind`` / ``run_id`` would otherwise be ambiguous.
        """
        clauses, params = [], []
        if kind is not None:
            clauses.append(f"{prefix}kind = ?")
            params.append(kind)
        if episode is not None:
            clauses.append(f"{prefix}episode = ?")
            params.append(str(episode))
        if loop is not None:
            clauses.append(f"{prefix}loop = ?")
            params.append(loop)
        if run is not None:
            clauses.append(f"{prefix}run_id = ?")
            params.append(int(run))
        if name is not None:
            clauses.append(f"{prefix}name = ?")
            params.append(name)
        if worker is not None:
            clauses.append(f"{prefix}worker = ?")
            params.append(int(worker))
        if label is not None:
            clauses.append(
                f"{prefix}run_id IN (SELECT run_id FROM runs WHERE label = ?)"
            )
            params.append(str(label))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def events(
        self,
        kind: str | None = None,
        episode: object | None = None,
        loop: str | None = None,
        run: int | None = None,
        limit: int | None = None,
        name: str | None = None,
        worker: int | None = None,
        label: str | None = None,
    ) -> list[dict]:
        """Decoded event records in ingestion order."""
        where, params = self._where(
            kind, episode, loop, run, name, worker, label
        )
        sql = f"SELECT payload FROM events{where} ORDER BY run_id, seq"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [
            json.loads(row[0])
            for row in self._conn.execute(sql, params)
        ]

    def episodes(
        self, run: int | None = None, label: str | None = None
    ) -> list[EpisodeTrace]:
        """Episode buckets rebuilt from stored events.

        Events are grouped per source trace file (run) before splitting,
        exactly as the JSONL loader does per file, so episode ids reused
        across files do not merge. ``label`` restricts to the trace files
        of one logical run (e.g. every shard of a sweep).
        """
        where, params = self._where(None, None, None, run, label=label)
        sql = (
            f"SELECT run_id, payload FROM events{where} ORDER BY run_id, seq"
        )
        episodes: list[EpisodeTrace] = []
        current_run: int | None = None
        bucket: list[dict] = []
        for run_id, payload in self._conn.execute(sql, params):
            if run_id != current_run:
                if bucket:
                    episodes.extend(split_episodes(bucket))
                current_run, bucket = run_id, []
            bucket.append(json.loads(payload))
        if bucket:
            episodes.extend(split_episodes(bucket))
        return episodes

    def snapshot(self, name: str) -> dict | None:
        """A stored metrics / bench JSON document by name."""
        row = self._conn.execute(
            "SELECT payload FROM snapshots WHERE name = ?", (name,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def snapshots(self) -> list[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT name FROM snapshots ORDER BY name"
            )
        ]

    @staticmethod
    def _check_field(field: str) -> str:
        if not field.replace("_", "").isalnum():
            raise ValueError(f"bad field name {field!r}")
        return field

    def series(
        self,
        field: str,
        kind: str | None = None,
        episode: object | None = None,
        loop: str | None = None,
        run: int | None = None,
        name: str | None = None,
        worker: int | None = None,
        label: str | None = None,
    ) -> list[float]:
        """One numeric event field over time (events lacking it skipped)."""
        self._check_field(field)
        where, params = self._where(
            kind, episode, loop, run, name, worker, label
        )
        if self._json1:
            sql = (
                f"SELECT json_extract(payload, '$.{field}') "
                f"FROM events{where} ORDER BY run_id, seq"
            )
            try:
                return [
                    float(row[0])
                    for row in self._conn.execute(sql, params)
                    if row[0] is not None
                ]
            except sqlite3.OperationalError:
                pass  # NaN/Infinity payloads are not valid JSON for json1
        return [
            float(event[field])
            for event in self.events(
                kind, episode, loop, run, name=name, worker=worker,
                label=label,
            )
            if field in event and event[field] is not None
        ]

    def aggregate(
        self,
        field: str,
        agg: str = "mean",
        kind: str | None = None,
        episode: object | None = None,
        loop: str | None = None,
        run: int | None = None,
        group_by: str | None = None,
        name: str | None = None,
        worker: int | None = None,
        label: str | None = None,
    ) -> list[tuple]:
        """Aggregate one event field, optionally grouped.

        Returns ``[(value,)]`` ungrouped or ``[(group, value), ...]``
        grouped by one of :data:`GROUP_KEYS`. Grouping by a provenance
        key (:data:`PROVENANCE_KEYS`) joins each event to its run row,
        so one query answers "collision delta per git SHA" across a
        store holding many ingested runs.
        """
        if agg not in AGGREGATES:
            raise ValueError(f"agg must be one of {AGGREGATES}, got {agg!r}")
        if group_by is not None and group_by not in GROUP_KEYS:
            raise ValueError(
                f"group_by must be one of {GROUP_KEYS}, got {group_by!r}"
            )
        joined = group_by in PROVENANCE_KEYS
        group_col = "run_id" if group_by == "run" else group_by
        if joined:
            group_col = f"r.{group_by}"
        if self._json1:
            self._check_field(field)
            prefix = "e." if joined else ""
            expr = f"json_extract({prefix}payload, '$.{field}')"
            sql_agg = {
                "count": f"COUNT({expr})",
                "mean": f"AVG({expr})",
                "min": f"MIN({expr})",
                "max": f"MAX({expr})",
                "sum": f"SUM({expr})",
            }[agg]
            where, params = self._where(
                kind, episode, loop, run, name, worker, label, prefix=prefix
            )
            not_null = f"{expr} IS NOT NULL"
            where = (
                where + f" AND {not_null}" if where else f" WHERE {not_null}"
            )
            table = (
                "events e JOIN runs r ON e.run_id = r.run_id"
                if joined
                else "events"
            )
            if group_col is None:
                sql = f"SELECT {sql_agg} FROM {table}{where}"
            else:
                sql = (
                    f"SELECT {group_col}, {sql_agg} FROM {table}{where} "
                    f"GROUP BY {group_col} ORDER BY {group_col}"
                )
            try:
                return list(self._conn.execute(sql, params))
            except sqlite3.OperationalError:
                pass  # NaN/Infinity payloads are not valid JSON for json1
        return self._aggregate_python(
            field, agg, kind, episode, loop, run, group_by, name, worker,
            label,
        )

    def _aggregate_python(
        self, field, agg, kind, episode, loop, run, group_by, name=None,
        worker=None, label=None,
    ) -> list[tuple]:
        where, params = self._where(
            kind, episode, loop, run, name, worker, label
        )
        sql = f"SELECT run_id, payload FROM events{where} ORDER BY run_id, seq"
        run_keys: dict[int, object] | None = None
        if group_by in PROVENANCE_KEYS:
            # Map each source run row to its provenance key up front (the
            # Python twin of the json1 path's JOIN).
            run_keys = {
                info.run_id: getattr(info, group_by)
                for info in self.runs()
            }
        groups: dict[object, list[float]] = {}
        for run_id, payload in self._conn.execute(sql, params):
            event = json.loads(payload)
            if field not in event or event[field] is None:
                continue
            if group_by is None:
                key = None
            elif group_by == "run":
                key = run_id
            elif run_keys is not None:
                key = run_keys.get(run_id)
            else:
                key = event.get(
                    "event" if group_by == "kind" else group_by
                )
            groups.setdefault(key, []).append(float(event[field]))
        reduced = {
            "count": len,
            "mean": lambda v: sum(v) / len(v),
            "min": min,
            "max": max,
            "sum": sum,
        }[agg]
        if group_by is None:
            values = groups.get(None, [])
            return [(reduced(values) if values else None,)]
        return sorted(
            ((key, reduced(values)) for key, values in groups.items()),
            key=lambda kv: (kv[0] is None, str(kv[0])),
        )


def export_csv(
    header: Iterable[str],
    rows: Iterable[Iterable[object]],
    path: str | Path | None = None,
) -> str:
    """Rows as CSV text, optionally written to ``path``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(header))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
