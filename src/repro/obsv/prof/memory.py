"""Allocation tracking at span boundaries via ``tracemalloc``.

``tracemalloc`` is expensive (every allocation pays for a traceback
capture), so it is strictly opt-in: set ``REPRO_PROF_MEM`` to a
comma-separated list of span names (leaf names like ``agent.e2e.act`` or
full paths like ``episode/world.tick``), or to ``all``/``1`` to track
every span. The probe snapshots traced memory when an opted-in span
enters and exits, reporting per-span **net allocation** (bytes retained
across the span) and **peak** traced memory observed inside it.

Peaks use :func:`tracemalloc.reset_peak` at span entry, so for *nested*
opted-in spans the inner span's reset truncates the outer span's peak
window; net allocation is unaffected. Track one nesting level at a time
when exact peaks matter.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass

from repro.obsv.render import fmt, markdown_table
from repro.telemetry.spans import SpanProbe


def parse_mem_spec(raw: str | None) -> set[str] | None | bool:
    """Parse ``REPRO_PROF_MEM``: falsy -> False, all-ish -> None (track
    everything), else the set of span names/paths to track."""
    if raw is None:
        return False
    raw = raw.strip()
    if raw.lower() in ("", "0", "false", "no", "off"):
        return False
    if raw.lower() in ("1", "true", "yes", "on", "all", "*"):
        return None
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class MemStats:
    """Aggregate allocation behaviour of one span path."""

    count: int = 0
    net_total: int = 0
    net_max: int = 0
    peak_max: int = 0

    def add(self, net: int, peak: int) -> None:
        self.count += 1
        self.net_total += net
        if net > self.net_max:
            self.net_max = net
        if peak > self.peak_max:
            self.peak_max = peak

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "net_total_kb": round(self.net_total / 1024.0, 3),
            "net_mean_kb": round(
                self.net_total / 1024.0 / max(self.count, 1), 3
            ),
            "net_max_kb": round(self.net_max / 1024.0, 3),
            "peak_max_kb": round(self.peak_max / 1024.0, 3),
        }


class MemoryProbe(SpanProbe):
    """Span probe aggregating tracemalloc readings for opted-in spans.

    ``spans=None`` tracks every span; otherwise a span is tracked when
    its full path or its leaf name is in the set. The probe assumes
    ``tracemalloc`` is already tracing (the profile session starts it).
    """

    def __init__(self, spans: set[str] | None = None) -> None:
        self.filter = spans
        self.stats: dict[str, MemStats] = {}

    def _tracked(self, path: str) -> bool:
        if self.filter is None:
            return True
        return path in self.filter or path.rsplit("/", 1)[-1] in self.filter

    def on_enter(self, path: str):
        if not self._tracked(path) or not tracemalloc.is_tracing():
            return None
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        return current

    def on_exit(self, path: str, token, duration: float) -> None:
        if token is None or not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        stats = self.stats.get(path)
        if stats is None:
            stats = self.stats[path] = MemStats()
        stats.add(current - token, peak)

    # -- output -----------------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        ordered = sorted(
            self.stats.items(), key=lambda item: -item[1].peak_max
        )
        return {path: stats.summary() for path, stats in ordered}

    def to_markdown(self, top: int = 10) -> str:
        if not self.stats:
            return ""
        lines = ["## Allocations (tracemalloc, opted-in spans)", ""]
        rows = [
            [
                f"`{path}`",
                stats["count"],
                fmt(stats["net_mean_kb"], 1),
                fmt(stats["net_total_kb"], 1),
                fmt(stats["peak_max_kb"], 1),
            ]
            for path, stats in list(self.summary().items())[:top]
        ]
        lines.extend(
            markdown_table(
                ["span", "calls", "net KB/call", "net total KB",
                 "peak KB"],
                rows,
            )
        )
        return "\n".join(lines) + "\n"
