"""Self-time attribution over the span call-tree.

The span tracer reports *inclusive* wall-clock per path — ``episode``
contains everything, so it always tops the table and says nothing about
where the time actually goes. Self time is inclusive minus the time
spent in direct children: the microseconds a span burned in its own
frame. Summed over every path it reconstructs the root spans' inclusive
total exactly, which is what lets a profile claim "these rows account
for the session".

Two sources feed this module:

* schema-2 snapshots (``BENCH_telemetry.json`` written by the bench
  conftest, or any :meth:`Tracer.snapshot`) carry exact
  ``self_total_s`` per span from the tracer's child bookkeeping;
* schema-1 snapshots (older baselines) lack it, so self time is derived
  from the path tree (``a/b`` is a direct child of ``a``) — exact unless
  a span *name* itself contains ``/``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obsv.render import fmt, markdown_table


@dataclass(frozen=True)
class SelfTimeRow:
    """Self-time attribution of one span path."""

    path: str
    calls: int
    #: Inclusive wall-clock (the tracer's ``total_s``).
    total_s: float
    #: Inclusive minus direct children: time in the span's own frame.
    self_s: float
    #: ``self_s`` per call, microseconds.
    self_mean_us: float
    #: Share of the session's summed self time, 0..1.
    self_frac: float


def _derived_self(spans: dict[str, dict]) -> dict[str, float]:
    """Self time per path from the path tree (schema-1 fallback)."""
    child_sum: dict[str, float] = {path: 0.0 for path in spans}
    for path, stats in spans.items():
        if "/" not in path:
            continue
        parent = path.rsplit("/", 1)[0]
        if parent in child_sum:
            child_sum[parent] += float(stats.get("total_s", 0.0))
    return {
        path: max(float(stats.get("total_s", 0.0)) - child_sum[path], 0.0)
        for path, stats in spans.items()
    }


def attribute(spans: dict[str, dict]) -> list[SelfTimeRow]:
    """Self-time rows for a span snapshot, largest self time first."""
    if not spans:
        return []
    fallback = None
    self_times: dict[str, float] = {}
    for path, stats in spans.items():
        if "self_total_s" in stats:
            self_times[path] = float(stats["self_total_s"])
        else:
            if fallback is None:
                fallback = _derived_self(spans)
            self_times[path] = fallback[path]
    grand_total = sum(self_times.values())
    rows = []
    for path, stats in spans.items():
        calls = int(stats.get("count", 0))
        self_s = self_times[path]
        rows.append(
            SelfTimeRow(
                path=path,
                calls=calls,
                total_s=float(stats.get("total_s", 0.0)),
                self_s=self_s,
                self_mean_us=1e6 * self_s / max(calls, 1),
                self_frac=self_s / grand_total if grand_total else 0.0,
            )
        )
    rows.sort(key=lambda row: -row.self_s)
    return rows


def total_self_s(rows: list[SelfTimeRow]) -> float:
    """Summed self time — equals the root spans' inclusive total."""
    return sum(row.self_s for row in rows)


def root_total_s(spans: dict[str, dict]) -> float:
    """Summed inclusive time of root paths (the tree's wall-clock)."""
    return sum(
        float(stats.get("total_s", 0.0))
        for path, stats in spans.items()
        if "/" not in path
    )


def to_markdown(
    rows: list[SelfTimeRow], top: int = 15, heading: bool = True
) -> str:
    """The "where the time actually goes" table, top-N rows by self time."""
    lines: list[str] = []
    if heading:
        lines += ["## Self time (where the time actually goes)", ""]
    shown = rows[:top]
    table_rows = [
        [
            f"`{row.path}`",
            row.calls,
            fmt(row.self_s, 2),
            fmt(row.self_mean_us, 1),
            fmt(100.0 * row.self_frac, 1),
            fmt(row.total_s, 2),
        ]
        for row in shown
    ]
    lines.extend(
        markdown_table(
            ["span", "calls", "self s", "self us/call", "self %", "incl s"],
            table_rows,
        )
    )
    hidden = len(rows) - len(shown)
    if hidden > 0:
        remainder = sum(row.self_s for row in rows[top:])
        lines.append("")
        lines.append(
            f"... {hidden} more span(s) accounting for"
            f" {fmt(remainder, 2)} s of self time."
        )
    return "\n".join(lines) + "\n"


def to_json(rows: list[SelfTimeRow]) -> list[dict]:
    return [
        {
            "path": row.path,
            "calls": row.calls,
            "total_s": round(row.total_s, 6),
            "self_s": round(row.self_s, 6),
            "self_mean_us": round(row.self_mean_us, 3),
            "self_frac": round(row.self_frac, 6),
        }
        for row in rows
    ]
