"""Profile sessions: wire the tracer, sampler, counters, and probes.

A :class:`ProfileSession` turns on every profiling layer the
configuration asks for — span timing with self-time bookkeeping, the
sampling profiler, tracemalloc allocation probes, FLOP accounting — runs
for the lifetime of the workload, and collapses everything into one
:class:`ProfileReport` on ``stop()``. The report renders as markdown
(``obsv profile``), JSON (``PROFILE_report.json``, ingested by the
telemetry store and gated by ``obsv regress``), schema-checked
``profile`` trace events, and a self-contained HTML flamegraph.

Environment activation: set ``REPRO_PROF`` to a truthy value (or an
output directory path) and :func:`install_from_env` — called from
``repro/__init__`` at import — starts a session and registers an
``atexit`` hook that writes the report. Everything is off, and provably
zero-overhead, when ``REPRO_PROF`` is unset.
"""

from __future__ import annotations

import atexit
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

from repro.obsv.prof import flamegraph, sampler as sampler_mod, selftime
from repro.obsv.prof.memory import MemoryProbe, parse_mem_spec
from repro.obsv.render import fmt, markdown_table
from repro.telemetry.spans import SpanProbe, Tracer, get_tracer

#: Bumped when the PROFILE_report.json layout changes incompatibly.
REPORT_SCHEMA = 1

_FALSY = ("", "0", "false", "no", "off")


def _truthy(raw: str | None) -> bool:
    return raw is not None and raw.strip().lower() not in _FALSY


@dataclass
class ProfileConfig:
    """What a profile session measures.

    ``hz=0`` disables the sampling profiler (span self-time and FLOP
    accounting still run); ``mem=False`` disables allocation tracking,
    ``mem=None`` tracks every span, a set tracks only those names/paths.
    """

    hz: float = 0.0
    mem: set[str] | None | bool = False
    flops: bool = True
    all_threads: bool = False

    @classmethod
    def from_env(cls, env=None) -> "ProfileConfig":
        env = os.environ if env is None else env
        raw_hz = env.get("REPRO_PROF_HZ", "").strip()
        try:
            hz = float(raw_hz) if raw_hz else 0.0
        except ValueError:
            hz = 0.0
        return cls(
            hz=max(hz, 0.0),
            mem=parse_mem_spec(env.get("REPRO_PROF_MEM")),
        )


class FlopSpanProbe(SpanProbe):
    """Attribute FLOP-counter work to span paths (inclusive).

    ``on_enter`` snapshots the counter's running totals; ``on_exit``
    credits the delta to the span's path. Attribution is *inclusive* —
    work done inside ``episode/agent.e2e.act`` is also credited to
    ``episode`` — matching the tracer's inclusive ``total_s``, so
    per-span MFLOP/s divides like with like.
    """

    def __init__(self, counter) -> None:
        self.counter = counter
        #: path -> [calls, flops, bytes, inclusive seconds]
        self.stats: dict[str, list[float]] = {}

    def on_enter(self, path: str):
        counter = self.counter
        return (counter.grand_flops, counter.grand_bytes)

    def on_exit(self, path: str, token, duration: float) -> None:
        flops = self.counter.grand_flops - token[0]
        if flops <= 0.0:
            return
        nbytes = self.counter.grand_bytes - token[1]
        stats = self.stats.get(path)
        if stats is None:
            stats = self.stats[path] = [0, 0.0, 0.0, 0.0]
        stats[0] += 1
        stats[1] += flops
        stats[2] += nbytes
        stats[3] += duration

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-span FLOP figures, largest FLOP totals first."""
        out = {}
        for path, (calls, flops, nbytes, seconds) in sorted(
            self.stats.items(), key=lambda item: -item[1][1]
        ):
            out[path] = {
                "calls": int(calls),
                "flops": flops,
                "bytes": nbytes,
                "mflops_per_s": round(
                    flops / 1e6 / seconds if seconds else 0.0, 3
                ),
                "intensity": round(flops / nbytes if nbytes else 0.0, 4),
            }
        return out


@dataclass
class ProfileReport:
    """Everything one profile session measured, in renderable form."""

    wall_clock_s: float
    spans: dict[str, dict] = field(default_factory=dict)
    flops: dict = field(default_factory=dict)
    span_flops: dict[str, dict] = field(default_factory=dict)
    memory: dict[str, dict] = field(default_factory=dict)
    sampler: dict = field(default_factory=dict)
    folded: dict[str, int] = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    # -- derived ----------------------------------------------------------------

    def self_time_rows(self) -> list[selftime.SelfTimeRow]:
        return selftime.attribute(self.spans)

    def coverage(self) -> dict[str, float]:
        """How much of the wall clock the span tree accounts for.

        ``self_total_s`` (summed self time) equals ``root_total_s``
        (summed root-span inclusive time) by construction; ``ratio`` is
        that against the session wall clock — the acceptance check that
        attribution sums to what actually elapsed.
        """
        rows = self.self_time_rows()
        self_total = selftime.total_self_s(rows)
        return {
            "self_total_s": round(self_total, 6),
            "root_total_s": round(selftime.root_total_s(self.spans), 6),
            "ratio": round(
                self_total / self.wall_clock_s if self.wall_clock_s else 0.0,
                4,
            ),
        }

    # -- output -----------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "kind": "profile",
            "wall_clock_s": round(self.wall_clock_s, 6),
            "coverage": self.coverage(),
            "config": self.config,
            "self_time": selftime.to_json(self.self_time_rows()),
            "spans": self.spans,
            "flops": self.flops,
            "span_flops": self.span_flops,
            "memory": self.memory,
            "sampler": self.sampler,
        }

    def trace_events(self) -> list[dict]:
        """Schema-checked ``profile`` events, one per span path.

        Feed these to a :class:`~repro.telemetry.trace.TraceWriter` (or
        the store's ingest) so ``obsv query`` can chart self-time series
        across sessions.
        """
        events = []
        for row in self.self_time_rows():
            event = {
                "event": "profile",
                "name": row.path,
                "calls": row.calls,
                "total_s": round(row.total_s, 6),
                "self_s": round(row.self_s, 6),
                "self_mean_us": round(row.self_mean_us, 3),
                "self_frac": round(row.self_frac, 6),
            }
            stats = self.spans.get(row.path, {})
            if "mean_us" in stats:
                event["mean_us"] = stats["mean_us"]
            mem = self.memory.get(row.path)
            if mem:
                event["net_alloc_kb"] = mem["net_total_kb"]
                event["peak_alloc_kb"] = mem["peak_max_kb"]
            flop = self.span_flops.get(row.path)
            if flop:
                event["flops"] = flop["flops"]
                event["mflops_per_s"] = flop["mflops_per_s"]
                event["intensity"] = flop["intensity"]
            events.append(event)
        return events

    def flamegraph_html(self, path: str | Path | None = None) -> str:
        """Render the flamegraph: sampled stacks if any, else span tree."""
        if self.folded:
            meta = (
                f"{self.sampler.get('samples', 0)} samples at "
                f"{self.sampler.get('hz', 0)} Hz over "
                f"{fmt(self.sampler.get('duration_s', 0.0), 1)} s"
            )
            return flamegraph.render_html(
                self.folded, title="repro profile (sampled stacks)",
                unit="samples", meta=meta, path=path,
            )
        meta = (
            f"span self time over {fmt(self.wall_clock_s, 1)} s wall clock"
        )
        return flamegraph.render_html(
            flamegraph.spans_to_folded(self.spans),
            title="repro profile (span self time)",
            unit="seconds", meta=meta, path=path,
        )

    def to_markdown(self, top: int = 15) -> str:
        lines = ["# Profile report", ""]
        coverage = self.coverage()
        lines.append(
            f"Wall clock {fmt(self.wall_clock_s, 2)} s; span tree accounts"
            f" for {fmt(coverage['self_total_s'], 2)} s"
            f" ({fmt(100.0 * coverage['ratio'], 1)}% of wall clock)."
        )
        lines.append("")
        rows = self.self_time_rows()
        if rows:
            lines.append(selftime.to_markdown(rows, top=top))
        if self.span_flops:
            lines += ["## Floating-point work (inclusive per span)", ""]
            table = [
                [
                    f"`{path}`",
                    stats["calls"],
                    fmt(stats["flops"] / 1e9, 3),
                    fmt(stats["mflops_per_s"], 1),
                    fmt(stats["intensity"], 3),
                ]
                for path, stats in list(self.span_flops.items())[:top]
            ]
            lines.extend(
                markdown_table(
                    ["span", "calls", "GFLOP", "MFLOP/s", "FLOP/byte"],
                    table,
                )
            )
            total = self.flops.get("total_flops", 0.0)
            lines.append("")
            lines.append(
                f"Total {fmt(total / 1e9, 3)} GFLOP at overall intensity"
                f" {fmt(self.flops.get('intensity', 0.0), 3)} FLOP/byte."
            )
            lines.append("")
        if self.memory:
            lines += ["## Allocations (tracemalloc, opted-in spans)", ""]
            table = [
                [
                    f"`{path}`",
                    stats["count"],
                    fmt(stats["net_mean_kb"], 1),
                    fmt(stats["net_total_kb"], 1),
                    fmt(stats["peak_max_kb"], 1),
                ]
                for path, stats in list(self.memory.items())[:top]
            ]
            lines.extend(
                markdown_table(
                    ["span", "calls", "net KB/call", "net total KB",
                     "peak KB"],
                    table,
                )
            )
            lines.append("")
        if self.sampler.get("samples"):
            lines.append(
                f"Sampler: {self.sampler['samples']} samples"
                f" ({self.sampler['unique_stacks']} unique stacks) at"
                f" {fmt(self.sampler.get('effective_hz', 0.0), 1)} Hz"
                f" effective (target {fmt(self.sampler.get('hz', 0.0), 1)})."
            )
            lines.append("")
        return "\n".join(lines)

    def write(self, out_dir: str | Path) -> dict[str, Path]:
        """Write the report bundle; returns ``{artifact: path}``.

        * ``PROFILE_report.json`` — full machine-readable report;
        * ``PROFILE_report.md`` — the human summary;
        * ``PROFILE_flamegraph.html`` — self-contained flamegraph;
        * ``PROFILE_events.jsonl`` — schema-checked ``profile`` events
          for store ingestion;
        * ``PROFILE_stacks.folded`` — raw folded stacks (sampler only).
        """
        import json

        from repro.telemetry.trace import TraceWriter

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "report": out / "PROFILE_report.json",
            "markdown": out / "PROFILE_report.md",
            "flamegraph": out / "PROFILE_flamegraph.html",
            "events": out / "PROFILE_events.jsonl",
        }
        paths["report"].write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        paths["markdown"].write_text(self.to_markdown(), encoding="utf-8")
        self.flamegraph_html(path=paths["flamegraph"])
        paths["events"].unlink(missing_ok=True)
        with TraceWriter(paths["events"], validate=True) as writer:
            for event in self.trace_events():
                writer.emit(**event)
        if self.folded:
            paths["stacks"] = out / "PROFILE_stacks.folded"
            paths["stacks"].write_text(
                "".join(
                    f"{stack} {count}\n"
                    for stack, count in sorted(
                        self.folded.items(),
                        key=lambda item: (-item[1], item[0]),
                    )
                ),
                encoding="utf-8",
            )
        return paths


class ProfileSession:
    """Start/stop wrapper around every configured profiling layer.

    ``reset=True`` clears the tracer's aggregates and the FLOP counter
    on start, so the report covers exactly this session (the in-process
    ``obsv profile --demo`` path); ``reset=False`` (default) folds into
    whatever is already being measured.
    """

    def __init__(
        self, config: ProfileConfig | None = None, *,
        tracer: Tracer | None = None, reset: bool = False,
    ) -> None:
        self.config = config or ProfileConfig()
        self.tracer = tracer or get_tracer()
        self.reset = reset
        self.running = False
        self._tracer_was_enabled = False
        self._counter_was_enabled = False
        self._started_tracemalloc = False
        self._t0 = 0.0
        self._sampler: sampler_mod.SamplingProfiler | None = None
        self._mem_probe: MemoryProbe | None = None
        self._flop_probe: FlopSpanProbe | None = None
        self._counter = None

    def start(self) -> "ProfileSession":
        if self.running:
            return self
        self.running = True
        tracer = self.tracer
        self._tracer_was_enabled = tracer.enabled
        if self.reset:
            tracer.reset()
        tracer.enable()
        if self.config.flops:
            from repro.rl.nn.flops import get_flop_counter

            self._counter = get_flop_counter()
            self._counter_was_enabled = self._counter.enabled
            if self.reset:
                self._counter.reset()
            self._counter.enable()
            self._flop_probe = FlopSpanProbe(self._counter)
            tracer.add_probe(self._flop_probe)
        if self.config.mem is not False:
            self._started_tracemalloc = not tracemalloc.is_tracing()
            if self._started_tracemalloc:
                tracemalloc.start()
            mem_filter = (
                self.config.mem if isinstance(self.config.mem, set) else None
            )
            self._mem_probe = MemoryProbe(mem_filter)
            tracer.add_probe(self._mem_probe)
        if self.config.hz > 0:
            self._sampler = sampler_mod.SamplingProfiler(
                hz=self.config.hz, all_threads=self.config.all_threads
            ).start()
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> ProfileReport:
        """Tear everything down and assemble the report."""
        wall = time.perf_counter() - self._t0 if self.running else 0.0
        tracer = self.tracer
        if self._sampler is not None:
            self._sampler.stop()
        if self._flop_probe is not None:
            tracer.remove_probe(self._flop_probe)
        if self._mem_probe is not None:
            tracer.remove_probe(self._mem_probe)
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        if self._counter is not None and not self._counter_was_enabled:
            self._counter.disable()
        if not self._tracer_was_enabled:
            tracer.disable()
        self.running = False
        report = ProfileReport(
            wall_clock_s=wall,
            spans=tracer.snapshot(),
            flops=self._counter.snapshot() if self._counter else {},
            span_flops=(
                self._flop_probe.summary() if self._flop_probe else {}
            ),
            memory=self._mem_probe.summary() if self._mem_probe else {},
            sampler=self._sampler.summary() if self._sampler else {},
            folded=self._sampler.folded() if self._sampler else {},
            config={
                "hz": self.config.hz,
                "mem": (
                    sorted(self.config.mem)
                    if isinstance(self.config.mem, set)
                    else ("all" if self.config.mem is None else "off")
                ),
                "flops": self.config.flops,
            },
        )
        return report

    def peek(self) -> dict:
        """The live ``profile`` section without stopping the session.

        Used by the bench conftest to embed FLOP / allocation figures in
        ``BENCH_telemetry.json`` while the env-installed session keeps
        running to write its own bundle at exit.
        """
        out: dict = {}
        if self._counter is not None:
            out["flops"] = self._counter.snapshot()
        if self._flop_probe is not None:
            out["span_flops"] = self._flop_probe.summary()
        if self._mem_probe is not None:
            out["memory"] = self._mem_probe.summary()
        if self._sampler is not None:
            out["sampler"] = self._sampler.summary()
        return out

    def __enter__(self) -> "ProfileSession":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


_ENV_SESSION: ProfileSession | None = None


def install_from_env(env=None) -> ProfileSession | None:
    """Start a process-wide session when ``REPRO_PROF`` is set.

    ``REPRO_PROF=1`` (or any truthy value) writes the report bundle to
    ``./profile`` at interpreter exit; a path-like value (contains a
    separator or names a directory) is used as the output directory.
    Returns the running session, or None when profiling is off. Called
    once from ``repro/__init__`` — a second call is a no-op.
    """
    global _ENV_SESSION
    env = os.environ if env is None else env
    raw = env.get("REPRO_PROF", "").strip()
    if not _truthy(raw):
        return None
    if _ENV_SESSION is not None:
        return _ENV_SESSION
    out_dir = (
        Path(raw)
        if raw.lower() not in ("1", "true", "yes", "on")
        else Path("profile")
    )
    session = ProfileSession(ProfileConfig.from_env(env))
    session.start()
    _ENV_SESSION = session

    def _finalize() -> None:
        global _ENV_SESSION
        if _ENV_SESSION is None or not _ENV_SESSION.running:
            return
        report = _ENV_SESSION.stop()
        _ENV_SESSION = None
        try:
            report.write(out_dir)
        except OSError:  # pragma: no cover - best-effort at exit
            pass

    atexit.register(_finalize)
    return session


def env_session() -> ProfileSession | None:
    """The session started by :func:`install_from_env`, if any."""
    return _ENV_SESSION
