"""Stdlib sampling profiler: folded stacks from ``sys._current_frames()``.

The span tracer answers "how long does ``agent.e2e.act`` take"; it cannot
answer "which lines *inside* it" without adding spans everywhere. A
sampling profiler can: a background thread wakes at ``hz`` and records
the interpreter's current Python stack, so hot frames (autograd tape
construction, BEV rasterization inner loops) surface statistically with
no per-call instrumentation and no external dependencies.

Samples are aggregated as *folded stacks* — ``frame;frame;frame`` from
root to leaf mapped to a sample count, the flamegraph interchange format
— and rendered by :mod:`repro.obsv.prof.flamegraph`.

The sampler only ever *reads* interpreter state (frames, code objects):
it cannot perturb simulation results or RNG streams, which the
determinism suite proves by replaying episodes recorded while sampling.
The observer cost is the GIL time the sample thread steals; at the
default 97 Hz that is well under 1% and it is exactly zero when the
sampler is off (no thread exists).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path

#: Default sampling rate when profiling is enabled without an explicit
#: ``REPRO_PROF_HZ``. Prime, so it cannot phase-lock with millisecond-
#: aligned periodic work and systematically miss (or always hit) it.
DEFAULT_HZ = 97.0

#: Frames deeper than this are folded into a ``...`` leaf.
MAX_DEPTH = 96


def frame_label(filename: str, funcname: str) -> str:
    """``repro.sim.world:tick``-style label for one stack frame."""
    parts = Path(filename).parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        module = ".".join(parts[index:]).removesuffix(".py")
    else:
        module = Path(filename).stem
    return f"{module}:{funcname}"


class SamplingProfiler:
    """Background-thread stack sampler producing folded stacks.

    Args:
        hz: target samples per second (> 0).
        all_threads: sample every interpreter thread (prefixed with the
            thread name) instead of only the main thread.
    """

    def __init__(self, hz: float = DEFAULT_HZ, all_threads: bool = False):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.all_threads = all_threads
        self.samples: Counter[str] = Counter()
        self.sample_count = 0
        self.duration_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # -- lifecycle --------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self.duration_s += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- sampling ---------------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        main_id = threading.main_thread().ident
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                if not self.all_threads and thread_id != main_id:
                    continue
                folded = self._fold(frame)
                if not folded:
                    continue
                if self.all_threads and thread_id != main_id:
                    folded = f"thread-{thread_id};{folded}"
                self.samples[folded] += 1
                self.sample_count += 1

    @staticmethod
    def _fold(frame) -> str:
        stack: list[str] = []
        depth = 0
        while frame is not None:
            if depth >= MAX_DEPTH:
                stack.append("...")
                break
            code = frame.f_code
            stack.append(frame_label(code.co_filename, code.co_name))
            frame = frame.f_back
            depth += 1
        stack.reverse()
        return ";".join(stack)

    # -- output -----------------------------------------------------------------

    def folded(self) -> dict[str, int]:
        """Folded stacks -> sample counts (flamegraph input)."""
        return dict(self.samples)

    def folded_text(self) -> str:
        """The classic ``stack count`` text format (one line per stack)."""
        return "".join(
            f"{stack} {count}\n"
            for stack, count in sorted(
                self.samples.items(), key=lambda item: (-item[1], item[0])
            )
        )

    def summary(self) -> dict:
        effective = (
            self.sample_count / self.duration_s if self.duration_s else 0.0
        )
        return {
            "hz": self.hz,
            "effective_hz": round(effective, 1),
            "samples": self.sample_count,
            "duration_s": round(self.duration_s, 3),
            "unique_stacks": len(self.samples),
        }
