"""Self-contained HTML flamegraph renderer (no external dependencies).

Input is the folded-stack mapping produced by
:class:`~repro.obsv.prof.sampler.SamplingProfiler` (``"a;b;c" -> count``)
or, via :func:`spans_to_folded`, the span tracer's call-tree with
self-time values. The output is one HTML file in the same dependency-free
idiom as the obsv dashboard: inline CSS, a JSON payload, and a small
renderer script — open it in any browser, click a frame to zoom, hover
for exact values.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path


def build_tree(folded: dict[str, float], sep: str = ";") -> dict:
    """Merge folded stacks into a ``{name, value, children}`` tree.

    Every stack's value is credited to each frame on its path, so a
    node's ``value`` is inclusive; the root aggregates everything.
    """
    root: dict = {"name": "all", "value": 0.0, "children": {}}
    for stack, value in folded.items():
        value = float(value)
        if value <= 0.0 or not stack:
            continue
        root["value"] += value
        node = root
        for part in stack.split(sep):
            child = node["children"].get(part)
            if child is None:
                child = node["children"][part] = {
                    "name": part,
                    "value": 0.0,
                    "children": {},
                }
            child["value"] += value
            node = child
    return _finalize(root)


def _finalize(node: dict) -> dict:
    children = sorted(
        (_finalize(child) for child in node["children"].values()),
        key=lambda child: -child["value"],
    )
    out = {"name": node["name"], "value": round(node["value"], 6)}
    if children:
        out["children"] = children
    return out


def spans_to_folded(spans: dict[str, dict]) -> dict[str, float]:
    """Span snapshot -> folded stacks weighted by *self* time.

    Each span path becomes one stack (``/`` -> ``;``) whose value is the
    span's self time, so the flamegraph's inclusive widths reproduce the
    tracer's inclusive totals without double counting.
    """
    from repro.obsv.prof import selftime

    return {
        row.path.replace("/", ";"): row.self_s
        for row in selftime.attribute(spans)
        if row.self_s > 0.0
    }


_TEMPLATE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 1.5rem auto; max-width: 76rem; padding: 0 1rem;
       color: #1a1a2e; background: #fafaf7; }}
h1 {{ font-weight: 600; font-size: 1.2rem; }}
#meta {{ color: #555; font-size: 0.8rem; margin-bottom: 0.8rem; }}
#graph {{ position: relative; width: 100%; }}
.frame {{ position: absolute; box-sizing: border-box; height: 17px;
         border: 1px solid #fafaf7; border-radius: 2px; overflow: hidden;
         font-size: 11px; line-height: 15px; padding: 0 3px;
         white-space: nowrap; cursor: pointer; }}
.frame:hover {{ border-color: #1a1a2e; }}
#status {{ margin-top: 0.6rem; font-size: 0.8rem; min-height: 1.2em;
          color: #333; }}
#reset {{ font-size: 0.8rem; margin-bottom: 0.6rem; display: inline-block;
         cursor: pointer; color: #3b4a8f; text-decoration: underline; }}
</style></head><body>
<h1>{title}</h1>
<div id="meta">{meta}</div>
<span id="reset">reset zoom</span>
<div id="graph"></div>
<div id="status"></div>
<script id="data" type="application/json">{payload}</script>
<script>
var DATA = JSON.parse(document.getElementById("data").textContent);
var UNIT = DATA.unit, ROOT = DATA.tree, FOCUS = ROOT;
var graph = document.getElementById("graph");
var statusEl = document.getElementById("status");

function color(name) {{
  var hash = 0;
  for (var i = 0; i < name.length; i++)
    hash = (hash * 31 + name.charCodeAt(i)) >>> 0;
  var hue = 18 + (hash % 42);            /* warm flame band */
  var sat = 62 + (hash >> 8) % 28;
  var lum = 58 + (hash >> 16) % 14;
  return "hsl(" + hue + "," + sat + "%," + lum + "%)";
}}

function fmtValue(v) {{
  if (UNIT === "samples") return v + " samples";
  if (v >= 1) return v.toFixed(3) + " s";
  if (v >= 1e-3) return (v * 1e3).toFixed(3) + " ms";
  return (v * 1e6).toFixed(1) + " us";
}}

function depthOf(node) {{
  var d = 1, kids = node.children || [];
  for (var i = 0; i < kids.length; i++)
    d = Math.max(d, 1 + depthOf(kids[i]));
  return d;
}}

function render() {{
  graph.innerHTML = "";
  graph.style.height = (depthOf(FOCUS) * 17 + 2) + "px";
  place(FOCUS, 0, 1, 0);
}}

function place(node, x, width, depth) {{
  var el = document.createElement("div");
  el.className = "frame";
  el.style.left = (100 * x) + "%";
  el.style.width = (100 * width) + "%";
  el.style.top = (depth * 17) + "px";
  el.style.background = color(node.name);
  var pct = (100 * node.value / ROOT.value).toFixed(2);
  el.textContent = node.name;
  el.title = node.name + " — " + fmtValue(node.value) + " (" + pct + "%)";
  el.onclick = function (ev) {{
    ev.stopPropagation();
    FOCUS = node; render();
    statusEl.textContent = el.title;
  }};
  graph.appendChild(el);
  var kids = node.children || [];
  var childX = x;
  for (var i = 0; i < kids.length; i++) {{
    var w = width * kids[i].value / node.value;
    place(kids[i], childX, w, depth + 1);
    childX += w;
  }}
}}

document.getElementById("reset").onclick = function () {{
  FOCUS = ROOT; render(); statusEl.textContent = "";
}};
render();
</script>
</body></html>
"""


def render_html(
    folded: dict[str, float],
    title: str = "repro flamegraph",
    unit: str = "seconds",
    meta: str = "",
    path: str | Path | None = None,
) -> str:
    """Render folded stacks as a self-contained HTML flamegraph.

    ``unit`` is ``"samples"`` for sampler output or ``"seconds"`` for
    span self-time input; it only affects hover formatting.
    """
    tree = build_tree(folded)
    payload = json.dumps({"tree": tree, "unit": unit},
                         separators=(",", ":"))
    text = _TEMPLATE.format(
        title=_html.escape(title),
        meta=_html.escape(meta),
        payload=payload.replace("</", "<\\/"),
    )
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
