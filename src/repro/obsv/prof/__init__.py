"""repro.obsv.prof — the profiling layer.

Answers the questions the span tracer alone cannot:

* **Self time** (:mod:`.selftime`) — inclusive minus direct-children
  time per span path, so ``episode`` stops hiding where the session
  actually went;
* **Sampled stacks** (:mod:`.sampler`) — a stdlib background-thread
  sampler producing folded stacks for line-level hot spots;
* **Flamegraphs** (:mod:`.flamegraph`) — dependency-free single-file
  HTML rendering of either source;
* **Allocations** (:mod:`.memory`) — tracemalloc net/peak per opted-in
  span;
* **FLOP accounting** (with :mod:`repro.rl.nn.flops`) — achieved
  MFLOP/s and arithmetic intensity per span;
* **Sessions** (:mod:`.session`) — one switch that runs all of the
  above and writes the ``PROFILE_*`` report bundle.

Activation: ``REPRO_PROF=<dir|1>`` env (report written at exit),
``repro.obsv profile`` CLI, or :class:`ProfileSession` in code. All off
by default; the disabled cost is zero (no thread, no probes, a pointer
check per NN op) — proven bit-identical by the determinism suite.
"""

from repro.obsv.prof.flamegraph import build_tree, render_html, spans_to_folded
from repro.obsv.prof.memory import MemoryProbe, parse_mem_spec
from repro.obsv.prof.sampler import DEFAULT_HZ, SamplingProfiler
from repro.obsv.prof.selftime import SelfTimeRow, attribute
from repro.obsv.prof.session import (
    FlopSpanProbe,
    ProfileConfig,
    ProfileReport,
    ProfileSession,
    env_session,
    install_from_env,
)

__all__ = [
    "DEFAULT_HZ",
    "FlopSpanProbe",
    "MemoryProbe",
    "ProfileConfig",
    "ProfileReport",
    "ProfileSession",
    "SamplingProfiler",
    "SelfTimeRow",
    "attribute",
    "build_tree",
    "env_session",
    "install_from_env",
    "parse_mem_spec",
    "render_html",
    "spans_to_folded",
]
