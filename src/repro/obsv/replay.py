"""Replay verification: re-simulate a recorded episode and diff the traces.

Every ``episode_start`` event carries the seed, victim/attacker names and
attack budget; the simulator is deterministic given those (asserted by
``tests/telemetry/test_determinism.py``). Re-running the episode and
comparing the regenerated tick stream field-by-field therefore proves two
things at once: the trace faithfully records what the simulator did, and
the simulator has not silently become nondeterministic (RNG leaks, state
carried across episodes, dict-ordering effects).

Only episodes recorded under the default scenario are replayable — the
trace does not serialize custom :class:`~repro.sim.config.ScenarioConfig`
instances — and victims/attackers are resolved by their recorded names
through :mod:`repro.experiments.registry` (learned ones need artifacts).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.obsv.loader import EpisodeTrace
from repro.telemetry.trace import TraceWriter

#: Fields of a tick record compared during replay, with absolute
#: tolerances. The simulator is bit-deterministic, so the defaults are
#: essentially exact equality modulo JSON float round-tripping.
DEFAULT_TOLERANCES: dict[str, float] = {
    "t": 1e-9,
    "delta": 1e-9,
    "x": 1e-9,
    "y": 1e-9,
    "yaw": 1e-9,
    "speed": 1e-9,
    "reward_nominal": 1e-9,
    "reward_adversarial": 1e-9,
    "npc_gap": 1e-9,
    "ttc": 1e-6,
    "lateral": 1e-9,
}


class ReplayError(RuntimeError):
    """The episode cannot be re-simulated from its trace."""


@dataclass(frozen=True)
class FieldDiff:
    """One out-of-tolerance disagreement between trace and replay."""

    tick: int
    fld: str
    recorded: object
    replayed: object
    error: float
    tolerance: float

    def __str__(self) -> str:
        return (
            f"tick {self.tick}: {self.fld} recorded={self.recorded!r}"
            f" replayed={self.replayed!r} |err|={self.error:.3g}"
            f" tol={self.tolerance:.3g}"
        )


@dataclass
class ReplayReport:
    """Outcome of one replay verification."""

    episode: int | str
    victim: str
    attacker: str
    seed: int
    steps_recorded: int
    steps_replayed: int
    fields_compared: int
    diffs: list[FieldDiff] = field(default_factory=list)
    #: Largest |recorded - replayed| seen per field (within tolerance or not).
    max_error: dict[str, float] = field(default_factory=dict)
    #: Recorded vs replayed episode_end disagreements (steps, collision...).
    end_diffs: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.diffs
            and not self.end_diffs
            and self.steps_recorded == self.steps_replayed
        )

    def to_markdown(self) -> str:
        lines = [
            f"# Replay verification — episode {self.episode}",
            "",
            f"victim `{self.victim}` vs `{self.attacker}`, seed {self.seed}:"
            f" {self.steps_recorded} recorded / {self.steps_replayed}"
            f" replayed ticks, {self.fields_compared} field comparisons.",
            "",
            f"**verdict: {'OK — trace is faithful' if self.ok else 'MISMATCH'}**",
        ]
        if self.max_error:
            lines.append("")
            lines.append("| field | max |error| |")
            lines.append("|---|---|")
            for fld in sorted(self.max_error):
                lines.append(f"| {fld} | {self.max_error[fld]:.3g} |")
        if self.diffs:
            lines.append("")
            lines.append(f"## Out-of-tolerance diffs ({len(self.diffs)})")
            lines.append("")
            lines.extend(f"- {d}" for d in self.diffs[:50])
            if len(self.diffs) > 50:
                lines.append(f"- ... {len(self.diffs) - 50} more")
        if self.end_diffs:
            lines.append("")
            lines.append("## Episode-end diffs")
            lines.append("")
            lines.extend(f"- {d}" for d in self.end_diffs)
        return "\n".join(lines) + "\n"


def _resolve_victim(name: str):
    from repro.agents.modular.agent import ModularAgent
    from repro.experiments import registry

    if name == "modular":
        return lambda world: ModularAgent(world.road)
    if name == "end-to-end":
        return registry.e2e_victim
    if name == "adv-finetuned(rho=1/11)":
        return registry.finetuned_victim_rho11
    if name == "adv-finetuned(rho=1/2)":
        return registry.finetuned_victim_rho2
    raise ReplayError(
        f"victim {name!r} is not replayable by name; supported: modular,"
        " end-to-end, adv-finetuned(rho=1/11), adv-finetuned(rho=1/2)"
    )


def _resolve_attacker(name: str, budget: float, victim: str):
    from repro.core.attackers import OracleAttacker
    from repro.experiments import registry

    if name in ("none", ""):
        return None
    if name == "oracle":
        return OracleAttacker(budget=budget)
    if name == "camera":
        target = "modular" if victim == "modular" else "e2e"
        return registry.camera_attacker(budget, victim=target)
    if name == "imu":
        return registry.imu_attacker(budget)
    raise ReplayError(
        f"attacker {name!r} is not replayable by name; supported: none,"
        " oracle, camera, imu"
    )


def default_tolerance() -> float | None:
    """Uniform tolerance override from ``REPRO_OBSV_TOLERANCE`` (else None)."""
    raw = os.environ.get("REPRO_OBSV_TOLERANCE")
    return float(raw) if raw else None


def diff_ticks(
    reference: list[dict],
    candidate: list[dict],
    tolerances: dict[str, float] | None = None,
) -> tuple[list[FieldDiff], dict[str, float], int]:
    """Field-by-field comparison of two tick streams of one episode.

    The workhorse shared by replay verification and the batch-engine
    equivalence suite. Fields present in ``reference`` but absent from
    ``candidate`` are reported as infinite-error diffs; fields absent
    from ``reference`` are not checked.

    Returns:
        ``(diffs, max_error, fields_compared)`` — the out-of-tolerance
        disagreements, the largest |reference - candidate| per field,
        and how many comparisons ran.
    """
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    diffs: list[FieldDiff] = []
    max_error: dict[str, float] = {}
    compared = 0
    for recorded, replayed in zip(reference, candidate):
        tick = int(recorded["tick"])
        for fld, tol in tolerances.items():
            if fld not in recorded:
                continue
            if fld not in replayed:
                diffs.append(
                    FieldDiff(
                        tick, fld, recorded[fld], None, float("inf"), tol
                    )
                )
                continue
            compared += 1
            error = abs(float(recorded[fld]) - float(replayed[fld]))
            max_error[fld] = max(max_error.get(fld, 0.0), error)
            if not (error <= tol) or math.isnan(error):
                diffs.append(
                    FieldDiff(
                        tick, fld, recorded[fld], replayed[fld], error, tol
                    )
                )
    return diffs, max_error, compared


def replay_episode(
    episode: EpisodeTrace,
    tolerances: dict[str, float] | None = None,
    tolerance: float | None = None,
) -> ReplayReport:
    """Re-simulate ``episode`` from its start record and diff every tick.

    Args:
        episode: a complete episode bucket from :func:`~repro.obsv.loader.
            load_episodes`.
        tolerances: per-field absolute tolerances (defaults to
            :data:`DEFAULT_TOLERANCES`).
        tolerance: uniform override applied to every compared field
            (defaults to ``REPRO_OBSV_TOLERANCE`` when set).

    Returns:
        A :class:`ReplayReport`; ``report.ok`` is the fidelity verdict.
    """
    from repro.eval.episodes import run_episode

    if episode.start is None:
        raise ReplayError(
            f"episode {episode.episode!r} has no episode_start event"
        )
    if episode.scenario == "custom":
        raise ReplayError(
            "episode was recorded under a custom scenario; only the default"
            " scenario is replayable from a trace"
        )
    seed = episode.seed
    if seed is None:
        raise ReplayError("episode_start carries no seed")
    budget = episode.budget if episode.budget is not None else 1.0
    victim_factory = _resolve_victim(episode.victim)
    attacker = _resolve_attacker(episode.attacker, budget, episode.victim)

    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    if tolerance is None:
        tolerance = default_tolerance()
    if tolerance is not None:
        tolerances = {fld: tolerance for fld in tolerances}

    writer = TraceWriter()
    run_episode(
        victim_factory,
        attacker=attacker,
        seed=int(seed),
        trace=writer,
        episode_id=episode.episode,
    )
    replayed_ticks = [e for e in writer.events if e["event"] == "tick"]
    replayed_end = next(
        (e for e in writer.events if e["event"] == "episode_end"), None
    )

    report = ReplayReport(
        episode=episode.episode,
        victim=episode.victim,
        attacker=episode.attacker,
        seed=int(seed),
        steps_recorded=len(episode.ticks),
        steps_replayed=len(replayed_ticks),
        fields_compared=0,
    )
    # The recorder emits a subset of the runner's fields; fields absent
    # from the recording are not checked, but the replay must reproduce
    # everything recorded.
    report.diffs, report.max_error, report.fields_compared = diff_ticks(
        episode.ticks, replayed_ticks, tolerances
    )

    if episode.end is not None and replayed_end is not None:
        for fld in ("steps", "collision", "collision_with", "passed_npcs"):
            was, now = episode.end.get(fld), replayed_end.get(fld)
            if was != now and not (was is None or now is None):
                report.end_diffs.append(f"{fld}: recorded={was!r} replayed={now!r}")
    if report.steps_recorded != report.steps_replayed:
        report.end_diffs.append(
            f"tick count: recorded={report.steps_recorded}"
            f" replayed={report.steps_replayed}"
        )
    return report
