"""Statistical comparison of recorded runs + scientific regression gates.

The paper's headline results are *statistical* claims — attack success
rates, collision rates, effort/success tradeoffs over seed sweeps — and
seed noise on 20-episode cells is large enough to swamp small real
effects. This module turns "run A looks worse than run B" into numbers:

* :func:`collect_metrics` extracts **episode-level metrics** from decoded
  traces (collision rate, attack success, mean strike effort, minimum
  TTC margin, steps-to-strike, steps, returns), grouped into cells by
  ``victim|attacker|budget`` so unlike configurations never mix.
* :func:`compare_runs` runs a **paired or unpaired comparison** per
  metric: seeded bootstrap confidence intervals on the difference of
  means, permutation tests (sign-flip when paired, label-shuffle when
  not), Cliff's delta effect sizes, and Holm–Bonferroni correction
  across the metric family. Everything is driven by
  ``numpy.random.default_rng`` seeded from ``stat_seed`` *and* the
  metric name, so results are bit-reproducible and adding a metric
  never perturbs the others.
* :func:`metric_snapshot` / :func:`compare_metric_snapshots` implement
  the **scientific regression gate**: a committed
  ``benchmarks/BASELINE_metrics.json`` records per-claim metric
  distributions; ``obsv regress --metrics`` re-runs the cells and fails
  when a current mean falls outside the baseline's bootstrap CI —
  mirroring the perf gate's :class:`repro.obsv.regress.Breach` UX.

Paired mode is auto-detected: when both sides ran the *same* seeds
(unique, matching multisets) episodes are matched seed-by-seed, which
cancels scenario difficulty and typically tightens CIs several-fold.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.injection import ACTIVE_THRESHOLD
from repro.obsv.loader import EpisodeTrace
from repro.obsv.regress import Breach
from repro.obsv.render import fmt, markdown_table

#: Version stamp written into metric snapshots.
METRICS_SCHEMA_VERSION = 1

#: Metric names, in report order. ``higher_is_better`` drives the drift
#: direction shown in reports (gates breach on either side regardless).
METRICS = (
    ("collision", "collision rate", False),
    ("attack_success", "attack success (side collision)", False),
    ("effort", "mean strike effort |delta|", False),
    ("ttc_min", "min time-to-collision margin (s)", True),
    ("steps_to_strike", "steps to first strike", True),
    ("steps", "episode steps", True),
    ("nominal_return", "nominal return", True),
    ("adversarial_return", "adversarial return", False),
)

METRIC_LABELS = {name: label for name, label, _ in METRICS}
METRIC_DIRECTION = {name: higher for name, _, higher in METRICS}


@dataclass(frozen=True)
class StatConfig:
    """Knobs of the statistical machinery (all deterministic)."""

    stat_seed: int = 0
    resamples: int = 2000
    confidence: float = 0.95
    alpha: float = 0.05

    def rng(self, metric: str) -> np.random.Generator:
        """A generator keyed by (seed, metric name).

        Seeding per metric means adding or reordering metrics never
        changes another metric's CI — each draws from its own stream.
        """
        return np.random.default_rng(
            [int(self.stat_seed), zlib.crc32(metric.encode("utf-8"))]
        )


def cell_key(victim: str, attacker: str, budget: float | None) -> str:
    """The grouping key ``victim|attacker|budget`` for one configuration."""
    return f"{victim}|{attacker}|{0.0 if budget is None else budget:.2f}"


def episode_metrics(episode: EpisodeTrace) -> dict[str, float]:
    """Episode-level metric values from one complete episode trace.

    ``effort`` matches the dashboard's strike-effort definition (mean
    |delta| over ticks above :data:`ACTIVE_THRESHOLD`); ``ttc_min`` and
    ``steps_to_strike`` are omitted when the episode never records a TTC
    / never strikes, so their sample sizes may be smaller than ``n``.
    """
    metrics: dict[str, float] = {}
    end = episode.end or {}
    collision = episode.collision
    metrics["collision"] = float(collision is not None)
    metrics["attack_success"] = float(collision == "SIDE")
    if "steps" in end:
        metrics["steps"] = float(end["steps"])
    if "nominal_return" in end:
        metrics["nominal_return"] = float(end["nominal_return"])
    if "adversarial_return" in end:
        metrics["adversarial_return"] = float(end["adversarial_return"])

    deltas = episode.deltas()
    strikes = [d for d in deltas if d > ACTIVE_THRESHOLD]
    metrics["effort"] = (
        float(np.mean(strikes)) if strikes else 0.0
    )
    ttc = episode.series("ttc")
    if ttc:
        metrics["ttc_min"] = float(min(ttc))
    budget = episode.budget or 0.0
    strike_level = max(ACTIVE_THRESHOLD, 0.5 * float(budget))
    for index, delta in enumerate(deltas):
        if delta >= strike_level:
            metrics["steps_to_strike"] = float(index + 1)
            break
    return metrics


@dataclass
class MetricSamples:
    """Per-metric value lists for one configuration cell."""

    key: str
    n: int = 0
    seeds: list = field(default_factory=list)
    #: metric -> ``{seed_or_index: value}`` (insertion-ordered).
    values: dict[str, dict] = field(default_factory=dict)

    def metric_values(self, metric: str) -> list[float]:
        return list(self.values.get(metric, {}).values())


def collect_metrics(episodes: list[EpisodeTrace]) -> dict[str, MetricSamples]:
    """Group complete episodes into cells and extract metric samples."""
    cells: dict[str, MetricSamples] = {}
    for index, episode in enumerate(episodes):
        if not episode.complete:
            continue
        key = cell_key(episode.victim, episode.attacker, episode.budget)
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = MetricSamples(key=key)
        seed = episode.seed if episode.seed is not None else f"#{index}"
        cell.n += 1
        cell.seeds.append(seed)
        for metric, value in episode_metrics(episode).items():
            bucket = cell.values.setdefault(metric, {})
            # Repeated seeds get distinct keys so no sample is dropped.
            slot = seed
            while slot in bucket:
                slot = f"{slot}+"
            bucket[slot] = value
    return cells


# -- statistics ---------------------------------------------------------------------


def bootstrap_diff_ci(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator,
    resamples: int,
    confidence: float,
    paired: bool,
) -> tuple[float, float]:
    """Percentile bootstrap CI on ``mean(a) - mean(b)``.

    Paired: resamples the per-pair differences. Unpaired: resamples each
    side independently. Fully vectorized; one ``rng`` draw sequence per
    call, so a fixed seed reproduces the interval bit-for-bit.
    """
    tail = 0.5 * (1.0 - confidence)
    if paired:
        diff = a - b
        idx = rng.integers(0, len(diff), size=(resamples, len(diff)))
        means = diff[idx].mean(axis=1)
    else:
        idx_a = rng.integers(0, len(a), size=(resamples, len(a)))
        idx_b = rng.integers(0, len(b), size=(resamples, len(b)))
        means = a[idx_a].mean(axis=1) - b[idx_b].mean(axis=1)
    lo, hi = np.quantile(means, [tail, 1.0 - tail])
    return float(lo), float(hi)


def bootstrap_mean_ci_seeded(
    values: np.ndarray,
    rng: np.random.Generator,
    resamples: int,
    confidence: float,
) -> tuple[float, float]:
    """Percentile bootstrap CI on one sample's mean (for snapshots)."""
    if len(values) == 1:
        value = float(values[0])
        return value, value
    tail = 0.5 * (1.0 - confidence)
    idx = rng.integers(0, len(values), size=(resamples, len(values)))
    means = values[idx].mean(axis=1)
    lo, hi = np.quantile(means, [tail, 1.0 - tail])
    return float(lo), float(hi)


def permutation_test(
    a: np.ndarray,
    b: np.ndarray,
    rng: np.random.Generator,
    resamples: int,
    paired: bool,
) -> float:
    """Two-sided permutation p-value for ``mean(a) - mean(b)``.

    Paired: random sign flips of the per-pair differences. Unpaired:
    random relabelings of the pooled sample (vectorized via per-row
    argsort of uniform draws). Uses the add-one estimator
    ``(1 + hits) / (R + 1)`` so p is never exactly zero.
    """
    observed = float(a.mean() - b.mean())
    if paired:
        diff = a - b
        signs = rng.integers(0, 2, size=(resamples, len(diff))) * 2 - 1
        stats = (signs * diff).mean(axis=1)
    else:
        pooled = np.concatenate([a, b])
        order = np.argsort(
            rng.random((resamples, len(pooled))), axis=1
        )
        shuffled = pooled[order]
        stats = (
            shuffled[:, : len(a)].mean(axis=1)
            - shuffled[:, len(a):].mean(axis=1)
        )
    hits = int(np.count_nonzero(np.abs(stats) >= abs(observed) - 1e-12))
    return float((1 + hits) / (resamples + 1))


def cliffs_delta(a: np.ndarray, b: np.ndarray) -> float:
    """Cliff's delta effect size: P(a > b) - P(a < b), in [-1, 1]."""
    if len(a) == 0 or len(b) == 0:
        return 0.0
    diff = a[:, None] - b[None, :]
    return float((np.sign(diff)).mean())


def holm_bonferroni(p_values: list[float], alpha: float) -> list[bool]:
    """Step-down Holm correction: which hypotheses stay significant."""
    order = sorted(range(len(p_values)), key=lambda i: p_values[i])
    significant = [False] * len(p_values)
    m = len(p_values)
    for rank, index in enumerate(order):
        if p_values[index] <= alpha / (m - rank):
            significant[index] = True
        else:
            break  # step-down: first failure stops the chain
    return significant


# -- run comparison -----------------------------------------------------------------


@dataclass
class MetricComparison:
    """One metric's A-vs-B verdict inside one cell."""

    metric: str
    n_a: int
    n_b: int
    mean_a: float
    mean_b: float
    diff: float
    ci: tuple[float, float]
    p_value: float
    effect: float
    paired: bool
    significant: bool = False

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "label": METRIC_LABELS.get(self.metric, self.metric),
            "n_a": self.n_a,
            "n_b": self.n_b,
            "mean_a": round(self.mean_a, 6),
            "mean_b": round(self.mean_b, 6),
            "diff": round(self.diff, 6),
            "ci": [round(self.ci[0], 6), round(self.ci[1], 6)],
            "p_value": round(self.p_value, 6),
            "effect": round(self.effect, 6),
            "paired": self.paired,
            "significant": self.significant,
        }


@dataclass
class CellComparison:
    """All metric comparisons for one ``victim|attacker|budget`` cell."""

    key: str
    paired: bool
    n_a: int
    n_b: int
    metrics: list[MetricComparison] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "cell": self.key,
            "paired": self.paired,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "metrics": [m.to_json() for m in self.metrics],
        }


@dataclass
class RunComparison:
    """A full two-run comparison, ready to render or serialize."""

    label_a: str
    label_b: str
    stat: StatConfig
    cells: list[CellComparison] = field(default_factory=list)
    provenance_a: dict | None = None
    provenance_b: dict | None = None
    #: Cells present on only one side (compared nowhere, listed so a
    #: report never silently drops a configuration).
    unmatched_a: list[str] = field(default_factory=list)
    unmatched_b: list[str] = field(default_factory=list)

    @property
    def significant(self) -> list[tuple[str, MetricComparison]]:
        return [
            (cell.key, metric)
            for cell in self.cells
            for metric in cell.metrics
            if metric.significant
        ]

    def to_json(self) -> dict:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "stat": {
                "stat_seed": self.stat.stat_seed,
                "resamples": self.stat.resamples,
                "confidence": self.stat.confidence,
                "alpha": self.stat.alpha,
            },
            "provenance_a": _provenance_brief(self.provenance_a),
            "provenance_b": _provenance_brief(self.provenance_b),
            "cells": [cell.to_json() for cell in self.cells],
            "unmatched_a": list(self.unmatched_a),
            "unmatched_b": list(self.unmatched_b),
            "significant_count": len(self.significant),
        }

    def to_markdown(self) -> str:
        return render_comparison(self)


def _provenance_brief(payload: dict | None) -> dict | None:
    if not payload:
        return None
    return {
        "git_sha": payload.get("git_sha"),
        "git_dirty": payload.get("git_dirty"),
        "config_hash": payload.get("config_hash"),
        "weights": payload.get("weights", {}),
    }


def _pairable(seeds_a: list, seeds_b: list) -> bool:
    """Same unique seed sets on both sides -> seed-matched pairing."""
    if not seeds_a or len(seeds_a) != len(seeds_b):
        return False
    if len(set(seeds_a)) != len(seeds_a) or len(set(seeds_b)) != len(seeds_b):
        return False
    return set(seeds_a) == set(seeds_b)


def compare_cells(
    cell_a: MetricSamples,
    cell_b: MetricSamples,
    stat: StatConfig,
    paired: bool | None = None,
) -> CellComparison:
    """Compare one configuration cell across two runs.

    ``paired=None`` auto-detects pairing from the seed sets. Metrics
    where either side has no samples are skipped (e.g. ``ttc_min`` when
    one side never recorded a TTC).
    """
    if paired is None:
        paired = _pairable(cell_a.seeds, cell_b.seeds)
    comparison = CellComparison(
        key=cell_a.key, paired=paired, n_a=cell_a.n, n_b=cell_b.n
    )
    for metric, _, _ in METRICS:
        values_a = cell_a.values.get(metric, {})
        values_b = cell_b.values.get(metric, {})
        if paired:
            shared = [s for s in values_a if s in values_b]
            a = np.asarray([values_a[s] for s in shared], dtype=float)
            b = np.asarray([values_b[s] for s in shared], dtype=float)
        else:
            a = np.asarray(list(values_a.values()), dtype=float)
            b = np.asarray(list(values_b.values()), dtype=float)
        if len(a) == 0 or len(b) == 0:
            continue
        rng = stat.rng(f"{cell_a.key}:{metric}")
        ci = bootstrap_diff_ci(
            a, b, rng, stat.resamples, stat.confidence, paired
        )
        p = permutation_test(a, b, rng, stat.resamples, paired)
        comparison.metrics.append(
            MetricComparison(
                metric=metric,
                n_a=len(a),
                n_b=len(b),
                mean_a=float(a.mean()),
                mean_b=float(b.mean()),
                diff=float(a.mean() - b.mean()),
                ci=ci,
                p_value=p,
                effect=cliffs_delta(a, b),
                paired=paired,
            )
        )
    # Holm correction across this cell's metric family.
    flags = holm_bonferroni(
        [m.p_value for m in comparison.metrics], stat.alpha
    )
    for metric, flag in zip(comparison.metrics, flags):
        metric.significant = flag
    return comparison


def compare_runs(
    episodes_a: list[EpisodeTrace],
    episodes_b: list[EpisodeTrace],
    stat: StatConfig | None = None,
    label_a: str = "A",
    label_b: str = "B",
    paired: bool | None = None,
    provenance_a: dict | None = None,
    provenance_b: dict | None = None,
) -> RunComparison:
    """Compare two runs cell-by-cell over every shared configuration."""
    stat = stat or StatConfig()
    cells_a = collect_metrics(episodes_a)
    cells_b = collect_metrics(episodes_b)
    comparison = RunComparison(
        label_a=label_a,
        label_b=label_b,
        stat=stat,
        provenance_a=provenance_a,
        provenance_b=provenance_b,
        unmatched_a=sorted(set(cells_a) - set(cells_b)),
        unmatched_b=sorted(set(cells_b) - set(cells_a)),
    )
    for key in sorted(set(cells_a) & set(cells_b)):
        comparison.cells.append(
            compare_cells(cells_a[key], cells_b[key], stat, paired)
        )
    return comparison


def render_comparison(comparison: RunComparison) -> str:
    """The comparison as a markdown report (dashboard-compatible)."""
    lines = [f"# Run comparison — {comparison.label_a} vs {comparison.label_b}", ""]
    stat = comparison.stat
    lines.append(
        f"stat-seed {stat.stat_seed} · {stat.resamples} resamples · "
        f"{stat.confidence:.0%} CI · alpha {stat.alpha} (Holm-corrected"
        " per cell)"
    )
    lines.append("")
    for side, payload in (
        (comparison.label_a, comparison.provenance_a),
        (comparison.label_b, comparison.provenance_b),
    ):
        if payload:
            sha = str(payload.get("git_sha", "unknown"))[:12]
            dirty = "+dirty" if payload.get("git_dirty") else ""
            cfg = str(payload.get("config_hash", ""))[:12]
            lines.append(f"- `{side}`: git `{sha}{dirty}` config `{cfg}`")
    if comparison.provenance_a or comparison.provenance_b:
        lines.append("")
    if not comparison.cells:
        lines.append("_No shared configuration cells to compare._")
        lines.append("")
    for cell in comparison.cells:
        mode = "paired" if cell.paired else "unpaired"
        lines.append(
            f"## {cell.key} — n={cell.n_a} vs n={cell.n_b} ({mode})"
        )
        lines.append("")
        rows = []
        for m in cell.metrics:
            marker = "**yes**" if m.significant else "no"
            rows.append(
                [
                    METRIC_LABELS.get(m.metric, m.metric),
                    fmt(m.mean_a),
                    fmt(m.mean_b),
                    fmt(m.diff),
                    f"[{fmt(m.ci[0])}, {fmt(m.ci[1])}]",
                    fmt(m.p_value, 4),
                    fmt(m.effect),
                    marker,
                ]
            )
        lines.extend(
            markdown_table(
                (
                    "metric",
                    comparison.label_a,
                    comparison.label_b,
                    "diff",
                    "CI(diff)",
                    "p",
                    "effect",
                    "significant",
                ),
                rows,
            )
        )
        lines.append("")
    for side, keys in (
        (comparison.label_a, comparison.unmatched_a),
        (comparison.label_b, comparison.unmatched_b),
    ):
        if keys:
            lines.append(
                f"_Cells only in {side}: " + ", ".join(keys) + "_"
            )
            lines.append("")
    count = len(comparison.significant)
    lines.append(
        f"**{count} significant difference(s)**"
        if count
        else "No significant differences."
    )
    lines.append("")
    return "\n".join(lines)


# -- metric snapshots + regression gates --------------------------------------------


def metric_snapshot(
    episodes: list[EpisodeTrace],
    stat: StatConfig | None = None,
    claims: dict[str, str] | None = None,
    provenance: dict | None = None,
) -> dict:
    """Per-cell metric distributions as a committable JSON document.

    The baseline side of the scientific regression gate: per metric the
    snapshot stores n, mean, a seeded bootstrap CI on the mean, and the
    raw values (rounded) so future builds can re-test against the
    *distribution*, not just a point estimate. ``claims`` optionally maps
    cell keys to claim descriptions (EXPERIMENTS.md anchors).
    """
    stat = stat or StatConfig()
    cells = collect_metrics(episodes)
    document: dict = {
        "schema": METRICS_SCHEMA_VERSION,
        "kind": "metrics",
        "stat": {
            "stat_seed": stat.stat_seed,
            "resamples": stat.resamples,
            "confidence": stat.confidence,
            "alpha": stat.alpha,
        },
        "provenance": _provenance_brief(provenance),
        "cells": {},
    }
    for key in sorted(cells):
        cell = cells[key]
        entry: dict = {"n": cell.n, "metrics": {}}
        if claims and key in claims:
            entry["claim"] = claims[key]
        for metric, _, _ in METRICS:
            values = np.asarray(cell.metric_values(metric), dtype=float)
            if len(values) == 0:
                continue
            rng = stat.rng(f"{key}:{metric}")
            lo, hi = bootstrap_mean_ci_seeded(
                values, rng, stat.resamples, stat.confidence
            )
            entry["metrics"][metric] = {
                "n": int(len(values)),
                "mean": round(float(values.mean()), 6),
                "ci": [round(lo, 6), round(hi, 6)],
                "values": [round(float(v), 6) for v in values],
            }
        document["cells"][key] = entry
    return document


def stat_config_from_snapshot(document: dict) -> StatConfig:
    """Rebuild the :class:`StatConfig` a snapshot was produced with."""
    stat = document.get("stat", {}) if isinstance(document, dict) else {}
    return StatConfig(
        stat_seed=int(stat.get("stat_seed", 0)),
        resamples=int(stat.get("resamples", 2000)),
        confidence=float(stat.get("confidence", 0.95)),
        alpha=float(stat.get("alpha", 0.05)),
    )


def is_metric_snapshot(document: object) -> bool:
    return isinstance(document, dict) and document.get("kind") == "metrics"


def compare_metric_snapshots(
    current: dict,
    baseline: dict,
    min_n: int = 5,
    tolerance: float = 1e-9,
) -> list[Breach]:
    """Gate a current metric snapshot against a committed baseline.

    A breach is a current cell mean falling outside the baseline's
    bootstrap CI on that metric's mean (either side — a "too good"
    drift usually means the configuration silently changed). Cells or
    metrics absent from either side are skipped; samples below ``min_n``
    on either side are too noisy to gate and are skipped too.
    """
    breaches: list[Breach] = []
    baseline_cells = baseline.get("cells", {})
    for key, entry in sorted(current.get("cells", {}).items()):
        base_entry = baseline_cells.get(key)
        if not base_entry:
            continue
        for metric, stats in sorted(entry.get("metrics", {}).items()):
            base = base_entry.get("metrics", {}).get(metric)
            if not base:
                continue
            if stats.get("n", 0) < min_n or base.get("n", 0) < min_n:
                continue
            mean = float(stats["mean"])
            lo, hi = (float(base["ci"][0]), float(base["ci"][1]))
            if lo - tolerance <= mean <= hi + tolerance:
                continue
            limit = lo if mean < lo else hi
            breaches.append(
                Breach(
                    kind="metric",
                    name=key,
                    baseline=float(base["mean"]),
                    current=mean,
                    limit=limit,
                    metric=metric,
                )
            )
    return breaches


# -- input resolution (traces / dirs / stores) --------------------------------------


def _provenance_from_events(events) -> dict | None:
    from repro.telemetry.provenance import scan_provenance

    return scan_provenance(events)


def load_run(
    source: str | Path,
    label: str | None = None,
) -> tuple[list[EpisodeTrace], dict | None, str]:
    """Episodes + provenance + display label from one run source.

    Accepts a JSONL trace file, a run directory (every ``*.jsonl`` in
    it), or a telemetry store (optionally narrowed to one logical run
    ``label``). Missing/empty sources return no episodes rather than
    raising — the CLI degrades with a warning instead of a traceback.
    """
    from repro.obsv.store import TelemetryStore, is_store_path
    from repro.telemetry.trace import read_trace, validate_event

    source = Path(source)
    if not source.exists():
        return [], None, str(source)
    if source.is_dir():
        store_path = source / "obsv.sqlite"
        trace_paths = sorted(source.glob("*.jsonl"))
        if not trace_paths and store_path.exists():
            return load_run(store_path, label=label)
        episodes: list[EpisodeTrace] = []
        provenance = None
        for path in trace_paths:
            events = [
                e for e in read_trace(path) if not validate_event(e)
            ]
            if provenance is None:
                provenance = _provenance_from_events(events)
            from repro.obsv.loader import split_episodes

            episodes.extend(split_episodes(events))
        return episodes, provenance, source.name
    if is_store_path(source):
        with TelemetryStore(source) as store:
            episodes = store.episodes(label=label)
            rows = store.run_provenance()
            if label is not None:
                rows = [r for r in rows if r["label"] == label]
            provenance = next(
                (r["provenance"] for r in rows if r["provenance"]), None
            )
        name = source.name if label is None else f"{source.name}:{label}"
        return episodes, provenance, name
    events = [e for e in read_trace(source) if not validate_event(e)]
    from repro.obsv.loader import split_episodes

    return (
        split_episodes(events),
        _provenance_from_events(events),
        source.name,
    )


def load_metric_source(
    source: str | Path,
    stat: StatConfig,
    label: str | None = None,
) -> dict | None:
    """A metric snapshot from a snapshot JSON *or* a raw run source.

    ``obsv regress --metrics`` accepts either a precomputed snapshot
    document or traces/dirs/stores, which are snapshotted on the fly
    with the baseline's stat config so CIs line up.
    """
    path = Path(source)
    if path.is_file() and path.suffix == ".json":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            return None
        if is_metric_snapshot(document):
            return document
        return None
    episodes, provenance, _ = load_run(path, label=label)
    if not episodes:
        return None
    return metric_snapshot(episodes, stat, provenance=provenance)
