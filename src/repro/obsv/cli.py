"""``python -m repro.obsv`` — analysis and live monitoring of telemetry.

Subcommands:

* ``forensics <trace.jsonl>`` — per-episode post-mortem (markdown, or
  ``--json``); ``--episode ID`` picks one episode, default analyses all.
* ``replay <trace.jsonl>`` — re-simulate episodes from their seeds and
  diff against the recording; exits 1 on any out-of-tolerance field.
* ``dashboard <dir|store.sqlite>`` — aggregate traces + metrics + bench
  telemetry into markdown (or ``--html``); accepts either a run
  directory of JSONL traces or an ingested telemetry store.
* ``compare <a> <b>`` — statistical A/B comparison of two recorded runs
  (trace files, run directories, or stores; ``--run-a``/``--run-b``
  pick logical runs inside a store): seeded bootstrap CIs, permutation
  tests, effect sizes, Holm correction. Deterministic under a fixed
  ``--stat-seed``; ``--json``/``--html`` for machine/browser output.
* ``regress <current> <baseline>`` — compare bench telemetry snapshots
  (JSON files or stores holding one); exits 1 on threshold breaches
  (``--json`` for the machine-readable breach report). With
  ``--metrics`` the comparison is *scientific* instead: current
  episode metrics (from a metric snapshot JSON, trace, run directory,
  or store) are gated against a committed baseline's bootstrap CIs
  (``benchmarks/BASELINE_metrics.json``).
* ``profile [snapshot]`` — self-time attribution, FLOP rates, and
  allocation figures from a profile/bench snapshot (or ``--demo`` for a
  live in-process workload); ``--flamegraph`` renders the HTML
  flamegraph, ``--report-dir`` writes the full ``PROFILE_*`` bundle.
* ``ingest <dir>`` — load a run directory's traces and snapshots into a
  SQLite telemetry store (default ``<dir>/obsv.sqlite``).
* ``query <store>`` — filter/aggregate stored events, export CSV.
* ``watch <trace.jsonl|dir>`` — tail a growing training trace (or a
  directory of per-worker shards, multiplexed) with a live terminal
  view and watchdog alerts (``--exit-on-alert`` for CI).
* ``serve <dir|store.sqlite>`` — HTTP dashboard server on localhost:
  live HTML dashboard, flamegraph, JSON query API, and an SSE stream of
  new events and watchdog alerts across every shard in the run.
* ``verify-artifacts [dir]`` — audit every ``.npz`` checkpoint under a
  directory (default ``artifacts/``) with checksum/load validation;
  exits 1 on corruption.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obsv import forensics as forensics_mod
from repro.obsv import regress as regress_mod
from repro.obsv import replay as replay_mod
from repro.obsv.alerts import WatchConfig
from repro.obsv.dashboard import (
    build_dashboard,
    build_dashboard_from_store,
    to_html,
)
from repro.obsv.loader import load_episodes, select_episode
from repro.obsv.store import (
    DEFAULT_STORE_NAME,
    GROUP_KEYS,
    TelemetryStore,
    export_csv,
    is_store_path,
)
from repro.obsv.watch import DRIFT_MIN_N, watch_trace
from repro.telemetry.log import get_logger

log = get_logger("obsv")

def _emit(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text, encoding="utf-8")
        log.info("obsv.wrote", path=out, bytes=len(text))
    else:
        sys.stdout.write(text)


def _episodes_for(args) -> list:
    episodes = load_episodes(args.trace, strict=args.strict)
    if args.episode is not None:
        return [select_episode(episodes, args.episode)]
    chosen = [e for e in episodes if e.complete]
    if not chosen:
        raise SystemExit(f"no complete episodes in {args.trace}")
    return chosen


def _cmd_forensics(args) -> int:
    episodes = _episodes_for(args)
    reports = [
        forensics_mod.analyze(e, strike_fraction=args.strike_fraction)
        for e in episodes
    ]
    if args.json:
        payload = [r.to_json() for r in reports]
        _emit(json.dumps(payload, indent=2) + "\n", args.out)
    else:
        chunks = [
            r.to_markdown(ticks=e.ticks)
            for r, e in zip(reports, episodes)
        ]
        _emit("\n".join(chunks), args.out)
    return 0


def _cmd_replay(args) -> int:
    episodes = _episodes_for(args)
    failures = 0
    chunks = []
    for episode in episodes:
        try:
            report = replay_mod.replay_episode(
                episode, tolerance=args.tolerance
            )
        except replay_mod.ReplayError as error:
            failures += 1
            chunks.append(
                f"# Replay — episode {episode.episode}\n\nERROR: {error}\n"
            )
            continue
        if not report.ok:
            failures += 1
        chunks.append(report.to_markdown())
    _emit("\n".join(chunks), args.out)
    return 1 if failures else 0


def _cmd_dashboard(args) -> int:
    target = Path(args.dir)
    if target.is_file() and is_store_path(target):
        markdown = build_dashboard_from_store(target)
    else:
        markdown = build_dashboard(
            args.dir, metrics_path=args.metrics, bench_path=args.bench
        )
    _emit(to_html(markdown) if args.html else markdown, args.out)
    return 0


def _load_bench_snapshot(path: str) -> dict:
    """A bench snapshot from a JSON file or an ingested telemetry store."""
    target = Path(path)
    if target.is_file() and is_store_path(target):
        with TelemetryStore(target) as store:
            snapshot = store.snapshot("BENCH_telemetry.json")
        if snapshot is None:
            raise SystemExit(
                f"store {path} holds no BENCH_telemetry.json snapshot"
            )
        return snapshot
    return json.loads(target.read_text(encoding="utf-8"))


def _cmd_compare(args) -> int:
    from repro.obsv import compare as compare_mod

    stat = compare_mod.StatConfig(
        stat_seed=args.stat_seed,
        resamples=args.resamples,
        confidence=args.confidence,
        alpha=args.alpha,
    )
    episodes_a, prov_a, label_a = compare_mod.load_run(
        args.a, label=args.run_a
    )
    if args.snapshot:
        if not episodes_a:
            sys.stderr.write(
                f"compare: no complete episodes in {args.a}\n"
            )
            return 1
        snapshot = compare_mod.metric_snapshot(
            episodes_a, stat, provenance=prov_a
        )
        _emit(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n", args.out
        )
        return 0
    if args.b is None:
        sys.stderr.write("compare: run B is required (or use --snapshot)\n")
        return 1
    episodes_b, prov_b, label_b = compare_mod.load_run(
        args.b, label=args.run_b
    )
    missing = [
        source
        for source, episodes in ((args.a, episodes_a), (args.b, episodes_b))
        if not episodes
    ]
    if missing:
        for source in missing:
            sys.stderr.write(
                f"compare: no complete episodes in {source}\n"
            )
        return 1
    paired = {"auto": None, "yes": True, "no": False}[args.paired]
    comparison = compare_mod.compare_runs(
        episodes_a,
        episodes_b,
        stat=stat,
        label_a=label_a,
        label_b=label_b,
        paired=paired,
        provenance_a=prov_a,
        provenance_b=prov_b,
    )
    if args.json:
        _emit(
            json.dumps(comparison.to_json(), indent=2, sort_keys=True) + "\n",
            args.out,
        )
    else:
        markdown = comparison.to_markdown()
        _emit(to_html(markdown) if args.html else markdown, args.out)
    return 0


def _metrics_snapshot_from(path: str) -> dict:
    """A metric snapshot document from a JSON file or a telemetry store."""
    from repro.obsv import compare as compare_mod

    target = Path(path)
    if target.is_file() and is_store_path(target):
        with TelemetryStore(target) as store:
            for name in store.snapshots():
                snapshot = store.snapshot(name)
                if compare_mod.is_metric_snapshot(snapshot):
                    return snapshot
        raise SystemExit(f"store {path} holds no metric snapshot")
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"regress: baseline not found: {path}")
    except ValueError:
        raise SystemExit(f"regress: baseline is not JSON: {path}")
    if not compare_mod.is_metric_snapshot(document):
        raise SystemExit(
            f"regress: {path} is not a metric snapshot (kind != 'metrics')"
        )
    return document


def _cmd_regress_metrics(args) -> int:
    from repro.obsv import compare as compare_mod

    baseline = _metrics_snapshot_from(args.baseline)
    stat = compare_mod.stat_config_from_snapshot(baseline)
    current = compare_mod.load_metric_source(args.current, stat)
    if current is None:
        sys.stderr.write(
            f"regress: no metrics available from {args.current}\n"
        )
        return 1
    breaches = compare_mod.compare_metric_snapshots(
        current, baseline, min_n=args.min_n
    )
    if args.json:
        sys.stdout.write(regress_mod.report_json(breaches))
    else:
        sys.stdout.write(regress_mod.report(breaches))
    return 1 if breaches else 0


def _cmd_regress(args) -> int:
    if args.metrics:
        return _cmd_regress_metrics(args)
    thresholds = regress_mod.RegressionThresholds.from_env()
    if args.max_ratio is not None:
        thresholds = regress_mod.RegressionThresholds(
            wall_clock_ratio=args.max_ratio,
            span_mean_ratio=args.max_ratio,
            span_self_ratio=args.max_ratio,
        )
    breaches = regress_mod.compare_snapshots(
        _load_bench_snapshot(args.current),
        _load_bench_snapshot(args.baseline),
        thresholds,
    )
    if args.json:
        sys.stdout.write(regress_mod.report_json(breaches))
    else:
        sys.stdout.write(regress_mod.report(breaches))
    return 1 if breaches else 0


def _profile_demo(args):
    """Run a short nominal workload in-process under a profile session.

    Uses the shipped end-to-end driver when its checkpoint exists, else
    the training-free modular pipeline, so the demo works on a fresh
    clone before ``examples/train_all.py``.
    """
    from repro.eval.episodes import run_episode
    from repro.experiments import registry
    from repro.obsv.prof import ProfileConfig, ProfileSession
    from repro.obsv.prof.memory import parse_mem_spec

    if registry.has_artifact(registry.E2E_DRIVER):
        victim_factory, victim = registry.e2e_victim, "e2e"
    else:
        victim_factory, victim = registry.modular_victim, "modular"
    config = ProfileConfig(
        hz=args.hz, mem=parse_mem_spec(args.mem), flops=True
    )
    session = ProfileSession(config, reset=True).start()
    for seed in range(args.episodes):
        run_episode(victim_factory, seed=seed)
    report = session.stop()
    log.info(
        "obsv.profile.demo", victim=victim, episodes=args.episodes,
        wall_clock_s=round(report.wall_clock_s, 3),
    )
    return report


def _profile_from_snapshot(path: str):
    """A report reconstructed from profiling/bench output on disk.

    Accepts a ``PROFILE_report.json`` bundle, a ``BENCH_telemetry.json``
    snapshot (schema 1 or 2), or an ingested telemetry store holding one.
    """
    from repro.obsv.prof import ProfileReport
    from repro.obsv.prof.selftime import root_total_s

    snapshot = _load_bench_snapshot(path)
    if snapshot.get("kind") == "profile":
        return ProfileReport(
            wall_clock_s=float(snapshot.get("wall_clock_s", 0.0)),
            spans=snapshot.get("spans", {}),
            flops=snapshot.get("flops", {}),
            span_flops=snapshot.get("span_flops", {}),
            memory=snapshot.get("memory", {}),
            sampler=snapshot.get("sampler", {}),
            folded=snapshot.get("sampler", {}).get("folded", {}),
            config=snapshot.get("config", {}),
        )
    spans = snapshot.get("spans", {})
    if not spans:
        raise SystemExit(f"{path}: no span data to profile")
    profile = snapshot.get("profile", {})
    return ProfileReport(
        wall_clock_s=float(
            snapshot.get("wall_clock_s", 0.0) or root_total_s(spans)
        ),
        spans=spans,
        flops=profile.get("flops", {}),
        span_flops=profile.get("span_flops", {}),
        memory=profile.get("memory", {}),
        sampler=profile.get("sampler", {}),
    )


def _cmd_profile(args) -> int:
    if args.demo:
        report = _profile_demo(args)
    elif args.input:
        report = _profile_from_snapshot(args.input)
    else:
        raise SystemExit("profile needs an input snapshot or --demo")
    if args.flamegraph:
        report.flamegraph_html(path=args.flamegraph)
        log.info("obsv.profile.flamegraph", path=args.flamegraph)
    if args.report_dir:
        paths = report.write(args.report_dir)
        log.info(
            "obsv.profile.bundle",
            **{key: str(value) for key, value in paths.items()},
        )
    if args.json:
        _emit(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            args.out,
        )
    else:
        _emit(report.to_markdown(top=args.top), args.out)
    return 0


def _cmd_ingest(args) -> int:
    directory = Path(args.dir)
    store_path = Path(args.store) if args.store else directory / (
        DEFAULT_STORE_NAME
    )
    with TelemetryStore(store_path) as store:
        summary = store.ingest_dir(directory, pattern=args.pattern)
    log.info("obsv.ingested", store=str(store_path), **summary)
    sys.stdout.write(
        f"ingested {summary['traces']} trace(s) / {summary['events']}"
        f" event(s) / {summary['snapshots']} snapshot(s) into"
        f" {store_path}\n"
    )
    return 0


def _cmd_query(args) -> int:
    with TelemetryStore(args.store) as store:
        filters = dict(
            kind=args.kind, episode=args.episode, loop=args.loop,
            run=args.run, name=args.name, worker=args.worker,
            label=args.label,
        )
        if args.field and args.agg:
            rows = store.aggregate(
                args.field, agg=args.agg, group_by=args.group_by, **filters
            )
            if args.group_by:
                header = [args.group_by, f"{args.agg}({args.field})"]
            else:
                header = [f"{args.agg}({args.field})"]
            text = export_csv(header, rows, args.csv)
            if args.csv is None:
                sys.stdout.write(text)
            return 0
        if args.field:
            values = store.series(args.field, **filters)
            if args.limit is not None:
                values = values[: args.limit]
            text = export_csv([args.field], ([v] for v in values), args.csv)
            if args.csv is None:
                sys.stdout.write(text)
            return 0
        events = store.events(limit=args.limit, **filters)
        lines = "".join(
            json.dumps(event, separators=(",", ":")) + "\n"
            for event in events
        )
        if args.csv is not None:
            raise SystemExit("--csv needs --field (raw events stay JSONL)")
        sys.stdout.write(lines)
    return 0


def _cmd_verify_artifacts(args) -> int:
    from repro.utils.serialization import (
        load_checkpoint,
        save_checkpoint,
        verify_checkpoint,
    )

    root = Path(args.dir)
    if not root.is_dir():
        raise SystemExit(f"not a directory: {root}")
    targets = sorted(root.rglob("*.npz"))
    if not targets:
        sys.stdout.write(f"no .npz checkpoints under {root}\n")
        return 0
    corrupt = 0
    legacy = 0
    lines = []
    for path in targets:
        report = verify_checkpoint(path)
        if not report.ok:
            corrupt += 1
        elif report.legacy:
            legacy += 1
            if args.upgrade:
                arrays, meta = load_checkpoint(path)
                save_checkpoint(path, arrays, meta)
                lines.append(f"{path}: legacy -> upgraded to checksummed")
                continue
        detail = f" ({report.reason})" if report.reason else ""
        lines.append(
            f"{path}: {report.status} "
            f"[{report.arrays} arrays, {report.size} bytes]{detail}"
        )
    lines.append(
        f"{len(targets)} checkpoint(s): {len(targets) - corrupt - legacy} ok,"
        f" {legacy} legacy, {corrupt} corrupt"
    )
    _emit("\n".join(lines) + "\n", args.out)
    if corrupt:
        return 1
    return 1 if (args.strict and legacy and not args.upgrade) else 0


def _cmd_serve(args) -> int:
    import time

    from repro.obsv.serve import DashboardServer

    server = DashboardServer(
        args.dir, host=args.host, port=args.port, poll=args.poll
    )
    server.start()
    sys.stdout.write(
        f"serving {args.dir} at {server.url}  (Ctrl-C to stop)\n"
        f"  dashboard {server.url}\n"
        f"  API       {server.url}api/status\n"
        f"  SSE       {server.url}events\n"
    )
    sys.stdout.flush()
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_watch(args) -> int:
    config = WatchConfig.from_env(
        q_limit=args.q_limit,
        entropy_floor=args.entropy_floor,
        plateau_window=args.plateau_window,
        starvation_updates=args.starvation_updates,
        throughput_ratio=args.throughput_ratio,
    )
    return watch_trace(
        args.trace,
        config=config,
        poll=args.poll,
        once=args.once,
        exit_on_alert=args.exit_on_alert,
        total_steps=args.total_steps,
        write_alerts=not args.no_write_alerts,
        idle_exit=args.idle_exit,
        on_alert=args.on_alert,
        baseline_metrics=args.baseline_metrics,
        drift_min_n=args.drift_min_n,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obsv",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fore = sub.add_parser(
        "forensics", help="per-episode post-mortem from a JSONL trace"
    )
    fore.add_argument("trace", help="JSONL trace file")
    fore.add_argument("--episode", help="analyse only this episode id")
    fore.add_argument(
        "--strike-fraction", type=float, default=0.5,
        help="strike threshold as a fraction of the attack budget",
    )
    fore.add_argument("--json", action="store_true", help="emit JSON")
    fore.add_argument("--strict", action="store_true",
                      help="fail on schema-invalid events")
    fore.add_argument("--out", help="write to this file instead of stdout")
    fore.set_defaults(fn=_cmd_forensics)

    repl = sub.add_parser(
        "replay", help="re-simulate recorded episodes and diff the traces"
    )
    repl.add_argument("trace", help="JSONL trace file")
    repl.add_argument("--episode", help="replay only this episode id")
    repl.add_argument(
        "--tolerance", type=float, default=None,
        help="uniform absolute tolerance for every compared field",
    )
    repl.add_argument("--strict", action="store_true",
                      help="fail on schema-invalid events")
    repl.add_argument("--out", help="write to this file instead of stdout")
    repl.set_defaults(fn=_cmd_replay)

    dash = sub.add_parser(
        "dashboard", help="aggregate a run directory into one document"
    )
    dash.add_argument(
        "dir", help="directory holding *.jsonl traces, or a telemetry store"
    )
    dash.add_argument("--metrics", help="metrics snapshot JSON path")
    dash.add_argument("--bench", help="BENCH_telemetry.json path")
    dash.add_argument("--html", action="store_true",
                      help="emit a self-contained HTML page")
    dash.add_argument("--out", help="write to this file instead of stdout")
    dash.set_defaults(fn=_cmd_dashboard)

    comp = sub.add_parser(
        "compare",
        help="statistical A/B comparison of two recorded runs",
    )
    comp.add_argument(
        "a", help="run A: JSONL trace, run directory, or telemetry store"
    )
    comp.add_argument(
        "b", nargs="?", default=None,
        help="run B: JSONL trace, run directory, or telemetry store"
             " (omitted with --snapshot)",
    )
    comp.add_argument(
        "--run-a", default=None,
        help="logical run label inside store A (e.g. a sweep run id)",
    )
    comp.add_argument(
        "--run-b", default=None,
        help="logical run label inside store B",
    )
    comp.add_argument(
        "--stat-seed", type=int, default=0,
        help="seed of the bootstrap/permutation RNG (default 0; a fixed"
             " seed makes every CI and p-value bit-reproducible)",
    )
    comp.add_argument(
        "--resamples", type=int, default=2000,
        help="bootstrap/permutation resamples (default 2000)",
    )
    comp.add_argument(
        "--confidence", type=float, default=0.95,
        help="bootstrap CI level (default 0.95)",
    )
    comp.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level before Holm correction (default 0.05)",
    )
    comp.add_argument(
        "--paired", choices=("auto", "yes", "no"), default="auto",
        help="pair episodes by seed (auto = when both sides ran the"
             " same unique seeds)",
    )
    comp.add_argument("--json", action="store_true", help="emit JSON")
    comp.add_argument(
        "--html", action="store_true",
        help="emit a self-contained HTML report",
    )
    comp.add_argument(
        "--snapshot", action="store_true",
        help="emit a metric snapshot of run A alone (the document"
             " `regress --metrics` and `watch --baseline-metrics` read)"
             " instead of comparing",
    )
    comp.add_argument("--out", help="write to this file instead of stdout")
    comp.set_defaults(fn=_cmd_compare)

    regr = sub.add_parser(
        "regress", help="compare bench telemetry against a baseline"
    )
    regr.add_argument(
        "current",
        help="current BENCH_telemetry.json (or telemetry store); with"
             " --metrics: a metric snapshot JSON, trace, run directory,"
             " or store",
    )
    regr.add_argument(
        "baseline",
        help="baseline BENCH_telemetry.json (or telemetry store); with"
             " --metrics: a committed metric snapshot, e.g."
             " benchmarks/BASELINE_metrics.json",
    )
    regr.add_argument(
        "--max-ratio", type=float, default=None,
        help="wall-clock / span mean ratio treated as a breach",
    )
    regr.add_argument(
        "--metrics", action="store_true",
        help="gate scientific episode metrics against the baseline's"
             " bootstrap CIs instead of span timings",
    )
    regr.add_argument(
        "--min-n", type=int, default=5,
        help="--metrics: skip samples smaller than this (default 5)",
    )
    regr.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable breach report",
    )
    regr.set_defaults(fn=_cmd_regress)

    prof = sub.add_parser(
        "profile",
        help="self-time / FLOP / allocation report and flamegraph",
    )
    prof.add_argument(
        "input", nargs="?", default=None,
        help="PROFILE_report.json, BENCH_telemetry.json, or telemetry"
             " store to analyse offline",
    )
    prof.add_argument(
        "--demo", action="store_true",
        help="profile a short in-process episode workload instead of a"
             " snapshot",
    )
    prof.add_argument(
        "--episodes", type=int, default=3,
        help="episodes the --demo workload runs (default 3)",
    )
    prof.add_argument(
        "--hz", type=float, default=0.0,
        help="--demo sampling-profiler rate (0 = spans only; try 97)",
    )
    prof.add_argument(
        "--mem", default=None,
        help="--demo allocation tracking: span names, or 'all'",
    )
    prof.add_argument(
        "--top", type=int, default=15,
        help="rows per table in the markdown report (default 15)",
    )
    prof.add_argument(
        "--flamegraph", metavar="PATH",
        help="also write a self-contained HTML flamegraph to PATH",
    )
    prof.add_argument(
        "--report-dir", metavar="DIR",
        help="also write the full PROFILE_* bundle into DIR",
    )
    prof.add_argument("--json", action="store_true", help="emit JSON")
    prof.add_argument("--out", help="write to this file instead of stdout")
    prof.set_defaults(fn=_cmd_profile)

    ing = sub.add_parser(
        "ingest", help="load a run directory into a SQLite telemetry store"
    )
    ing.add_argument("dir", help="directory holding *.jsonl traces")
    ing.add_argument(
        "--store", help=f"store path (default <dir>/{DEFAULT_STORE_NAME})"
    )
    ing.add_argument(
        "--pattern", default="*.jsonl", help="trace filename glob"
    )
    ing.set_defaults(fn=_cmd_ingest)

    quer = sub.add_parser(
        "query", help="filter/aggregate events in a telemetry store"
    )
    quer.add_argument("store", help="telemetry store path")
    quer.add_argument("--kind", help="event kind (tick, update_health, ...)")
    quer.add_argument("--episode", help="episode id filter")
    quer.add_argument("--loop", help="training-loop label filter")
    quer.add_argument("--run", type=int, help="ingested run id filter")
    quer.add_argument(
        "--name", help="span/profile name filter (e.g. episode/world.tick)"
    )
    quer.add_argument(
        "--worker", type=int, default=None,
        help="worker id filter (events from shard trace.w<K>.jsonl)",
    )
    quer.add_argument(
        "--label", default=None,
        help="logical run label filter (the cross-process run id)",
    )
    quer.add_argument(
        "--field", help="numeric event field to extract/aggregate"
    )
    quer.add_argument(
        "--agg", choices=("count", "mean", "min", "max", "sum"),
        help="aggregate the field instead of listing values",
    )
    quer.add_argument(
        "--group-by",
        choices=GROUP_KEYS,
        help="group the aggregate by this key (provenance keys label /"
             " git_sha / config_hash join each event to its run row)",
    )
    quer.add_argument("--limit", type=int, help="cap returned rows")
    quer.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the CSV to PATH (needs --field)",
    )
    quer.set_defaults(fn=_cmd_query)

    ver = sub.add_parser(
        "verify-artifacts",
        help="audit .npz checkpoints for corruption (exit 1 on any)",
    )
    ver.add_argument(
        "dir", nargs="?", default="artifacts",
        help="directory to scan recursively (default artifacts/)",
    )
    ver.add_argument(
        "--strict", action="store_true",
        help="also fail on legacy (pre-checksum) checkpoints",
    )
    ver.add_argument(
        "--upgrade", action="store_true",
        help="re-save loadable legacy checkpoints with checksums",
    )
    ver.add_argument("--out", help="write the report to this file")
    ver.set_defaults(fn=_cmd_verify_artifacts)

    srv = sub.add_parser(
        "serve",
        help="HTTP dashboard + query API + SSE event stream (localhost)",
    )
    srv.add_argument(
        "dir",
        help="run directory of *.jsonl shards, or a telemetry store",
    )
    srv.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    srv.add_argument(
        "--port", type=int, default=0,
        help="port (default 0 = ephemeral, printed at startup)",
    )
    srv.add_argument(
        "--poll", type=float, default=0.5,
        help="seconds between shard polls for the SSE stream",
    )
    srv.set_defaults(fn=_cmd_serve)

    wat = sub.add_parser(
        "watch", help="live-monitor a growing training trace"
    )
    wat.add_argument(
        "trace",
        help="JSONL trace file being written, or a directory of"
             " per-worker shards (multiplexed into one view)",
    )
    wat.add_argument(
        "--poll", type=float, default=None,
        help="seconds between polls (default REPRO_WATCH_POLL or 2.0)",
    )
    wat.add_argument(
        "--once", action="store_true",
        help="single pass over the current contents, then exit",
    )
    wat.add_argument(
        "--exit-on-alert", action="store_true",
        help="exit nonzero as soon as any watchdog rule fires",
    )
    wat.add_argument(
        "--total-steps", type=int, default=None,
        help="planned env steps (enables the ETA readout)",
    )
    wat.add_argument(
        "--idle-exit", type=float, default=None,
        help="stop after this many seconds without new events",
    )
    wat.add_argument(
        "--no-write-alerts", action="store_true",
        help="do not append alert events to the trace file",
    )
    wat.add_argument(
        "--on-alert", metavar="CMD", default=None,
        help="shell command run per alert (checkpoint-on-alert hook);"
             " sees REPRO_ALERT_* env vars",
    )
    wat.add_argument(
        "--baseline-metrics", metavar="FILE", default=None,
        help="metric snapshot (obsv compare --snapshot) to annotate"
             " live per-cell drift against",
    )
    wat.add_argument(
        "--drift-min-n", type=int, default=DRIFT_MIN_N,
        help="live episodes per cell before drift is judged",
    )
    wat.add_argument("--q-limit", type=float, default=None,
                     help="q_divergence threshold on max |Q|")
    wat.add_argument("--entropy-floor", type=float, default=None,
                     help="entropy_collapse threshold")
    wat.add_argument("--plateau-window", type=int, default=None,
                     help="episodes without a new best before reward_plateau")
    wat.add_argument("--starvation-updates", type=int, default=None,
                     help="stalled health records before buffer_starvation")
    wat.add_argument("--throughput-ratio", type=float, default=None,
                     help="fraction of peak steps/s treated as regression")
    wat.set_defaults(fn=_cmd_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
