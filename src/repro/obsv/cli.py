"""``python -m repro.obsv`` — forensics / replay / dashboard / regress.

Subcommands:

* ``forensics <trace.jsonl>`` — per-episode post-mortem (markdown, or
  ``--json``); ``--episode ID`` picks one episode, default analyses all.
* ``replay <trace.jsonl>`` — re-simulate episodes from their seeds and
  diff against the recording; exits 1 on any out-of-tolerance field.
* ``dashboard <dir>`` — aggregate traces + metrics + bench telemetry into
  markdown (or ``--html``).
* ``regress <current.json> <baseline.json>`` — compare bench telemetry
  snapshots; exits 1 on threshold breaches.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obsv import forensics as forensics_mod
from repro.obsv import regress as regress_mod
from repro.obsv import replay as replay_mod
from repro.obsv.dashboard import build_dashboard, to_html
from repro.obsv.loader import load_episodes, select_episode
from repro.telemetry.log import get_logger

log = get_logger("obsv")


def _emit(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text, encoding="utf-8")
        log.info("obsv.wrote", path=out, bytes=len(text))
    else:
        sys.stdout.write(text)


def _episodes_for(args) -> list:
    episodes = load_episodes(args.trace, strict=args.strict)
    if args.episode is not None:
        return [select_episode(episodes, args.episode)]
    chosen = [e for e in episodes if e.complete]
    if not chosen:
        raise SystemExit(f"no complete episodes in {args.trace}")
    return chosen


def _cmd_forensics(args) -> int:
    episodes = _episodes_for(args)
    reports = [
        forensics_mod.analyze(e, strike_fraction=args.strike_fraction)
        for e in episodes
    ]
    if args.json:
        payload = [r.to_json() for r in reports]
        _emit(json.dumps(payload, indent=2) + "\n", args.out)
    else:
        chunks = [
            r.to_markdown(ticks=e.ticks)
            for r, e in zip(reports, episodes)
        ]
        _emit("\n".join(chunks), args.out)
    return 0


def _cmd_replay(args) -> int:
    episodes = _episodes_for(args)
    failures = 0
    chunks = []
    for episode in episodes:
        try:
            report = replay_mod.replay_episode(
                episode, tolerance=args.tolerance
            )
        except replay_mod.ReplayError as error:
            failures += 1
            chunks.append(
                f"# Replay — episode {episode.episode}\n\nERROR: {error}\n"
            )
            continue
        if not report.ok:
            failures += 1
        chunks.append(report.to_markdown())
    _emit("\n".join(chunks), args.out)
    return 1 if failures else 0


def _cmd_dashboard(args) -> int:
    markdown = build_dashboard(
        args.dir, metrics_path=args.metrics, bench_path=args.bench
    )
    _emit(to_html(markdown) if args.html else markdown, args.out)
    return 0


def _cmd_regress(args) -> int:
    thresholds = regress_mod.RegressionThresholds.from_env()
    if args.max_ratio is not None:
        thresholds = regress_mod.RegressionThresholds(
            wall_clock_ratio=args.max_ratio, span_mean_ratio=args.max_ratio
        )
    breaches = regress_mod.compare_files(
        args.current, args.baseline, thresholds
    )
    sys.stdout.write(regress_mod.report(breaches))
    return 1 if breaches else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obsv",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fore = sub.add_parser(
        "forensics", help="per-episode post-mortem from a JSONL trace"
    )
    fore.add_argument("trace", help="JSONL trace file")
    fore.add_argument("--episode", help="analyse only this episode id")
    fore.add_argument(
        "--strike-fraction", type=float, default=0.5,
        help="strike threshold as a fraction of the attack budget",
    )
    fore.add_argument("--json", action="store_true", help="emit JSON")
    fore.add_argument("--strict", action="store_true",
                      help="fail on schema-invalid events")
    fore.add_argument("--out", help="write to this file instead of stdout")
    fore.set_defaults(fn=_cmd_forensics)

    repl = sub.add_parser(
        "replay", help="re-simulate recorded episodes and diff the traces"
    )
    repl.add_argument("trace", help="JSONL trace file")
    repl.add_argument("--episode", help="replay only this episode id")
    repl.add_argument(
        "--tolerance", type=float, default=None,
        help="uniform absolute tolerance for every compared field",
    )
    repl.add_argument("--strict", action="store_true",
                      help="fail on schema-invalid events")
    repl.add_argument("--out", help="write to this file instead of stdout")
    repl.set_defaults(fn=_cmd_replay)

    dash = sub.add_parser(
        "dashboard", help="aggregate a run directory into one document"
    )
    dash.add_argument("dir", help="directory holding *.jsonl traces")
    dash.add_argument("--metrics", help="metrics snapshot JSON path")
    dash.add_argument("--bench", help="BENCH_telemetry.json path")
    dash.add_argument("--html", action="store_true",
                      help="emit a self-contained HTML page")
    dash.add_argument("--out", help="write to this file instead of stdout")
    dash.set_defaults(fn=_cmd_dashboard)

    regr = sub.add_parser(
        "regress", help="compare bench telemetry against a baseline"
    )
    regr.add_argument("current", help="current BENCH_telemetry.json")
    regr.add_argument("baseline", help="baseline BENCH_telemetry.json")
    regr.add_argument(
        "--max-ratio", type=float, default=None,
        help="wall-clock / span mean ratio treated as a breach",
    )
    regr.set_defaults(fn=_cmd_regress)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
