"""``repro.obsv serve`` — a live HTTP dashboard over the telemetry store.

Stdlib-only (``http.server``), bound to localhost on an ephemeral port by
default. One server fronts one run directory (or an already-ingested
store) and exposes:

* ``/``              — the HTML dashboard (same renderer as ``obsv
  dashboard --html``), re-ingesting the run directory on each request —
  ingest is mtime-checked and idempotent, so unchanged shards cost one
  ``stat`` each and the page is always current;
* ``/dashboard.md``  — the markdown variant;
* ``/flamegraph``    — self-contained HTML flamegraph built from the
  stored ``BENCH_telemetry.json`` / ``PROFILE_report.json`` span tree;
* ``/compare``       — run-picker + side-by-side statistical comparison
  (the ``obsv compare`` engine over two run labels or trace shards in
  this store), with ``/api/compare`` returning the same report as JSON;
* ``/api/status``, ``/api/runs``, ``/api/snapshots`` — JSON inventory;
* ``/api/events``, ``/api/series``, ``/api/aggregate`` — the
  :class:`~repro.obsv.store.TelemetryStore` query API over HTTP, with
  the same filters as ``obsv query`` (``kind``, ``episode``, ``loop``,
  ``run``, ``name``, ``worker``, ``limit``, ``field``, ``agg``,
  ``group_by``);
* ``/events``        — a Server-Sent-Events stream: every event newly
  appended to any trace shard in the run directory is pushed as a
  ``data:`` frame (worker-labelled), and watchdog firings
  (:class:`~repro.obsv.alerts.Watchdog`, the same rule-set as ``obsv
  watch``) arrive as ``event: alert`` frames — ``obsv watch`` in a
  browser, across all workers at once.

Every request handler opens its own short-lived store connection
(SQLite connections are thread-bound and ``ThreadingHTTPServer`` runs
one thread per request), and the shard follower holds none at all, so
the server never fights a concurrent ``obsv ingest`` for the write lock.
"""

from __future__ import annotations

import html as _html_mod
import json
import math
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.obsv.alerts import WatchConfig, Watchdog
from repro.obsv.compare import StatConfig, compare_runs, load_run
from repro.obsv.dashboard import (
    _HTML_TEMPLATE,
    build_dashboard_from_store,
    to_html,
)
from repro.obsv.store import DEFAULT_STORE_NAME, TelemetryStore, is_store_path
from repro.obsv.watch import TraceTail
from repro.telemetry.context import shard_worker
from repro.telemetry.log import get_logger

log = get_logger("obsv.serve")

#: Default seconds between shard-follower polls.
DEFAULT_POLL_S = 0.5

#: Query parameters accepted by every ``/api`` event endpoint.
_FILTER_PARAMS = ("kind", "episode", "loop", "name")


def json_safe(value):
    """``value`` with non-finite floats stringified ("NaN", "inf").

    Python's ``json`` emits bare ``NaN`` literals, which strict parsers
    (every browser's ``JSON.parse``) reject — and NaN losses are exactly
    what the alert stream exists to carry.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


class EventBus:
    """Fan-out of follower messages to any number of SSE subscribers."""

    def __init__(self, max_queue: int = 10_000) -> None:
        self._subscribers: list[queue.Queue] = []
        self._lock = threading.Lock()
        self._max_queue = max_queue

    def subscribe(self) -> queue.Queue:
        q: queue.Queue = queue.Queue(self._max_queue)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: queue.Queue) -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, message: dict) -> None:
        with self._lock:
            targets = list(self._subscribers)
        for q in targets:
            try:
                q.put_nowait(message)
            except queue.Full:
                pass  # a stalled client loses messages, not the server


class ShardFollower(threading.Thread):
    """Tails every ``*.jsonl`` in a run directory, multiplexed.

    New shard files appearing mid-run (a late worker) are picked up on
    the next poll. Events missing a ``worker`` stamp inherit the id from
    their shard filename. Each event is pushed to the bus and fed to the
    watchdog rule-set; firings are pushed as alert messages, with the
    loop label tagged ``@w<worker>`` so one diverging worker is
    distinguishable from the rest of the pool.
    """

    def __init__(
        self,
        directory: str | Path,
        bus: EventBus,
        poll: float = DEFAULT_POLL_S,
        config: WatchConfig | None = None,
        pattern: str = "*.jsonl",
    ) -> None:
        super().__init__(name="obsv-serve-follower", daemon=True)
        self.directory = Path(directory)
        self.pattern = pattern
        self.bus = bus
        self.poll = max(float(poll), 0.05)
        self.watchdog = Watchdog(config)
        self.alerts: list[dict] = []
        self.events_seen = 0
        self._tails: dict[Path, TraceTail] = {}
        # NB: not named _stop — threading.Thread.join() calls a private
        # Thread._stop() internally and an Event attribute would shadow it.
        self._halt = threading.Event()
        # Shards already on disk stream only what is appended after this
        # point; the SSE feed is "what is happening", the store holds the
        # backlog. Shards appearing later stream from their first byte.
        for path in sorted(self.directory.glob(pattern)) if (
            self.directory.is_dir()
        ) else []:
            tail = self._tails[path] = TraceTail(path)
            tail.skip_to_end()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self.poll):
            try:
                self.poll_once()
            except OSError as error:  # directory vanished mid-poll, etc.
                log.warning("serve.follower_error", error=str(error))

    def poll_once(self) -> int:
        """One multiplexed pass over all shards; returns events pushed."""
        if not self.directory.is_dir():
            return 0
        pushed = 0
        for path in sorted(self.directory.glob(self.pattern)):
            tail = self._tails.get(path)
            if tail is None:
                tail = self._tails[path] = TraceTail(path)
            worker = shard_worker(path)
            for event in tail.poll():
                if worker is not None and "worker" not in event:
                    event["worker"] = worker
                self.events_seen += 1
                pushed += 1
                self.bus.publish({"type": "event", "data": event})
                for alert in self._observe(event):
                    self.alerts.append(alert)
                    self.bus.publish({"type": "alert", "data": alert})
        return pushed

    def _observe(self, event: dict) -> list[dict]:
        worker = event.get("worker")
        if worker is not None and event.get("loop") is not None:
            # Per-worker loop key: rules trip (and alerts are labelled)
            # per worker, not across the merged pool.
            event = {**event, "loop": f"{event['loop']}@w{worker}"}
        fired = self.watchdog.observe(event)
        out = []
        for alert in fired:
            record = alert.to_event()
            if worker is not None:
                record["worker"] = int(worker)
            out.append(record)
        return out


class DashboardServer:
    """The ``obsv serve`` HTTP server: dashboard + query API + SSE.

    ``root`` is a run directory (store created/refreshed in place as
    ``<dir>/obsv.sqlite``) or an existing store file (the run directory
    is recovered from the store's ``source_dir`` metadata when present,
    enabling the live endpoints).
    """

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        poll: float = DEFAULT_POLL_S,
        watch_config: WatchConfig | None = None,
    ) -> None:
        root = Path(root)
        if root.is_file() and is_store_path(root):
            self.store_path = root
            with self._store() as store:
                source = store.get_meta("source_dir")
            self.trace_dir = Path(source) if source else None
        else:
            self.trace_dir = root
            self.store_path = root / DEFAULT_STORE_NAME
        self.host = host
        self._port = port
        self.poll = max(float(poll), 0.05)
        self.bus = EventBus()
        self.follower: ShardFollower | None = None
        if self.trace_dir is not None:
            self.follower = ShardFollower(
                self.trace_dir, self.bus, poll=self.poll,
                config=watch_config,
            )
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "DashboardServer":
        self.refresh_store()
        app = self

        class Handler(_Handler):
            pass

        Handler.app = app
        self._httpd = ThreadingHTTPServer(
            (self.host, self._port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="obsv-serve-http",
            daemon=True,
        )
        self._thread.start()
        if self.follower is not None:
            self.follower.start()
        log.info("serve.started", url=self.url, store=str(self.store_path))
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self.follower is not None:
            self.follower.stop()
        # Unblock SSE loops waiting on their queues.
        self.bus.publish({"type": "shutdown"})
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.follower is not None:
            self.follower.join(timeout=5.0)
            self.follower = None
        log.info("serve.stopped")

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    # -- store access -------------------------------------------------------------

    def _store(self) -> TelemetryStore:
        return TelemetryStore(self.store_path)

    def refresh_store(self) -> None:
        """Idempotent re-ingest of the run directory (if one is known)."""
        if self.trace_dir is None or not self.trace_dir.is_dir():
            return
        with self._store() as store:
            store.ingest_dir(self.trace_dir)


class _Handler(BaseHTTPRequestHandler):
    """One request, one thread, one short-lived store connection."""

    app: DashboardServer  # installed by DashboardServer.start
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:
        log.debug("serve.request", detail=fmt % args)

    # -- response helpers ---------------------------------------------------------

    def _send(
        self, body: str, content_type: str, status: int = 200
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, payload: object, status: int = 200) -> None:
        self._send(
            json.dumps(json_safe(payload), indent=2, default=str) + "\n",
            "application/json",
            status,
        )

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status)

    # -- routing ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        params = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        try:
            if route == "/":
                self._page_dashboard(html=True)
            elif route == "/dashboard.md":
                self._page_dashboard(html=False)
            elif route == "/flamegraph":
                self._page_flamegraph()
            elif route == "/compare":
                self._page_compare(params)
            elif route == "/api/compare":
                self._api_compare(params)
            elif route == "/api/status":
                self._api_status()
            elif route == "/api/runs":
                self._api_runs()
            elif route == "/api/snapshots":
                self._api_snapshots()
            elif route == "/api/events":
                self._api_events(params)
            elif route == "/api/series":
                self._api_series(params)
            elif route == "/api/aggregate":
                self._api_aggregate(params)
            elif route == "/events":
                self._sse(params)
            else:
                self._error(404, f"no route {route!r}")
        except ValueError as error:
            self._error(400, str(error))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to answer
        except Exception as error:  # pragma: no cover - defensive
            log.error("serve.handler_error", route=route, error=str(error))
            try:
                self._error(500, str(error))
            except OSError:
                pass

    # -- pages --------------------------------------------------------------------

    def _page_dashboard(self, html: bool) -> None:
        self.app.refresh_store()
        markdown = build_dashboard_from_store(self.app.store_path)
        if html:
            self._send(to_html(markdown), "text/html; charset=utf-8")
        else:
            self._send(markdown, "text/markdown; charset=utf-8")

    def _page_flamegraph(self) -> None:
        from repro.obsv.prof.flamegraph import render_html, spans_to_folded

        with self.app._store() as store:
            snapshot = store.snapshot("BENCH_telemetry.json") or (
                store.snapshot("PROFILE_report.json")
            )
        spans = (snapshot or {}).get("spans") or {}
        if not spans:
            self._error(
                404,
                "no BENCH_telemetry.json / PROFILE_report.json span"
                " snapshot ingested",
            )
            return
        self._send(
            render_html(
                spans_to_folded(spans),
                title="repro span flamegraph",
                meta=f"served from {self.app.store_path.name}",
            ),
            "text/html; charset=utf-8",
        )

    # -- comparison ---------------------------------------------------------------

    def _compare_choices(self) -> tuple[list[str], list[str]]:
        """(run labels, trace shard basenames) selectable for comparison."""
        with self.app._store() as store:
            rows = store.run_provenance()
        labels = sorted({row["label"] for row in rows if row["label"]})
        sources = sorted({Path(row["source"]).name for row in rows})
        return labels, sources

    def _load_side(self, value: str):
        """Resolve one ``a``/``b`` parameter to (episodes, provenance, name).

        A known run label queries the store; anything else must name a
        trace shard inside the served run directory — arbitrary paths
        are rejected so the HTTP surface cannot read outside the run.
        """
        labels, _ = self._compare_choices()
        if value in labels:
            return load_run(self.app.store_path, label=value)
        trace_dir = self.app.trace_dir
        if trace_dir is not None:
            candidate = (trace_dir / value).resolve()
            if (
                candidate.parent == trace_dir.resolve()
                and candidate.is_file()
            ):
                return load_run(candidate)
        return [], None, value

    def _run_comparison(self, a: str, b: str, params: dict):
        """Build the RunComparison, or raise ValueError on bad params."""
        paired_mode = params.get("paired", "auto")
        if paired_mode not in ("auto", "yes", "no"):
            raise ValueError("paired must be auto|yes|no")
        stat = StatConfig(
            stat_seed=int(params.get("stat_seed", 0)),
            resamples=int(params.get("resamples", 2000)),
            confidence=float(params.get("confidence", 0.95)),
            alpha=float(params.get("alpha", 0.05)),
        )
        episodes_a, prov_a, name_a = self._load_side(a)
        episodes_b, prov_b, name_b = self._load_side(b)
        missing = [
            name for name, episodes in
            ((name_a, episodes_a), (name_b, episodes_b))
            if not episodes
        ]
        if missing:
            return None, missing
        return compare_runs(
            episodes_a,
            episodes_b,
            stat=stat,
            label_a=name_a,
            label_b=name_b,
            paired={"auto": None, "yes": True, "no": False}[paired_mode],
            provenance_a=prov_a,
            provenance_b=prov_b,
        ), []

    def _compare_picker(self) -> str:
        """The ``/compare`` landing page: pick two runs from the store."""
        labels, sources = self._compare_choices()
        options = "".join(
            f'<option value="{_html_mod.escape(choice, quote=True)}">'
            f"{_html_mod.escape(choice)}</option>"
            for choice in labels + [s for s in sources if s not in labels]
        )
        if not options:
            body = (
                "<h1>Compare runs</h1>"
                "<p>No trace runs ingested yet — nothing to compare.</p>"
            )
        else:
            body = (
                "<h1>Compare runs</h1>"
                '<form method="get" action="/compare">'
                f'<p>A <select name="a">{options}</select> '
                f'vs B <select name="b">{options}</select></p>'
                '<p>stat seed <input name="stat_seed" value="0" size="6"> '
                'resamples <input name="resamples" value="2000" size="6"> '
                'paired <select name="paired">'
                "<option>auto</option><option>yes</option>"
                "<option>no</option></select> "
                '<button type="submit">Compare</button></p>'
                "</form>"
                f"<p>{len(labels)} run label(s), {len(sources)} trace"
                " shard(s) available.</p>"
            )
        return _HTML_TEMPLATE.format(body=body)

    def _page_compare(self, params: dict) -> None:
        self.app.refresh_store()
        a, b = params.get("a"), params.get("b")
        if not a or not b:
            self._send(self._compare_picker(), "text/html; charset=utf-8")
            return
        comparison, missing = self._run_comparison(a, b, params)
        if comparison is None:
            self._error(
                404,
                "no complete episodes for: " + ", ".join(missing),
            )
            return
        self._send(
            to_html(comparison.to_markdown()), "text/html; charset=utf-8"
        )

    def _api_compare(self, params: dict) -> None:
        a, b = params.get("a"), params.get("b")
        if not a or not b:
            labels, sources = self._compare_choices()
            self._send_json({"labels": labels, "sources": sources})
            return
        self.app.refresh_store()
        comparison, missing = self._run_comparison(a, b, params)
        if comparison is None:
            self._error(
                404,
                "no complete episodes for: " + ", ".join(missing),
            )
            return
        self._send_json(comparison.to_json())

    # -- JSON API -----------------------------------------------------------------

    def _filters(self, params: dict) -> dict:
        filters = {
            key: params[key] for key in _FILTER_PARAMS if key in params
        }
        if "run" in params:
            filters["run"] = int(params["run"])
        if "worker" in params:
            filters["worker"] = int(params["worker"])
        return filters

    def _api_status(self) -> None:
        with self.app._store() as store:
            runs = store.runs()
            total = sum(info.events for info in runs)
        follower = self.app.follower
        self._send_json(
            {
                "store": str(self.app.store_path),
                "trace_dir": (
                    str(self.app.trace_dir) if self.app.trace_dir else None
                ),
                "runs": len(runs),
                "events": total,
                "live": follower is not None,
                "streamed_events": (
                    follower.events_seen if follower else 0
                ),
                "clients": self.app.bus.clients,
                "alerts": list(follower.alerts) if follower else [],
            }
        )

    def _api_runs(self) -> None:
        with self.app._store() as store:
            runs = store.runs()
        self._send_json(
            [
                {
                    "run_id": info.run_id,
                    "source": info.source,
                    "kind": info.kind,
                    "events": info.events,
                    "worker": shard_worker(info.source),
                }
                for info in runs
            ]
        )

    def _api_snapshots(self) -> None:
        with self.app._store() as store:
            self._send_json(store.snapshots())

    def _api_events(self, params: dict) -> None:
        limit = int(params.get("limit", 100))
        with self.app._store() as store:
            events = store.events(limit=limit, **self._filters(params))
        self._send_json(events)

    def _api_series(self, params: dict) -> None:
        field = params.get("field")
        if not field:
            raise ValueError("series needs ?field=")
        with self.app._store() as store:
            values = store.series(field, **self._filters(params))
        self._send_json({"field": field, "values": values})

    def _api_aggregate(self, params: dict) -> None:
        field = params.get("field")
        if not field:
            raise ValueError("aggregate needs ?field=")
        agg = params.get("agg", "mean")
        group_by = params.get("group_by")
        with self.app._store() as store:
            rows = store.aggregate(
                field, agg=agg, group_by=group_by, **self._filters(params)
            )
        self._send_json(
            {"field": field, "agg": agg, "group_by": group_by,
             "rows": [list(row) for row in rows]}
        )

    # -- SSE ----------------------------------------------------------------------

    def _sse(self, params: dict) -> None:
        if self.app.follower is None:
            self._error(
                404, "no run directory to stream (store-only server)"
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        q = self.app.bus.subscribe()
        try:
            self.wfile.write(b"retry: 2000\n\n")
            self.wfile.write(
                b"event: hello\ndata: "
                + json.dumps(
                    {"store": str(self.app.store_path)}
                ).encode("utf-8")
                + b"\n\n"
            )
            self.wfile.flush()
            while not self.app._stopping.is_set():
                try:
                    message = q.get(timeout=1.0)
                except queue.Empty:
                    self.wfile.write(b": ping\n\n")
                    self.wfile.flush()
                    continue
                if message.get("type") == "shutdown":
                    break
                payload = json.dumps(
                    json_safe(message.get("data", {})),
                    separators=(",", ":"),
                ).encode("utf-8")
                if message.get("type") == "alert":
                    self.wfile.write(
                        b"event: alert\ndata: " + payload + b"\n\n"
                    )
                else:
                    self.wfile.write(b"data: " + payload + b"\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client disconnected; the subscription is dropped below
        finally:
            self.app.bus.unsubscribe(q)


def serve(
    root: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    poll: float = DEFAULT_POLL_S,
    watch_config: WatchConfig | None = None,
) -> DashboardServer:
    """Build and start a :class:`DashboardServer` (caller stops it)."""
    return DashboardServer(
        root, host=host, port=port, poll=poll, watch_config=watch_config
    ).start()
