"""Load JSONL traces and group their events into episodes.

A trace file may interleave events from many episodes (``run_episodes``
stamps consecutive seeds as episode ids) plus non-episode events
(``train_step``, ``span``); :func:`split_episodes` keeps only the episode
vocabulary and buckets it by episode id, preserving tick order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.telemetry.trace import read_trace, validate_event


@dataclass
class EpisodeTrace:
    """All events of one recorded episode, in emission order."""

    episode: int | str
    start: dict | None = None
    ticks: list[dict] = field(default_factory=list)
    end: dict | None = None

    @property
    def seed(self) -> int | None:
        return None if self.start is None else self.start.get("seed")

    @property
    def victim(self) -> str:
        return "" if self.start is None else str(self.start.get("victim", ""))

    @property
    def attacker(self) -> str:
        return "" if self.start is None else str(self.start.get("attacker", ""))

    @property
    def budget(self) -> float | None:
        if self.start is None or "budget" not in self.start:
            return None
        return float(self.start["budget"])

    @property
    def scenario(self) -> str:
        # Traces predating the scenario field are assumed replayable.
        if self.start is None:
            return "unknown"
        return str(self.start.get("scenario", "default"))

    @property
    def collision(self) -> str | None:
        return None if self.end is None else self.end.get("collision")

    @property
    def complete(self) -> bool:
        """Start and end present with at least one tick in between."""
        return (
            self.start is not None and self.end is not None and bool(self.ticks)
        )

    def deltas(self) -> list[float]:
        """Per-tick injected |delta| magnitudes."""
        return [abs(float(t["delta"])) for t in self.ticks]

    def series(self, fld: str) -> list[float]:
        """One tick field over time, skipping ticks where it is absent."""
        return [float(t[fld]) for t in self.ticks if fld in t]


def split_episodes(events: Iterable[dict]) -> list[EpisodeTrace]:
    """Group decoded trace events into per-episode buckets.

    Episodes are returned in order of first appearance. Events that carry
    no episode id (``train_step``, ``span``) are dropped. Episode ids may
    repeat within one file (e.g. several ``run_episodes`` sweeps sharing a
    seed): a fresh ``episode_start`` for an id that already has one opens a
    new bucket rather than merging two distinct episodes.
    """
    episodes: list[EpisodeTrace] = []
    open_buckets: dict[object, EpisodeTrace] = {}
    for event in events:
        kind = event.get("event")
        if kind not in ("episode_start", "tick", "episode_end"):
            continue
        key = event.get("episode")
        bucket = open_buckets.get(key)
        if bucket is None or (kind == "episode_start" and bucket.start is not None):
            bucket = open_buckets[key] = EpisodeTrace(episode=key)
            episodes.append(bucket)
        if kind == "episode_start":
            bucket.start = event
        elif kind == "tick":
            bucket.ticks.append(event)
        else:
            bucket.end = event
    return episodes


def load_episodes(
    path: str | Path, strict: bool = False
) -> list[EpisodeTrace]:
    """Read a JSONL trace file into :class:`EpisodeTrace` buckets.

    ``strict=True`` raises on the first schema-invalid event; by default
    invalid events are skipped so a partially corrupt trace still loads.
    """
    events = []
    for index, event in enumerate(read_trace(path)):
        errors = validate_event(event)
        if errors:
            if strict:
                raise ValueError(f"event {index}: " + "; ".join(errors))
            continue
        events.append(event)
    return split_episodes(events)


def select_episode(
    episodes: list[EpisodeTrace], episode_id: str | None = None
) -> EpisodeTrace:
    """Pick one episode by id (string-compared), or the first complete one."""
    if episode_id is not None:
        for episode in episodes:
            if str(episode.episode) == str(episode_id):
                return episode
        raise KeyError(f"episode {episode_id!r} not found in trace")
    for episode in episodes:
        if episode.complete:
            return episode
    if episodes:
        return episodes[0]
    raise ValueError("trace contains no episode events")
