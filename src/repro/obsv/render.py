"""Small text-rendering helpers shared by forensics and the dashboard."""

from __future__ import annotations

import math

#: Eight-level block ramp used for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """Render a numeric series as a fixed-width block-character sparkline.

    The series is resampled to ``width`` buckets (max-pooled so short
    spikes stay visible) and scaled to the observed min/max. Non-finite
    values render as spaces.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        pooled = []
        for bucket in range(width):
            lo = bucket * len(values) // width
            hi = max((bucket + 1) * len(values) // width, lo + 1)
            chunk = [v for v in values[lo:hi] if math.isfinite(v)]
            pooled.append(max(chunk) if chunk else float("nan"))
        values = pooled
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for v in values:
        if not math.isfinite(v):
            chars.append(" ")
        elif span <= 0.0:
            chars.append(_BLOCKS[0])
        else:
            level = int((v - low) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[level])
    return "".join(chars)


def markdown_table(columns: list[str], rows: list[list[object]]) -> list[str]:
    """A GitHub-flavoured markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "---|" * len(columns),
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def fmt(value, digits: int = 3) -> str:
    """Compact numeric formatting tolerant of None/NaN."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "nan"
        return f"{value:.{digits}f}"
    return str(value)
