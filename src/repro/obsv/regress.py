"""Regression watch over ``BENCH_telemetry.json`` snapshots.

``benchmarks/conftest.py`` writes one machine-readable perf snapshot per
bench session; committing one as a baseline makes the perf history
*enforceable*: :func:`compare_snapshots` flags wall-clock blow-ups,
per-span mean- and **self**-latency regressions (schema-2 snapshots carry
``self_mean_us`` from the tracer's child bookkeeping — a span that got
slower *itself* is flagged even when a fast child makes its inclusive
mean look fine), per-span allocation growth (when both snapshots carry a
``profile.memory`` section from ``REPRO_PROF_MEM``), and correctness
drift (collision counters appearing where the baseline had none). The
CLI (``python -m repro.obsv regress current baseline``) exits nonzero on
any breach; ``--json`` emits the machine-readable breach report for CI.

Thresholds are ratios, not absolutes — bench machines differ — and spans
with very few calls are skipped as noise. The default ratio can be set
via ``REPRO_OBSV_MAX_RATIO``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path


def _env_ratio(default: float = 1.5) -> float:
    raw = os.environ.get("REPRO_OBSV_MAX_RATIO")
    return float(raw) if raw else default


@dataclass(frozen=True)
class RegressionThresholds:
    """What counts as a breach when comparing two bench snapshots."""

    #: Current/baseline session wall-clock ratio above which we fail.
    wall_clock_ratio: float = 1.5
    #: Current/baseline per-span mean-latency ratio above which we fail.
    span_mean_ratio: float = 1.5
    #: Current/baseline per-span *self*-latency ratio (schema-2 snapshots
    #: only; skipped when either side lacks ``self_mean_us``).
    span_self_ratio: float = 1.5
    #: Spans with fewer calls than this (in either snapshot) are noise.
    span_min_calls: int = 20
    #: Per-span allocation growth (``profile.memory`` sections, present
    #: when the snapshot was taken under ``REPRO_PROF_MEM``): fail when
    #: net KB/call or peak KB grew by more than this factor.
    alloc_ratio: float = 2.0
    #: Allocation figures below this (KB) are noise, never a breach.
    alloc_min_kb: float = 64.0
    #: Fail when a counter matching one of these prefixes grew by more
    #: than this factor (guards e.g. collision-rate drift, not just perf).
    counter_prefixes: tuple[str, ...] = ("collisions_total",)
    counter_ratio: float = 2.0

    @classmethod
    def from_env(cls) -> "RegressionThresholds":
        ratio = _env_ratio()
        return cls(
            wall_clock_ratio=ratio,
            span_mean_ratio=ratio,
            span_self_ratio=ratio,
        )


@dataclass(frozen=True)
class Breach:
    """One threshold violation."""

    kind: str  # "wall_clock" | "span" | "span_self" | "alloc" | "counter"
    name: str
    baseline: float
    current: float
    limit: float
    #: The compared metric ("wall_clock_s", "mean_us", "self_mean_us",
    #: "net_mean_kb", "peak_max_kb", counter name, ...).
    metric: str = ""

    @property
    def ratio(self) -> float:
        return (
            self.current / self.baseline if self.baseline else float("inf")
        )

    def __str__(self) -> str:
        metric = f" [{self.metric}]" if self.metric else ""
        return (
            f"{self.kind} {self.name}{metric}:"
            f" {self.baseline:g} -> {self.current:g}"
            f" (x{self.ratio:.2f}, limit x{self.limit:g})"
        )

    def to_json(self) -> dict:
        """One machine-readable breach row (the ``--json`` report)."""
        ratio = self.ratio
        return {
            "kind": self.kind,
            "span": self.name,
            "metric": self.metric or self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": round(ratio, 4) if ratio != float("inf") else None,
            "threshold": self.limit,
        }


def compare_snapshots(
    current: dict,
    baseline: dict,
    thresholds: RegressionThresholds | None = None,
) -> list[Breach]:
    """All threshold breaches of ``current`` against ``baseline``."""
    thresholds = thresholds or RegressionThresholds.from_env()
    breaches: list[Breach] = []

    base_wall = float(baseline.get("wall_clock_s", 0.0))
    cur_wall = float(current.get("wall_clock_s", 0.0))
    if base_wall > 0.0 and cur_wall > base_wall * thresholds.wall_clock_ratio:
        breaches.append(
            Breach(
                "wall_clock", "wall_clock_s", base_wall, cur_wall,
                thresholds.wall_clock_ratio, metric="wall_clock_s",
            )
        )

    base_spans = baseline.get("spans", {})
    for name, cur_stats in current.get("spans", {}).items():
        base_stats = base_spans.get(name)
        if base_stats is None:
            continue
        if (
            int(cur_stats.get("count", 0)) < thresholds.span_min_calls
            or int(base_stats.get("count", 0)) < thresholds.span_min_calls
        ):
            continue
        base_mean = float(base_stats.get("mean_us", 0.0))
        cur_mean = float(cur_stats.get("mean_us", 0.0))
        if base_mean > 0.0 and cur_mean > base_mean * thresholds.span_mean_ratio:
            breaches.append(
                Breach(
                    "span", name, base_mean, cur_mean,
                    thresholds.span_mean_ratio, metric="mean_us",
                )
            )
        # Self-time budget (schema 2): a span slowed down in its *own*
        # frame even if cheaper children keep the inclusive mean flat.
        if "self_mean_us" in base_stats and "self_mean_us" in cur_stats:
            base_self = float(base_stats["self_mean_us"])
            cur_self = float(cur_stats["self_mean_us"])
            if (
                base_self > 0.0
                and cur_self > base_self * thresholds.span_self_ratio
            ):
                breaches.append(
                    Breach(
                        "span_self", name, base_self, cur_self,
                        thresholds.span_self_ratio, metric="self_mean_us",
                    )
                )

    base_memory = baseline.get("profile", {}).get("memory", {})
    for name, cur_mem in current.get("profile", {}).get("memory", {}).items():
        base_mem = base_memory.get(name)
        if base_mem is None:
            continue
        for metric in ("net_mean_kb", "peak_max_kb"):
            base_value = float(base_mem.get(metric, 0.0))
            cur_value = float(cur_mem.get(metric, 0.0))
            if (
                base_value >= thresholds.alloc_min_kb
                and cur_value > base_value * thresholds.alloc_ratio
            ):
                breaches.append(
                    Breach(
                        "alloc", name, base_value, cur_value,
                        thresholds.alloc_ratio, metric=metric,
                    )
                )

    base_counters = baseline.get("metrics", {}).get("counters", {})
    for name, value in current.get("metrics", {}).get("counters", {}).items():
        if not any(name.startswith(p) for p in thresholds.counter_prefixes):
            continue
        base_value = float(base_counters.get(name, 0.0))
        value = float(value)
        if base_value == 0.0:
            # A watched counter appearing from nothing is always a breach.
            if value > 0.0:
                breaches.append(
                    Breach(
                        "counter", name, base_value, value,
                        thresholds.counter_ratio, metric=name,
                    )
                )
        elif value > base_value * thresholds.counter_ratio:
            breaches.append(
                Breach(
                    "counter", name, base_value, value,
                    thresholds.counter_ratio, metric=name,
                )
            )
    return breaches


def compare_files(
    current_path: str | Path,
    baseline_path: str | Path,
    thresholds: RegressionThresholds | None = None,
) -> list[Breach]:
    """:func:`compare_snapshots` over two JSON files."""
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    return compare_snapshots(current, baseline, thresholds)


def report(breaches: list[Breach]) -> str:
    """Human-readable verdict for the CLI."""
    if not breaches:
        return "regress: OK — no threshold breaches\n"
    lines = [f"regress: {len(breaches)} breach(es)"]
    lines.extend(f"  BREACH {b}" for b in breaches)
    return "\n".join(lines) + "\n"


def report_json(breaches: list[Breach]) -> str:
    """Machine-readable verdict (``regress --json``): always a JSON
    object with ``ok`` and the ``breaches`` array, one row per breach."""
    payload = {
        "ok": not breaches,
        "breach_count": len(breaches),
        "breaches": [b.to_json() for b in breaches],
    }
    return json.dumps(payload, indent=2) + "\n"
