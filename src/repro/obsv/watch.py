"""``repro.obsv watch`` — live monitor for a growing training trace.

Tails a JSONL trace with plain polling (no filesystem-notification
dependencies), keeps incremental per-loop statistics, renders a
refreshing terminal view (throughput, ETA, reward/loss/entropy
sparklines via :mod:`repro.obsv.render`), and pipes every event through
the :class:`~repro.obsv.alerts.Watchdog`. When a rule fires, the alert
is (by default) appended to the trace itself as a structured ``alert``
event — so the run's own artifact records the diagnosis and later
ingestion into the telemetry store picks it up — and two optional hooks
run:

* ``exit_on_alert`` — stop watching and exit nonzero, which lets CI and
  budget-capped training jobs fail fast instead of burning the full run;
* ``on_alert`` — a shell command (e.g. a checkpoint-on-alert script that
  snapshots the learner state or signals the trainer) executed with
  ``REPRO_ALERT_RULE`` / ``REPRO_ALERT_SEVERITY`` / ``REPRO_ALERT_MESSAGE``
  / ``REPRO_ALERT_TRACE`` in its environment.

``once=True`` performs a single pass over the current file contents and
returns — that is the mode tests and post-hoc "did anything trip?"
checks use on completed traces.

``path`` may also be a **directory** of per-worker trace shards (what a
sharded run writes — ``trace.w0.jsonl``, ``trace.w1.jsonl``, ...): every
``*.jsonl`` file is tailed and multiplexed into one view, shards that
appear mid-run are picked up on the next poll, events missing a
``worker`` stamp inherit the id from their shard filename, loops are
displayed (and watchdog'd) per worker as ``<loop>@w<k>``, and fired
alerts are appended to ``<dir>/alerts.jsonl`` instead of any one shard.

With ``baseline_metrics`` (a metric snapshot from ``obsv compare
--snapshot`` / ``benchmarks/BASELINE_metrics.json``), the view also
annotates **scientific drift**: per (victim, attacker, budget) cell,
episode-end metrics (collision rate, attack success, steps, returns)
accumulate live, and any cell mean that leaves the baseline's bootstrap
CI is flagged — the live twin of ``obsv regress --metrics``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obsv.alerts import Alert, WatchConfig, Watchdog
from repro.obsv.render import fmt, sparkline
from repro.telemetry.context import shard_worker
from repro.telemetry.log import get_logger
from repro.telemetry.trace import TraceWriter

log = get_logger("obsv.watch")

#: Default seconds between polls (``REPRO_WATCH_POLL`` overrides).
DEFAULT_POLL_S = 2.0


def poll_interval(configured: float | None = None) -> float:
    """Effective poll interval: explicit value, else env, else default."""
    if configured is not None:
        return max(float(configured), 0.05)
    raw = os.environ.get("REPRO_WATCH_POLL", "").strip()
    try:
        return max(float(raw), 0.05) if raw else DEFAULT_POLL_S
    except ValueError:
        return DEFAULT_POLL_S


class TraceTail:
    """Incremental JSONL reader that survives partially written lines."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = ""

    def skip_to_end(self) -> None:
        """Fast-forward past the current contents: poll only the future.

        Used by followers that stream "what is happening now" (``obsv
        serve``'s SSE feed) rather than replaying the backlog.
        """
        if self.path.exists():
            self._offset = self.path.stat().st_size
            self._partial = ""

    def poll(self) -> list[dict]:
        """Decoded events appended since the previous poll."""
        if not self.path.exists():
            return []
        size = self.path.stat().st_size
        if size < self._offset:
            # Truncated/rotated underneath us: start over.
            self._offset = 0
            self._partial = ""
        if size == self._offset:
            return []
        with self.path.open("r", encoding="utf-8") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        text = self._partial + chunk
        lines = text.split("\n")
        self._partial = lines.pop()  # "" on a clean trailing newline
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                log.warning("watch.bad_line", bytes=len(line))
        return events


class MultiTail:
    """Tails every ``*.jsonl`` in a directory, multiplexed into one feed.

    Rescans the directory on each poll, so shards created after the
    watch started (a late worker joining the pool) are picked up live.
    Events missing a ``worker`` stamp inherit the id parsed from their
    shard filename (``trace.w3.jsonl`` → ``worker=3``).
    """

    def __init__(self, directory: str | Path, pattern: str = "*.jsonl") -> None:
        self.directory = Path(directory)
        self.pattern = pattern
        self._tails: dict[Path, TraceTail] = {}

    def poll(self) -> list[dict]:
        """New events across all shards, shard-ordered within the batch."""
        if not self.directory.is_dir():
            return []
        events: list[dict] = []
        for path in sorted(self.directory.glob(self.pattern)):
            tail = self._tails.get(path)
            if tail is None:
                tail = self._tails[path] = TraceTail(path)
            worker = shard_worker(path)
            for event in tail.poll():
                if worker is not None and "worker" not in event:
                    event["worker"] = worker
                events.append(event)
        return events


def _worker_labelled(event: dict) -> dict:
    """Copy of ``event`` with the loop keyed per worker (``loop@w<k>``).

    Makes the multiplexed view keep one row — and the watchdog one
    rule-state — per (loop, worker) pair, so a single diverging worker
    is visible against the rest of the pool. Events without a worker
    stamp (or without a loop) pass through unchanged.
    """
    worker = event.get("worker")
    if worker is None or event.get("loop") is None:
        return event
    return {**event, "loop": f"{event['loop']}@w{worker}"}


@dataclass
class _LoopView:
    """Display accumulators for one training loop."""

    step: int = 0
    episodes: int = 0
    rewards: deque = field(default_factory=lambda: deque(maxlen=600))
    episode_returns: list = field(default_factory=list)
    running_return: float = 0.0
    health: dict = field(default_factory=dict)
    critic_loss: deque = field(default_factory=lambda: deque(maxlen=120))
    actor_loss: deque = field(default_factory=lambda: deque(maxlen=120))
    entropy: deque = field(default_factory=lambda: deque(maxlen=120))
    steps_per_s: deque = field(default_factory=lambda: deque(maxlen=120))


@dataclass
class WatchState:
    """Everything the renderer needs, updated per event."""

    events: int = 0
    episodes_seen: int = 0
    ticks_seen: int = 0
    loops: dict = field(default_factory=dict)
    alerts: dict = field(default_factory=dict)  # (rule, loop) -> Alert
    workers: set = field(default_factory=set)  # worker ids seen
    #: Live episode-end metric samples per (victim|attacker|budget) cell
    #: — the inputs to the baseline-drift annotations.
    cells: dict = field(default_factory=dict)
    _episode_cell: dict = field(default_factory=dict)

    def loop(self, name: str) -> _LoopView:
        view = self.loops.get(name)
        if view is None:
            view = self.loops[name] = _LoopView()
        return view

    def ingest(self, event: dict) -> None:
        self.events += 1
        if event.get("worker") is not None:
            self.workers.add(int(event["worker"]))
        kind = event.get("event")
        if kind == "train_step":
            view = self.loop(str(event.get("loop", "")))
            view.step = max(view.step, int(event.get("step", 0)))
            reward = event.get("reward")
            if isinstance(reward, (int, float)):
                view.rewards.append(float(reward))
                view.running_return += float(reward)
            if event.get("done"):
                view.episodes += 1
                view.episode_returns.append(view.running_return)
                view.running_return = 0.0
        elif kind == "update_health":
            view = self.loop(str(event.get("loop", "")))
            view.step = max(view.step, int(event.get("step", 0)))
            view.health = event
            for name in ("critic_loss", "actor_loss", "entropy",
                         "steps_per_s"):
                value = event.get(name)
                if isinstance(value, (int, float)):
                    getattr(view, name).append(float(value))
        elif kind == "episode_start":
            self.episodes_seen += 1
            if event.get("victim") is not None:
                budget = float(event.get("budget") or 0.0)
                self._episode_cell[event.get("episode")] = (
                    f"{event.get('victim')}|{event.get('attacker')}"
                    f"|{budget:.2f}"
                )
        elif kind == "episode_end":
            key = self._episode_cell.pop(event.get("episode"), None)
            if key is not None:
                samples = self.cells.setdefault(key, {})
                collision = event.get("collision")
                samples.setdefault("collision", []).append(
                    float(collision is not None)
                )
                samples.setdefault("attack_success", []).append(
                    float(collision == "SIDE")
                )
                for name in (
                    "steps", "nominal_return", "adversarial_return"
                ):
                    value = event.get(name)
                    if isinstance(value, (int, float)):
                        samples.setdefault(name, []).append(float(value))
        elif kind == "tick":
            self.ticks_seen += 1
        elif kind == "alert":
            key = (str(event.get("rule")), str(event.get("loop", "")))
            if key not in self.alerts:
                self.alerts[key] = Alert(
                    rule=key[0],
                    severity=str(event.get("severity", "warning")),
                    message=str(event.get("message", "")),
                    loop=key[1],
                    step=event.get("step"),
                    value=event.get("value"),
                    threshold=event.get("threshold"),
                )

    def add_alert(self, alert: Alert) -> None:
        self.alerts.setdefault((alert.rule, alert.loop), alert)


#: Minimum live episodes per cell before drift is judged (small samples
#: leave any CI constantly and would make the annotation pure noise).
DRIFT_MIN_N = 5


def load_baseline_metrics(path: str | Path) -> dict | None:
    """A metric snapshot document for drift annotations (None on failure).

    Degrades instead of raising: a missing / non-JSON / wrong-kind file
    logs a warning and the watch simply runs without drift annotations.
    """
    from repro.obsv.compare import is_metric_snapshot

    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        log.warning(
            "watch.baseline_unreadable", path=str(path), error=str(error)
        )
        return None
    if not is_metric_snapshot(document):
        log.warning("watch.baseline_not_metrics", path=str(path))
        return None
    return document


def metric_drift(
    state: WatchState, baseline: dict, min_n: int = DRIFT_MIN_N
) -> list[tuple[str, str, float, int, float, float]]:
    """Cells whose live metric mean left the baseline's bootstrap CI.

    Returns ``(cell, metric, live_mean, n, ci_lo, ci_hi)`` rows, sorted;
    cells/metrics absent from the baseline — or with fewer than
    ``min_n`` live episodes — are skipped, not flagged.
    """
    rows = []
    cells = (baseline or {}).get("cells") or {}
    for key, samples in sorted(state.cells.items()):
        base_cell = cells.get(key)
        if not isinstance(base_cell, dict):
            continue
        base_metrics = base_cell.get("metrics") or {}
        for metric, values in sorted(samples.items()):
            base = base_metrics.get(metric)
            if not isinstance(base, dict) or len(values) < min_n:
                continue
            ci = base.get("ci") or []
            if len(ci) != 2:
                continue
            mean = sum(values) / len(values)
            lo, hi = float(ci[0]), float(ci[1])
            if mean < lo - 1e-9 or mean > hi + 1e-9:
                rows.append((key, metric, mean, len(values), lo, hi))
    return rows


def _eta_s(view: _LoopView, total_steps: int | None) -> float | None:
    if not total_steps or view.step >= total_steps:
        return None
    rate = view.steps_per_s[-1] if view.steps_per_s else None
    if not rate or rate <= 0.0:
        return None
    return (total_steps - view.step) / rate


def render_status(
    state: WatchState,
    path: str | Path,
    total_steps: int | None = None,
    width: int = 48,
    baseline: dict | None = None,
    drift_min_n: int = DRIFT_MIN_N,
) -> str:
    """The full refreshing terminal view as one multi-line string."""
    header = f"repro.obsv watch — {path} ({state.events} events)"
    if state.workers:
        header += (
            f"  workers {','.join(str(w) for w in sorted(state.workers))}"
        )
    lines = [header]
    for name, view in sorted(state.loops.items()):
        health = view.health
        parts = [f"loop {name or '?'}: step {view.step}"]
        if health:
            parts.append(f"update {health.get('update', '?')}")
            size = health.get("buffer_size")
            cap = health.get("buffer_capacity")
            if size is not None:
                parts.append(f"buffer {size}/{cap if cap else '?'}")
            rate = view.steps_per_s[-1] if view.steps_per_s else None
            if rate is not None:
                parts.append(f"{fmt(rate, 1)} steps/s")
        eta = _eta_s(view, total_steps)
        if eta is not None:
            parts.append(f"ETA {fmt(eta, 0)}s of {total_steps}")
        lines.append("  ".join(parts))
        if view.rewards:
            lines.append(
                f"  reward    {sparkline(view.rewards, width)}"
                f"  last {fmt(view.rewards[-1], 3)}"
            )
        if view.episode_returns:
            returns = view.episode_returns
            lines.append(
                f"  ep return {sparkline(returns, width)}"
                f"  n={len(returns)} best {fmt(max(returns), 2)}"
                f" last {fmt(returns[-1], 2)}"
            )
        if view.critic_loss:
            lines.append(
                f"  critic    {sparkline(view.critic_loss, width)}"
                f"  last {fmt(view.critic_loss[-1], 4)}"
            )
        if view.actor_loss:
            lines.append(
                f"  actor     {sparkline(view.actor_loss, width)}"
                f"  last {fmt(view.actor_loss[-1], 4)}"
            )
        if health:
            lines.append(
                "  alpha "
                + fmt(health.get("alpha"), 4)
                + "  entropy "
                + fmt(health.get("entropy"), 3)
                + "  q_mean "
                + fmt(health.get("q_mean"), 3)
                + "  q_max "
                + fmt(health.get("q_max"), 3)
                + "  grad a/c "
                + fmt(health.get("actor_grad_norm"), 3)
                + "/"
                + fmt(health.get("critic_grad_norm"), 3)
            )
    if state.episodes_seen:
        lines.append(
            f"episodes {state.episodes_seen}  ticks {state.ticks_seen}"
        )
    if state.alerts:
        lines.append("alerts:")
        for alert in state.alerts.values():
            lines.append(
                f"  [{alert.severity.upper()}] {alert.rule}"
                f" ({alert.loop or '-'}): {alert.message}"
            )
    else:
        lines.append("alerts: none")
    if baseline is not None:
        drifted = metric_drift(state, baseline, min_n=drift_min_n)
        if drifted:
            lines.append("metric drift vs baseline:")
            for key, metric, mean, n, lo, hi in drifted:
                lines.append(
                    f"  [DRIFT] {key} {metric}: live {fmt(mean, 3)}"
                    f" (n={n}) outside CI"
                    f" [{fmt(lo, 3)}, {fmt(hi, 3)}]"
                )
        else:
            lines.append("metric drift vs baseline: none")
    return "\n".join(lines) + "\n"


def _run_alert_hook(command: str, alert: Alert, trace_path: Path) -> None:
    env = {
        **os.environ,
        "REPRO_ALERT_RULE": alert.rule,
        "REPRO_ALERT_SEVERITY": alert.severity,
        "REPRO_ALERT_MESSAGE": alert.message,
        "REPRO_ALERT_LOOP": alert.loop,
        "REPRO_ALERT_TRACE": str(trace_path),
    }
    try:
        subprocess.run(command, shell=True, env=env, timeout=120)
    except (OSError, subprocess.SubprocessError) as exc:
        log.error("watch.alert_hook_failed", command=command, error=str(exc))


def watch_trace(
    path: str | Path,
    config: WatchConfig | None = None,
    poll: float | None = None,
    once: bool = False,
    exit_on_alert: bool = False,
    total_steps: int | None = None,
    write_alerts: bool = True,
    idle_exit: float | None = None,
    on_alert: str | None = None,
    baseline_metrics: str | Path | dict | None = None,
    drift_min_n: int = DRIFT_MIN_N,
    out=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Tail ``path``, render the live view, and evaluate the watchdogs.

    ``path`` may be one JSONL trace or a directory of per-worker shards
    (multiplexed; see module docstring). Returns 0, or 1 when
    ``exit_on_alert`` is set and any rule fired. ``idle_exit`` stops the
    follow loop after that many seconds without new events (None =
    follow until interrupted). ``baseline_metrics`` (a snapshot path or
    already-decoded document) switches on live drift annotations.
    """
    path = Path(path)
    out = out if out is not None else sys.stdout
    interval = poll_interval(poll)
    baseline: dict | None
    if isinstance(baseline_metrics, dict):
        baseline = baseline_metrics
    elif baseline_metrics is not None:
        baseline = load_baseline_metrics(baseline_metrics)
    else:
        baseline = None
    if path.is_dir():
        tail: TraceTail | MultiTail = MultiTail(path)
        alert_sink = path / "alerts.jsonl"
    else:
        tail = TraceTail(path)
        alert_sink = path
    watchdog = Watchdog(config)
    state = WatchState()
    writer: TraceWriter | None = None
    is_tty = getattr(out, "isatty", lambda: False)()
    last_event_time = clock()

    try:
        while True:
            events = tail.poll()
            fired: list[Alert] = []
            # Recorded alerts (a previous watch session) sit *after* the
            # events that tripped them; arm the dedup before replaying
            # the batch so re-watching never duplicates an alert.
            events = [_worker_labelled(event) for event in events]
            for event in events:
                if event.get("event") == "alert":
                    watchdog.observe(event)
            for event in events:
                state.ingest(event)
                fired.extend(watchdog.observe(event))
            if events:
                last_event_time = clock()
            for alert in fired:
                state.add_alert(alert)
                log.warning(
                    "watch.alert", rule=alert.rule, severity=alert.severity,
                    loop=alert.loop, message=alert.message,
                )
                if write_alerts:
                    if writer is None:
                        writer = TraceWriter(alert_sink)
                    record = alert.to_event()
                    tagged = re.search(r"@w(\d+)$", alert.loop or "")
                    if tagged:
                        record["worker"] = int(tagged.group(1))
                    writer.emit("alert", **record)
                    writer.flush()
                if on_alert:
                    _run_alert_hook(on_alert, alert, alert_sink)
            if is_tty and not once:
                out.write("\x1b[2J\x1b[H")  # clear + home between refreshes
            out.write(
                render_status(
                    state, path, total_steps,
                    baseline=baseline, drift_min_n=drift_min_n,
                )
            )
            out.flush()
            if once:
                break
            if exit_on_alert and state.alerts:
                break
            if (
                idle_exit is not None
                and clock() - last_event_time >= idle_exit
            ):
                log.info("watch.idle_exit", idle_s=idle_exit)
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        if writer is not None:
            writer.close()
    return 1 if (exit_on_alert and state.alerts) else 0
