"""Watchdog rules over live training telemetry.

A :class:`Watchdog` consumes trace events incrementally (as the ``watch``
monitor tails a growing file) and fires :class:`Alert` objects when a
training run shows one of the classic RL failure signatures:

========================  ======================================  =========
rule                      trips when                              severity
========================  ======================================  =========
``nan_loss``              any loss/alpha/Q stat goes NaN or inf   critical
``q_divergence``          max |Q| exceeds ``q_limit``             critical
``entropy_collapse``      policy entropy below ``entropy_floor``  warning
                          for ``entropy_patience`` consecutive
                          health records
``reward_plateau``        no new best episode return for          warning
                          ``plateau_window`` episodes
``buffer_starvation``     replay buffer stops growing (while      warning
                          not full) across ``starvation_updates``
                          consecutive health records
``throughput_regression`` env steps/sec below ``throughput_ratio``  warning
                          x the run's peak for
                          ``throughput_patience`` records
========================  ======================================  =========

The loss/Q/entropy/buffer/throughput rules read the ``update_health``
records the SAC loops emit (:mod:`repro.rl.health`); the plateau rule
reconstructs episode returns from plain ``train_step`` events. Every rule
fires at most once per (rule, loop) pair, and ``alert`` events already in
the trace (a previous watch session) pre-arm the dedup, so re-watching a
file never duplicates alerts.

All thresholds live in :class:`WatchConfig`; ``WatchConfig.from_env()``
reads the ``REPRO_WATCH_*`` environment knobs documented in the README.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

#: Severity levels, mild to fatal.
SEVERITIES = ("warning", "critical")

_ENV_FLOATS = {
    "q_limit": "REPRO_WATCH_Q_LIMIT",
    "entropy_floor": "REPRO_WATCH_ENTROPY_FLOOR",
    "throughput_ratio": "REPRO_WATCH_THROUGHPUT_RATIO",
}
_ENV_INTS = {
    "plateau_window": "REPRO_WATCH_PLATEAU_WINDOW",
    "starvation_updates": "REPRO_WATCH_STARVATION_UPDATES",
}


@dataclass(frozen=True)
class WatchConfig:
    """Thresholds for the watchdog rule-set."""

    #: ``q_divergence`` fires when max |Q| exceeds this.
    q_limit: float = 1e3
    #: ``entropy_collapse`` fires below this policy entropy...
    entropy_floor: float = -8.0
    #: ...sustained for this many consecutive health records.
    entropy_patience: int = 3
    #: ``reward_plateau`` fires after this many episodes with no new best
    #: return (needs at least ``plateau_window + 1`` finished episodes).
    plateau_window: int = 30
    #: ``buffer_starvation`` fires when the replay buffer is not full yet
    #: stays the same size across this many consecutive health records.
    starvation_updates: int = 50
    #: ``throughput_regression`` fires when steps/sec drops below this
    #: fraction of the run's peak...
    throughput_ratio: float = 0.5
    #: ...for this many consecutive health records (after the first
    #: ``throughput_warmup`` records establish a peak).
    throughput_patience: int = 3
    throughput_warmup: int = 5

    @classmethod
    def from_env(cls, **overrides) -> "WatchConfig":
        """Defaults, overridden by ``REPRO_WATCH_*`` env vars, then kwargs."""
        values: dict = {}
        for fld, env in _ENV_FLOATS.items():
            raw = os.environ.get(env, "").strip()
            if raw:
                try:
                    values[fld] = float(raw)
                except ValueError:
                    pass
        for fld, env in _ENV_INTS.items():
            raw = os.environ.get(env, "").strip()
            if raw:
                try:
                    values[fld] = int(raw)
                except ValueError:
                    pass
        values.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return replace(cls(), **values)


@dataclass(frozen=True)
class Alert:
    """One watchdog firing; converts 1:1 into an ``alert`` trace event."""

    rule: str
    severity: str
    message: str
    loop: str = ""
    step: int | None = None
    update: int | None = None
    value: float | None = None
    threshold: float | None = None

    def to_event(self) -> dict:
        """Fields for ``TraceWriter.emit("alert", **fields)``."""
        fields: dict = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.loop:
            fields["loop"] = self.loop
        if self.step is not None:
            fields["step"] = int(self.step)
        if self.update is not None:
            fields["update"] = int(self.update)
        if self.value is not None:
            fields["value"] = float(self.value)
        if self.threshold is not None:
            fields["threshold"] = float(self.threshold)
        return fields


@dataclass
class _LoopState:
    """Per-loop accumulators the rules read."""

    entropy_low_streak: int = 0
    last_buffer_size: int | None = None
    buffer_stall: int = 0
    throughput_peak: float = 0.0
    throughput_records: int = 0
    throughput_low_streak: int = 0
    episode_returns: list = field(default_factory=list)
    best_return: float = -math.inf
    episodes_since_best: int = 0
    running_return: float = 0.0


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class Watchdog:
    """Streaming evaluation of the rule-set over trace events."""

    #: ``update_health`` fields scanned by the ``nan_loss`` rule.
    NAN_FIELDS = ("critic_loss", "actor_loss", "alpha", "q_mean", "q_max")

    def __init__(self, config: WatchConfig | None = None) -> None:
        self.config = config or WatchConfig.from_env()
        self._loops: dict[str, _LoopState] = {}
        self._fired: set[tuple[str, str]] = set()
        self.alerts: list[Alert] = []

    def _state(self, loop: str) -> _LoopState:
        state = self._loops.get(loop)
        if state is None:
            state = self._loops[loop] = _LoopState()
        return state

    def _fire(self, alert: Alert) -> Alert | None:
        key = (alert.rule, alert.loop)
        if key in self._fired:
            return None
        self._fired.add(key)
        self.alerts.append(alert)
        return alert

    def observe(self, event: dict) -> list[Alert]:
        """Feed one decoded trace event; returns any newly fired alerts."""
        kind = event.get("event")
        if kind == "alert":
            # A previous watch session already recorded this; arm dedup.
            self._fired.add((str(event.get("rule")), str(event.get("loop", ""))))
            return []
        if kind == "update_health":
            return self._observe_health(event)
        if kind == "train_step":
            return self._observe_train_step(event)
        return []

    # -- update_health rules --------------------------------------------------------

    def _observe_health(self, event: dict) -> list[Alert]:
        cfg = self.config
        loop = str(event.get("loop", ""))
        state = self._state(loop)
        step = event.get("step")
        update = event.get("update")
        fired: list[Alert] = []

        def fire(rule, severity, message, value=None, threshold=None):
            alert = self._fire(
                Alert(
                    rule=rule, severity=severity, message=message, loop=loop,
                    step=step, update=update, value=value, threshold=threshold,
                )
            )
            if alert is not None:
                fired.append(alert)

        for name in self.NAN_FIELDS:
            value = event.get(name)
            if value is not None and not _finite(value):
                fire(
                    "nan_loss", "critical",
                    f"{name} is non-finite ({value})", value=float(value),
                )
                break

        q_max = event.get("q_max")
        if _finite(q_max) and q_max > cfg.q_limit:
            fire(
                "q_divergence", "critical",
                f"max |Q| {q_max:.3g} exceeds limit {cfg.q_limit:g}",
                value=float(q_max), threshold=cfg.q_limit,
            )

        entropy = event.get("entropy")
        if _finite(entropy):
            if entropy < cfg.entropy_floor:
                state.entropy_low_streak += 1
                if state.entropy_low_streak >= cfg.entropy_patience:
                    fire(
                        "entropy_collapse", "warning",
                        f"policy entropy {entropy:.3g} below floor "
                        f"{cfg.entropy_floor:g} for "
                        f"{state.entropy_low_streak} consecutive records",
                        value=float(entropy), threshold=cfg.entropy_floor,
                    )
            else:
                state.entropy_low_streak = 0

        buffer_size = event.get("buffer_size")
        buffer_capacity = event.get("buffer_capacity")
        if isinstance(buffer_size, int):
            full = (
                isinstance(buffer_capacity, int)
                and buffer_size >= buffer_capacity
            )
            if state.last_buffer_size == buffer_size and not full:
                state.buffer_stall += 1
                if state.buffer_stall >= cfg.starvation_updates:
                    fire(
                        "buffer_starvation", "warning",
                        f"replay buffer stuck at {buffer_size} transitions "
                        f"across {state.buffer_stall} update-health records",
                        value=float(buffer_size),
                    )
            else:
                state.buffer_stall = 0
            state.last_buffer_size = buffer_size

        steps_per_s = event.get("steps_per_s")
        if _finite(steps_per_s) and steps_per_s > 0.0:
            state.throughput_records += 1
            if state.throughput_records <= self.config.throughput_warmup:
                state.throughput_peak = max(
                    state.throughput_peak, steps_per_s
                )
            else:
                floor = state.throughput_peak * cfg.throughput_ratio
                if steps_per_s < floor:
                    state.throughput_low_streak += 1
                    if state.throughput_low_streak >= cfg.throughput_patience:
                        fire(
                            "throughput_regression", "warning",
                            f"{steps_per_s:.3g} steps/s is below "
                            f"{cfg.throughput_ratio:g}x the run peak "
                            f"({state.throughput_peak:.3g} steps/s)",
                            value=float(steps_per_s), threshold=floor,
                        )
                else:
                    state.throughput_low_streak = 0
                    state.throughput_peak = max(
                        state.throughput_peak, steps_per_s
                    )
        return fired

    # -- train_step rules -----------------------------------------------------------

    def _observe_train_step(self, event: dict) -> list[Alert]:
        cfg = self.config
        loop = str(event.get("loop", ""))
        state = self._state(loop)
        reward = event.get("reward")
        if _finite(reward):
            state.running_return += float(reward)
        if not event.get("done"):
            return []
        episode_return = state.running_return
        state.running_return = 0.0
        state.episode_returns.append(episode_return)
        if episode_return > state.best_return:
            state.best_return = episode_return
            state.episodes_since_best = 0
            return []
        state.episodes_since_best += 1
        if state.episodes_since_best < cfg.plateau_window:
            return []
        alert = self._fire(
            Alert(
                rule="reward_plateau", severity="warning",
                message=(
                    f"no new best episode return for "
                    f"{state.episodes_since_best} episodes "
                    f"(best {state.best_return:.3g} over "
                    f"{len(state.episode_returns)} episodes)"
                ),
                loop=loop, step=event.get("step"),
                value=float(episode_return), threshold=state.best_return,
            )
        )
        return [alert] if alert is not None else []
