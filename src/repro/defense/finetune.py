"""Adversarial training via fine-tuning (Section VI-A).

Produces the enhanced agents ``pi_adv,rho``: the end-to-end driver
re-trained in the presence of the camera attacker, with episode budgets
randomized over the 0..1 grid and the nominal-episode ratio ``rho``
controlling overfit to adversarial cases (the paper evaluates
``rho = 1/11`` and ``rho = 1/2``).

Two mechanisms are provided:

* :func:`adversarial_finetune` — imitation-style fine-tuning (DAgger): the
  privileged modular expert demonstrates recovery while the attacker is
  live; the policy is fine-tuned on the mixed nominal/adversarial dataset.
  Deterministic and CPU-cheap; used for the shipped checkpoints.
* :func:`adversarial_finetune_sac` — the paper's literal recipe: SAC
  continues on the shaped driving reward with the attacker injected into
  the environment. Exercised in tests; needs a larger step budget to beat
  the imitation variant on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.e2e.agent import EndToEndAgent
from repro.agents.e2e.observation import DrivingObservation
from repro.agents.e2e.training import DriverTrainConfig, refine_driver_sac
from repro.agents.modular.agent import ModularAgent
from repro.core.attackers import LearnedAttacker
from repro.defense.budget import BUDGET_GRID, BudgetRandomizedAttacker
from repro.rl.bc import BcConfig, BehaviorCloner
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.telemetry.log import get_logger

log = get_logger("defense.finetune")


@dataclass
class FinetuneConfig:
    """Adversarial fine-tuning budget and hyper-parameters."""

    #: Ratio of nominal (zero-budget) episodes, the paper's rho.
    rho: float = 1.0 / 11.0
    #: Episodes collected per round.
    episodes: int = 44
    #: DAgger rounds after the initial expert-driven round: the partially
    #: fine-tuned student drives (under attack) while the expert labels.
    #: Disabled by default: student-driven trajectories diverge from the
    #: expert's own plan, which makes the labels mutually inconsistent.
    dagger_rounds: int = 0
    #: Builds the labelling expert from a road; defaults to the plain
    #: modular pipeline. ``repro.defense.rescue.RescueExpert`` is the
    #: brake-on-hijack ablation variant.
    expert_factory: object = None
    bc: BcConfig = field(
        default_factory=lambda: BcConfig(epochs=15, lr=3e-4)
    )
    budget_grid: tuple[float, ...] = BUDGET_GRID
    seed: int = 0


def collect_adversarial_dataset(
    attacker: BudgetRandomizedAttacker,
    n_episodes: int,
    rng: np.random.Generator,
    scenario: ScenarioConfig | None = None,
    student: EndToEndAgent | None = None,
    expert_factory=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expert recovery demonstrations under randomized-budget attacks.

    The rescue-augmented expert labels every state with its
    counter-steer / brake command. When ``student`` is ``None`` the expert
    also drives (plain behaviour cloning); otherwise the *student* drives
    while the expert labels (a DAgger round), which covers the off-path
    states the student actually reaches once the attack pushes it around.
    """
    scenario = scenario or ScenarioConfig()
    if expert_factory is None:
        expert_factory = ModularAgent
    encoder = DrivingObservation(reference_speed=scenario.ego_speed)
    observations: list[np.ndarray] = []
    actions: list[np.ndarray] = []
    for _ in range(n_episodes):
        world = make_world(scenario, rng=rng)
        expert = expert_factory(world.road)
        expert.reset(world)
        if student is not None:
            student.reset(world)
        encoder.reset()
        attacker.reset(world)
        while not world.done:
            obs = encoder.observe(world)
            label = expert.act(world)
            observations.append(obs)
            actions.append(np.array([label.steer, label.thrust]))
            executed = label if student is None else student.act(world)
            delta = attacker.delta(world, executed)
            world.tick(executed, steer_delta=delta)
    return np.asarray(observations), np.asarray(actions)


def adversarial_finetune(
    base: EndToEndAgent,
    attacker: LearnedAttacker,
    config: FinetuneConfig | None = None,
    progress: bool = False,
) -> EndToEndAgent:
    """Fine-tune a copy of ``base`` against ``attacker``; returns pi_adv,rho."""
    config = config or FinetuneConfig()
    rng = np.random.default_rng(config.seed)

    randomized = BudgetRandomizedAttacker(
        attacker, rho=config.rho, rng=rng, grid=config.budget_grid
    )
    policy = SquashedGaussianPolicy(
        base.policy.obs_dim, base.policy.action_dim, base.policy.hidden
    )
    policy.load_state_dict(base.policy.state_dict())
    agent = EndToEndAgent(policy, observation=DrivingObservation())
    cloner = BehaviorCloner(policy, config.bc, rng=rng)

    observations, actions = collect_adversarial_dataset(
        randomized, config.episodes, rng, expert_factory=config.expert_factory
    )
    losses = cloner.fit(observations, actions)
    for round_index in range(config.dagger_rounds):
        new_obs, new_actions = collect_adversarial_dataset(
            randomized, config.episodes, rng, student=agent,
            expert_factory=config.expert_factory,
        )
        observations = np.concatenate([observations, new_obs])
        actions = np.concatenate([actions, new_actions])
        losses = cloner.fit(observations, actions)
        (log.info if progress else log.debug)(
            "finetune.dagger_round", rho=config.rho,
            round=round_index + 1, dataset=len(observations),
        )
    (log.info if progress else log.debug)(
        "finetune.fit", rho=config.rho, dataset=len(observations),
        loss=float(losses[-1]),
    )
    agent.name = f"adv-finetuned(rho={config.rho:.2f})"
    return agent


def adversarial_finetune_sac(
    base: EndToEndAgent,
    attacker: LearnedAttacker,
    config: FinetuneConfig | None = None,
    sac_config: DriverTrainConfig | None = None,
    progress: bool = False,
    scenario: ScenarioConfig | None = None,
) -> EndToEndAgent:
    """The paper's literal method: SAC fine-tuning with attacks injected."""
    config = config or FinetuneConfig()
    sac_config = sac_config or DriverTrainConfig(sac_steps=6_000)
    rng = np.random.default_rng(config.seed)
    randomized = BudgetRandomizedAttacker(
        attacker, rho=config.rho, rng=rng, grid=config.budget_grid
    )
    policy = SquashedGaussianPolicy(
        base.policy.obs_dim, base.policy.action_dim, base.policy.hidden
    )
    policy.load_state_dict(base.policy.state_dict())
    refined, _metrics = refine_driver_sac(
        policy, sac_config, rng, injector=randomized, progress=progress,
        loop_label="sac-finetune", scenario=scenario,
    )
    agent = EndToEndAgent(refined, observation=DrivingObservation())
    agent.name = f"adv-finetuned-sac(rho={config.rho:.2f})"
    return agent
