"""Rescue-augmented expert for defense-label generation.

The plain modular expert's reaction to an action-space attack is PID
counter-steering — exactly the response the oracle-derived attacker was
built to beat. The rescue expert adds the paper's own observation that
"the AD agent can avoid a collision by slowing down or braking"
(Section IV-A): when the vehicle's deviation from its reference path
exceeds a threshold (a control-anomaly signature no nominal maneuver
produces), it brakes hard while keeping the PID counter-steer. Defended
policies cloned from these labels learn to shed speed the moment they are
hijacked, which both opens the collision geometry and denies the attacker
the side-collision posture it is rewarded for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import DrivingAgent
from repro.agents.modular.agent import ModularAgent, ModularAgentConfig
from repro.sim.road import Road
from repro.sim.vehicle import Control
from repro.sim.world import World


@dataclass(frozen=True)
class RescueConfig:
    """When and how hard the rescue reflex engages."""

    #: Deviation from the reference path that triggers the reflex, meters.
    deviation_threshold: float = 0.6
    #: Thrust command while the reflex is active (-1 = full brake).
    brake_command: float = -1.0
    #: Gain multiplying the PID steer command while the reflex is active.
    counter_steer_gain: float = 1.5


class RescueExpert(DrivingAgent):
    """Modular expert with an attack-rescue reflex layered on top."""

    name = "rescue-expert"

    def __init__(
        self,
        road: Road,
        config: RescueConfig | None = None,
        agent_config: ModularAgentConfig | None = None,
    ) -> None:
        self.inner = ModularAgent(road, agent_config)
        self.config = config or RescueConfig()

    def reset(self, world: World) -> None:
        self.inner.reset(world)

    def deviation(self, world: World) -> float:
        """Current absolute deviation from the reference path, meters."""
        plan = self.inner.current_plan
        if plan is None:
            return 0.0
        ego_s, ego_d, _ = world.road.to_frenet(world.ego.state.position)
        return abs(ego_d - plan.reference_offset(ego_s))

    def act(self, world: World) -> Control:
        control = self.inner.act(world)
        if self.deviation(world) > self.config.deviation_threshold:
            boosted = control.steer * self.config.counter_steer_gain
            return Control(
                steer=boosted, thrust=self.config.brake_command
            ).clipped()
        return control
