"""Driving-agent enhancement: adversarial fine-tuning and PNN + switcher."""

from repro.defense.budget import BUDGET_GRID, BudgetRandomizedAttacker
from repro.defense.detector import (
    DetectorConfig,
    DetectorSwitchedAgent,
    ResidualAttackDetector,
)
from repro.defense.finetune import (
    FinetuneConfig,
    adversarial_finetune,
    adversarial_finetune_sac,
    collect_adversarial_dataset,
)
from repro.defense.rescue import RescueConfig, RescueExpert
from repro.defense.pnn_defense import (
    PnnTrainConfig,
    SimplexSwitchedAgent,
    train_pnn_column,
)

__all__ = [
    "BUDGET_GRID",
    "BudgetRandomizedAttacker",
    "DetectorConfig",
    "DetectorSwitchedAgent",
    "ResidualAttackDetector",
    "FinetuneConfig",
    "PnnTrainConfig",
    "SimplexSwitchedAgent",
    "RescueConfig",
    "RescueExpert",
    "adversarial_finetune",
    "adversarial_finetune_sac",
    "collect_adversarial_dataset",
    "train_pnn_column",
]
