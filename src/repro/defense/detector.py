"""Residual-based action-space attack detection.

The paper's Simplex switcher makes an *idealized* assumption: it knows the
attack budget (Section VI-B notes that in practice "the magnitude of a
detected perturbation" could serve as a proxy). This module implements
that proxy, removing the idealization.

Physics: the applied steering actuation follows Eq. (1),

    a_t = (1 - alpha) * nu'_t + alpha * a_{t-1},

where ``nu'_t = clip(nu_t + delta_t)`` is the perturbed variation. The
driving agent knows its own command ``nu_t`` and can read back the applied
actuation ``a_t`` (wheel-angle encoders are standard). Inverting Eq. (1)
recovers ``nu'_t`` and therefore the injected perturbation

    delta_t = (a_t - alpha * a_{t-1}) / (1 - alpha) - nu_t

exactly (up to the mechanical clamp). The detector tracks a decaying peak
of ``|delta_t|`` as its budget estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.base import DrivingAgent
from repro.agents.e2e.agent import EndToEndAgent
from repro.defense.pnn_defense import SimplexSwitchedAgent
from repro.rl.pnn import ProgressivePolicy
from repro.sim.vehicle import Control
from repro.sim.world import World
from repro.telemetry.metrics import get_registry


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning of the residual detector."""

    #: Residual magnitudes below this are attributed to numerics/noise.
    noise_floor: float = 0.02
    #: Per-step decay of the peak estimate (1.0 = never forget).
    decay: float = 0.995
    #: Consecutive above-floor residuals required before reporting.
    min_consecutive: int = 2


class ResidualAttackDetector:
    """Estimates the attack budget from steering-actuation residuals.

    Telemetry: every *trip* — the streak of above-floor residuals first
    reaching ``min_consecutive`` — increments the
    ``detector_trips_total{context=...}`` counter; a trip in a
    ``context="nominal"`` episode additionally counts as
    ``detector_false_trips_total`` (there is no attack to detect). The
    ``detector_latency_ticks`` gauge records the detection latency of the
    latest trip: update() calls from the first above-floor residual of the
    bout to the trip (the residual itself already lags the injection by
    one control tick).
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        context: str = "unlabeled",
    ) -> None:
        #: Evaluation context stamped on trip counters — set to
        #: ``"nominal"`` when evaluating attack-free episodes so trips
        #: there are countable as false positives.
        self.context = context
        self.config = config or DetectorConfig()
        self._last_command: float | None = None
        self._last_actuation: float | None = None
        self._estimate = 0.0
        self._streak = 0
        self._ticks = 0
        self._bout_start: int | None = None
        self._tripped = False

    def reset(self) -> None:
        self._last_command = None
        self._last_actuation = None
        self._estimate = 0.0
        self._streak = 0
        self._ticks = 0
        self._bout_start = None
        self._tripped = False

    @property
    def estimate(self) -> float:
        """The current attack-budget estimate (0 when no attack seen)."""
        return self._estimate

    def residual(self, world: World) -> float:
        """The injected perturbation recovered from the last tick.

        Call after the world ticked, before issuing the next command.
        Returns 0.0 until one full command/actuation pair is available.
        """
        if self._last_command is None or self._last_actuation is None:
            return 0.0
        vehicle = world.ego
        retain = vehicle.config.steer_retain
        applied = vehicle.state.steer_actuation
        perturbed_variation = (applied - retain * self._last_actuation) / (
            1.0 - retain
        )
        return float(perturbed_variation - self._last_command)

    def observe_command(self, world: World, command: Control) -> None:
        """Record the command about to be issued (pre-tick)."""
        self._last_command = float(np.clip(command.steer, -1.0, 1.0))
        self._last_actuation = world.ego.state.steer_actuation

    def update(self, world: World) -> float:
        """Fold the last tick's residual into the estimate (post-tick)."""
        cfg = self.config
        residual = abs(self.residual(world))
        self._ticks += 1
        self._estimate *= cfg.decay
        if residual > cfg.noise_floor:
            if self._streak == 0:
                self._bout_start = self._ticks
            self._streak += 1
            if self._streak >= cfg.min_consecutive:
                if not self._tripped:
                    self._tripped = True
                    self._record_trip()
                self._estimate = max(self._estimate, residual)
        else:
            self._streak = 0
            self._bout_start = None
            self._tripped = False
        return self._estimate

    def _record_trip(self) -> None:
        registry = get_registry()
        registry.counter("detector_trips_total", context=self.context).inc()
        if self.context == "nominal":
            registry.counter("detector_false_trips_total").inc()
        onset = self._bout_start if self._bout_start is not None else self._ticks
        registry.gauge("detector_latency_ticks").set(self._ticks - onset)


class DetectorSwitchedAgent(DrivingAgent):
    """Simplex agent whose switcher is driven by the residual detector.

    Unlike :class:`~repro.defense.pnn_defense.SimplexSwitchedAgent` this
    agent needs no external knowledge of the attack budget: it infers it
    from its own steering residuals, one control tick behind reality.
    """

    def __init__(
        self,
        original: EndToEndAgent,
        hardened_policy: ProgressivePolicy,
        sigma: float = 0.2,
        detector: ResidualAttackDetector | None = None,
        context: str = "unlabeled",
    ) -> None:
        self.simplex = SimplexSwitchedAgent(original, hardened_policy, sigma)
        self.detector = detector or ResidualAttackDetector(context=context)
        self.name = f"pnn-detector(sigma={sigma:.1f})"

    @property
    def believed_budget(self) -> float:
        return self.detector.estimate

    def reset(self, world: World) -> None:
        self.simplex.reset(world)
        self.detector.reset()

    def act(self, world: World) -> Control:
        estimate = self.detector.update(world)
        self.simplex.inform_budget(estimate)
        control = self.simplex.act(world)
        self.detector.observe_command(world, control)
        return control
