"""Per-episode attack-budget randomization for adversarial training.

Section VI-A: "we randomly initiate the training episode with different
attack budgets ranging from 0 to 1 with a granularity of 0.1. Moreover, we
control the ratio of selecting zero attack budget (i.e., no attack) to
prevent overfitting to adversarial cases." ``rho`` is that ratio.
"""

from __future__ import annotations

import numpy as np

from repro.core.attackers import LearnedAttacker
from repro.sim.vehicle import Control
from repro.sim.world import World

#: The paper's budget grid: 0.0, 0.1, ..., 1.0.
BUDGET_GRID = tuple(round(0.1 * i, 1) for i in range(11))


class BudgetRandomizedAttacker:
    """Wraps an attacker, re-sampling its budget at each episode reset.

    With probability ``rho`` the episode is nominal (budget 0); otherwise
    the budget is drawn uniformly from the non-zero grid values.
    Implements the ``SteerInjector`` protocol.
    """

    def __init__(
        self,
        attacker: LearnedAttacker,
        rho: float,
        rng: np.random.Generator | None = None,
        grid: tuple[float, ...] = BUDGET_GRID,
    ) -> None:
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.base = attacker
        self.rho = float(rho)
        self.rng = rng or np.random.default_rng(0)
        self.grid = tuple(grid)
        self._nonzero = tuple(b for b in self.grid if b > 0.0)
        self._active: LearnedAttacker | None = None
        self.current_budget = 0.0

    def reset(self, world: World) -> None:
        if self.rng.random() < self.rho:
            self.current_budget = 0.0
            self._active = None
            return
        self.current_budget = float(self.rng.choice(self._nonzero))
        self._active = self.base.with_budget(self.current_budget)
        self._active.reset(world)

    def delta(self, world: World, control: Control) -> float:
        if self._active is None:
            return 0.0
        return self._active.delta(world, control)

    @property
    def mean_effort(self) -> float:
        return 0.0 if self._active is None else self._active.mean_effort
