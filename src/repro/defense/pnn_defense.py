"""Model enhancement with progressive neural networks (Section VI-B).

The original driving policy becomes the frozen first column; a second
column with lateral connections is trained on adversarial episodes only.
At run time a Simplex-style *switcher* selects the original policy when
the (estimated) attack budget is at most ``sigma`` and the adversarially
trained column otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import DrivingAgent
from repro.agents.e2e.agent import EndToEndAgent
from repro.agents.e2e.observation import DrivingObservation
from repro.core.attackers import LearnedAttacker
from repro.defense.budget import BudgetRandomizedAttacker
from repro.defense.finetune import collect_adversarial_dataset
from repro.defense.rescue import RescueConfig, RescueExpert
from repro.rl.bc import BcConfig, BehaviorCloner
from repro.rl.pnn import ProgressivePolicy
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim.vehicle import Control
from repro.sim.world import World
from repro.telemetry.log import get_logger

log = get_logger("defense.pnn")


@dataclass
class PnnTrainConfig:
    """Training budget for the adversarial (second) PNN column."""

    #: Adversarial episodes to collect per round (all with non-zero attack
    #: budgets: the second column specializes in adversarial scenarios).
    #: The from-scratch column must learn both driving and recovery, so it
    #: gets a larger dataset than the fine-tuned agents.
    episodes: int = 120
    #: DAgger rounds after the initial expert-driven round (disabled by
    #: default; see FinetuneConfig.dagger_rounds).
    dagger_rounds: int = 0
    #: Labelling expert factory. ``None`` selects the mildly
    #: rescue-augmented expert (brake + boosted counter-steer once the
    #: hijack deviation exceeds ~a quarter lane): the adversarial column is
    #: a dedicated recovery policy, unlike the fine-tuned agents which stay
    #: close to nominal behaviour.
    expert_factory: object = None
    bc: BcConfig = field(default_factory=lambda: BcConfig(epochs=30, lr=5e-4))
    seed: int = 0


def train_pnn_column(
    base: EndToEndAgent,
    attacker: LearnedAttacker,
    config: PnnTrainConfig | None = None,
    progress: bool = False,
) -> ProgressivePolicy:
    """Train the adversarial column on top of the frozen base policy."""
    config = config or PnnTrainConfig()
    rng = np.random.default_rng(config.seed)
    expert_factory = config.expert_factory
    if expert_factory is None:
        expert_factory = lambda road: RescueExpert(
            road,
            RescueConfig(
                deviation_threshold=0.9,
                brake_command=-0.5,
                counter_steer_gain=1.5,
            ),
        )

    # Freeze a copy of the base policy as column 1.
    column1 = SquashedGaussianPolicy(
        base.policy.obs_dim, base.policy.action_dim, base.policy.hidden
    )
    column1.load_state_dict(base.policy.state_dict())
    progressive = ProgressivePolicy(column1, rng=rng)

    # Adversarial episodes only (rho = 0: every episode carries an attack).
    randomized = BudgetRandomizedAttacker(attacker, rho=0.0, rng=rng)
    cloner = BehaviorCloner(progressive, config.bc, rng=rng)
    observations, actions = collect_adversarial_dataset(
        randomized, config.episodes, rng, expert_factory=expert_factory
    )
    losses = cloner.fit(observations, actions)
    student = EndToEndAgent(progressive, observation=DrivingObservation())
    for _ in range(config.dagger_rounds):
        new_obs, new_actions = collect_adversarial_dataset(
            randomized, config.episodes, rng, student=student,
            expert_factory=expert_factory,
        )
        observations = np.concatenate([observations, new_obs])
        actions = np.concatenate([actions, new_actions])
        losses = cloner.fit(observations, actions)
    (log.info if progress else log.debug)(
        "pnn.fit", dataset=len(observations), loss=float(losses[-1])
    )
    return progressive


class SimplexSwitchedAgent(DrivingAgent):
    """Simplex-architecture driving agent (Section VI-B, [30], [31]).

    Switches between the original policy (column 1) and the adversarially
    trained PNN column based on the attack budget: the original is used
    when ``budget <= sigma``. Per the paper this makes the idealized
    assumption that the switcher knows the attack budget; in practice a
    detector's perturbation-magnitude estimate would stand in for it —
    which :meth:`estimate_budget_from` models by reading the observed
    budget from an attacker's channel.
    """

    def __init__(
        self,
        original: EndToEndAgent,
        hardened_policy: ProgressivePolicy,
        sigma: float = 0.2,
    ) -> None:
        if sigma < 0.0:
            raise ValueError("sigma must be non-negative")
        self.original = original
        self.hardened = EndToEndAgent(
            hardened_policy, observation=DrivingObservation()
        )
        self.sigma = float(sigma)
        #: The switcher's current attack-budget estimate.
        self.believed_budget = 0.0
        self.name = f"pnn(sigma={sigma:.1f})"

    def inform_budget(self, budget: float) -> None:
        """Feed the switcher its (idealized) attack-budget knowledge."""
        self.believed_budget = float(budget)

    def estimate_budget_from(self, attacker) -> None:
        """Estimate the budget from an attacker's channel (proxy detector)."""
        self.inform_budget(float(getattr(attacker, "budget", 0.0)))

    @property
    def active(self) -> EndToEndAgent:
        """The sub-agent the switcher currently routes to."""
        if self.believed_budget <= self.sigma:
            return self.original
        return self.hardened

    def reset(self, world: World) -> None:
        self.original.reset(world)
        self.hardened.reset(world)

    def act(self, world: World) -> Control:
        # Both encoders observe every tick so a mid-episode switch would
        # see warm frame stacks; routing itself is by believed budget.
        chosen = self.active
        other = self.hardened if chosen is self.original else self.original
        control = chosen.act(world)
        other.observation.observe(world)
        return control
