"""Deterministic fault injection for crash-safety testing.

A fault *plan* is a semicolon-separated spec, normally supplied through
the ``REPRO_FAULTS`` environment variable so it reaches subprocesses
unchanged:

``kill@step=120``
    SIGKILL the current process when a training loop enters step 120 —
    the real crash, not an exception that ``finally`` blocks can soften.
``kill@step=120,loop=sac-driver``
    Same, but only for the named loop.
``raise@step=120``
    Raise :class:`FaultInjected` at step 120 — an in-process stand-in
    for ``kill`` that unit tests can catch.
``nan_grads@update=40``
    Overwrite the critic gradients with NaN on SAC update 40, to
    exercise the watchdog's ``nan_loss`` checkpoint-and-halt path.
``enospc@save=2`` / ``enospc@save=2,count=3``
    Make checkpoint write number 2 (and optionally the next ``count-1``
    writes) fail with ``ENOSPC``, as a full disk would.

Plans are deterministic: the trigger is an exact step/update/write
index, so a crashed-and-resumed run replays identically. Training code
calls the ``on_*`` hooks unconditionally; with no plan configured they
cost one attribute check.
"""

from __future__ import annotations

import errno
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.telemetry.log import get_logger

log = get_logger("faults")

ENV_FAULTS = "REPRO_FAULTS"

_KINDS = ("kill", "raise", "nan_grads", "enospc")


class FaultInjected(RuntimeError):
    """An injected fault fired (the catchable ``raise`` flavour)."""


class FaultSpecError(ValueError):
    """The ``REPRO_FAULTS`` spec could not be parsed."""


@dataclass(frozen=True)
class Fault:
    """One trigger: fire ``kind`` when its index matches."""

    kind: str
    at: int
    loop: str | None = None
    count: int = 1


@dataclass
class Plan:
    """A parsed fault plan plus the mutable firing state."""

    faults: tuple[Fault, ...]
    _saves: int = 0
    _fired: set = field(default_factory=set)

    def on_train_step(self, loop: str, step: int) -> None:
        """Hook at the top of each training-loop iteration."""
        for fault in self.faults:
            if fault.kind not in ("kill", "raise"):
                continue
            if fault.loop is not None and fault.loop != loop:
                continue
            if step != fault.at or fault in self._fired:
                continue
            self._fired.add(fault)
            if fault.kind == "kill":
                log.warning("faults.kill", loop=loop, step=step)
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultInjected(f"injected fault at {loop} step {step}")

    def on_gradients(self, which: str, params, update_index: int) -> None:
        """Hook between ``backward()`` and ``opt.step()`` in SAC updates."""
        for fault in self.faults:
            if fault.kind != "nan_grads" or update_index != fault.at:
                continue
            if fault.loop is not None and fault.loop != which:
                continue
            if fault in self._fired:
                continue
            self._fired.add(fault)
            log.warning("faults.nan_grads", which=which, update=update_index)
            for param in params:
                if getattr(param, "grad", None) is not None:
                    param.grad = np.full_like(param.grad, np.nan)

    def on_checkpoint_write(self, path: Path) -> None:
        """Hook at the start of every ``save_checkpoint`` call."""
        index = self._saves
        self._saves += 1
        for fault in self.faults:
            if fault.kind != "enospc":
                continue
            if fault.at <= index < fault.at + fault.count:
                log.warning("faults.enospc", path=str(path), save=index)
                raise OSError(
                    errno.ENOSPC, "injected: no space left on device", str(path)
                )


def parse_plan(spec: str) -> Plan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`Plan`."""
    faults = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition("@")
        kind = kind.strip()
        if kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {chunk!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        fields: dict[str, str] = {}
        for pair in rest.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise FaultSpecError(f"expected key=value, got {pair!r}")
            fields[key.strip()] = value.strip()
        index_key = {
            "kill": "step", "raise": "step",
            "nan_grads": "update", "enospc": "save",
        }[kind]
        if index_key not in fields:
            raise FaultSpecError(f"{chunk!r} is missing {index_key}=N")
        try:
            at = int(fields.pop(index_key))
            count = int(fields.pop("count", "1"))
        except ValueError as exc:
            raise FaultSpecError(f"non-integer index in {chunk!r}") from exc
        loop = fields.pop("loop", None)
        if fields:
            raise FaultSpecError(
                f"unknown field(s) {sorted(fields)} in {chunk!r}"
            )
        faults.append(Fault(kind=kind, at=at, loop=loop, count=count))
    return Plan(faults=tuple(faults))


_active: Plan | None = None
_active_spec: str | None = None


def active_plan() -> Plan | None:
    """The process-wide plan from ``REPRO_FAULTS``, or None if unset."""
    global _active, _active_spec
    spec = os.environ.get(ENV_FAULTS, "")
    if spec != (_active_spec or ""):
        _active_spec = spec
        _active = parse_plan(spec) if spec.strip() else None
        if _active is not None:
            log.warning("faults.armed", spec=spec)
    return _active


def reset_active_plan() -> None:
    """Drop the cached plan (tests flip ``REPRO_FAULTS`` between runs)."""
    global _active, _active_spec
    _active = None
    _active_spec = None


def truncate_tail(path: str | Path, drop_bytes: int = 512) -> None:
    """Chop ``drop_bytes`` off the end of a file, simulating a torn write.

    Used by the chaos suite to corrupt the newest checkpoint the way a
    crash mid-write would have before writes were atomic.
    """
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


def seeded_step(seed: int, lo: int, hi: int) -> int:
    """A deterministic pseudo-random step index in ``[lo, hi)``.

    The chaos suite uses this so 'kill at an arbitrary step' is both
    arbitrary and reproducible from the test's seed.
    """
    if hi <= lo:
        raise ValueError(f"empty range [{lo}, {hi})")
    return int(np.random.default_rng(seed).integers(lo, hi))
