"""Freeway road geometry: lanes, Frenet frames, and the waypoint graph.

The road is defined by a reference centerline (straight or gently curved)
with ``n_lanes`` parallel lanes. Positions convert between the world frame
and Frenet coordinates ``(s, d)`` — arc-length along the reference line and
signed lateral offset (positive left). A directed waypoint graph over all
lanes supports route planning with lane-change edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import networkx as nx
import numpy as np

from repro.sim.config import RoadConfig
from repro.utils.geometry import (
    interpolate_polyline,
    polyline_arclength,
    project_to_polyline,
)


@dataclass(frozen=True)
class Waypoint:
    """A discrete point on a lane used for planning and reward shaping."""

    lane: int
    index: int
    s: float
    position: tuple[float, float]
    yaw: float


class Road:
    """A multilane freeway with Frenet conversion and a routing graph."""

    def __init__(self, config: RoadConfig, centerline: np.ndarray) -> None:
        """Build a road from an explicit reference ``centerline`` polyline.

        Prefer the :meth:`straight` and :meth:`curved` constructors.
        """
        if centerline.ndim != 2 or centerline.shape[1] != 2:
            raise ValueError("centerline must have shape (n, 2)")
        if len(centerline) < 2:
            raise ValueError("centerline needs at least two points")
        self.config = config
        self.centerline = np.asarray(centerline, dtype=float)
        self.arclength = polyline_arclength(self.centerline)
        self.length = float(self.arclength[-1])
        # Fast path: an axis-aligned straight road (the default scenario)
        # converts to Frenet in O(1) instead of projecting onto the polyline.
        self._axis_aligned = bool(
            np.all(self.centerline[:, 1] == self.centerline[0, 1])
            and np.all(np.diff(self.centerline[:, 0]) > 0)
        )
        self._base_x = float(self.centerline[0, 0])
        self._base_y = float(self.centerline[0, 1])
        self._waypoints = self._build_waypoints()
        self._graph = self._build_graph()

    # -- constructors ------------------------------------------------------

    @classmethod
    def straight(cls, config: RoadConfig | None = None) -> "Road":
        """A straight road along +x, the default Town04-Road23-like freeway."""
        config = config or RoadConfig()
        n = max(int(config.length / 2.0) + 1, 2)
        xs = np.linspace(0.0, config.length, n)
        centerline = np.stack([xs, np.zeros_like(xs)], axis=1)
        return cls(config, centerline)

    @classmethod
    def curved(
        cls,
        config: RoadConfig | None = None,
        amplitude: float = 6.0,
        wavelength: float = 220.0,
    ) -> "Road":
        """A gently S-curved freeway (sinusoidal lateral profile).

        Args:
            amplitude: peak lateral excursion of the centerline, meters.
            wavelength: spatial period of the curve, meters.
        """
        config = config or RoadConfig()
        n = max(int(config.length / 1.0) + 1, 2)
        xs = np.linspace(0.0, config.length, n)
        ys = amplitude * np.sin(2.0 * math.pi * xs / wavelength)
        centerline = np.stack([xs, ys], axis=1)
        return cls(config, centerline)

    # -- frenet ------------------------------------------------------------

    def to_frenet(self, position: np.ndarray) -> tuple[float, float, float]:
        """World position -> ``(s, d, tangent_yaw)`` on the reference line."""
        if self._axis_aligned:
            s = min(max(float(position[0]) - self._base_x, 0.0), self.length)
            return s, float(position[1]) - self._base_y, 0.0
        return project_to_polyline(position, self.centerline, self.arclength)

    def to_frenet_batch(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized Frenet conversion for many points at once.

        Args:
            points: world positions, shape ``(n, 2)``.

        Returns:
            ``(s, d)`` arrays of shape ``(n,)``. Used by the camera
            rasterizer, where per-point :meth:`to_frenet` calls would
            dominate the frame time.
        """
        pts = np.asarray(points, dtype=float)
        if self._axis_aligned:
            s = np.clip(pts[:, 0] - self._base_x, 0.0, self.length)
            return s, pts[:, 1] - self._base_y
        starts = self.centerline[:-1]
        segs = self.centerline[1:] - starts
        seg_len2 = np.maximum(np.einsum("ij,ij->i", segs, segs), 1e-12)
        # (n, m) projections of each point onto each segment.
        rel = pts[:, None, :] - starts[None, :, :]
        t = np.einsum("nmj,mj->nm", rel, segs) / seg_len2[None, :]
        t = np.clip(t, 0.0, 1.0)
        foot = starts[None, :, :] + t[..., None] * segs[None, :, :]
        diff = pts[:, None, :] - foot
        dist2 = np.einsum("nmj,nmj->nm", diff, diff)
        idx = np.argmin(dist2, axis=1)
        rows = np.arange(len(pts))
        seg_len = np.sqrt(seg_len2)
        tangents = segs / seg_len[:, None]
        chosen_t = t[rows, idx]
        s = self.arclength[idx] + chosen_t * seg_len[idx]
        normals = np.stack([-tangents[:, 1], tangents[:, 0]], axis=1)
        offs = diff[rows, idx]
        d = np.einsum("nj,nj->n", offs, normals[idx])
        return s, d

    def frenet_batch(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_frenet`: ``(s, d, tangent_yaw)`` arrays.

        Mirrors the scalar conversion element-for-element (the axis-aligned
        fast path is exact; the generic path picks the same nearest segment
        and evaluates the same projection formulas). Used by the batch
        engine, where one call replaces N per-episode conversions.
        """
        pts = np.asarray(points, dtype=float)
        if self._axis_aligned:
            s = np.clip(pts[:, 0] - self._base_x, 0.0, self.length)
            return s, pts[:, 1] - self._base_y, np.zeros(len(pts))
        starts = self.centerline[:-1]
        segs = self.centerline[1:] - starts
        seg_len2 = np.maximum(np.einsum("ij,ij->i", segs, segs), 1e-12)
        rel = pts[:, None, :] - starts[None, :, :]
        t = np.einsum("nmj,mj->nm", rel, segs) / seg_len2[None, :]
        t = np.clip(t, 0.0, 1.0)
        foot = starts[None, :, :] + t[..., None] * segs[None, :, :]
        diff = pts[:, None, :] - foot
        dist2 = np.einsum("nmj,nmj->nm", diff, diff)
        idx = np.argmin(dist2, axis=1)
        rows = np.arange(len(pts))
        seg_len = np.sqrt(seg_len2)
        tangents = segs / seg_len[:, None]
        chosen_t = t[rows, idx]
        s = self.arclength[idx] + chosen_t * seg_len[idx]
        normals = np.stack([-tangents[:, 1], tangents[:, 0]], axis=1)
        offs = diff[rows, idx]
        d = np.einsum("nj,nj->n", offs, normals[idx])
        yaw = np.arctan2(tangents[idx, 1], tangents[idx, 0])
        return s, d, yaw

    def to_world(self, s: float, d: float) -> tuple[np.ndarray, float]:
        """Frenet ``(s, d)`` -> world position and tangent heading."""
        base, yaw = interpolate_polyline(s, self.centerline, self.arclength)
        normal = np.array([-math.sin(yaw), math.cos(yaw)])
        return base + d * normal, yaw

    def to_world_batch(
        self, s: np.ndarray, d: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_world`: positions ``(n, 2)`` + headings ``(n,)``.

        Evaluates the same interpolation formula as
        :func:`~repro.utils.geometry.interpolate_polyline` element-wise
        (same segment choice via ``searchsorted``, same lerp), so straight
        roads reproduce the scalar result bit-for-bit.
        """
        s = np.asarray(s, dtype=float)
        d = np.asarray(d, dtype=float)
        s_c = np.clip(s, 0.0, self.length)
        idx = np.searchsorted(self.arclength, s_c, side="right") - 1
        idx = np.clip(idx, 0, len(self.centerline) - 2)
        seg_start = self.arclength[idx]
        span = np.maximum(self.arclength[idx + 1] - seg_start, 1e-12)
        t = (s_c - seg_start) / span
        base = (
            self.centerline[idx] * (1.0 - t)[:, None]
            + self.centerline[idx + 1] * t[:, None]
        )
        direction = self.centerline[idx + 1] - self.centerline[idx]
        yaw = np.arctan2(direction[:, 1], direction[:, 0])
        normal = np.stack([-np.sin(yaw), np.cos(yaw)], axis=1)
        return base + d[:, None] * normal, yaw

    # -- lanes -------------------------------------------------------------

    @property
    def n_lanes(self) -> int:
        return self.config.n_lanes

    def lane_offset(self, lane: int) -> float:
        """Signed lateral offset of a lane center from the reference line."""
        self._check_lane(lane)
        return (lane - (self.config.n_lanes - 1) / 2.0) * self.config.lane_width

    def lane_center(self, lane: int, s: float) -> tuple[np.ndarray, float]:
        """World position and heading of ``lane``'s center at arc-length ``s``."""
        return self.to_world(s, self.lane_offset(lane))

    def lane_at(self, d: float) -> int | None:
        """The lane index containing lateral offset ``d``, or ``None`` off-road."""
        half = self.config.n_lanes * self.config.lane_width / 2.0
        if abs(d) > half:
            return None
        lane = int((d + half) / self.config.lane_width)
        return min(lane, self.config.n_lanes - 1)

    @property
    def half_width(self) -> float:
        """Distance from the reference line to either drivable edge."""
        return self.config.n_lanes * self.config.lane_width / 2.0

    @property
    def barrier_offset(self) -> float:
        """Distance from the reference line to the barriers."""
        return self.half_width + self.config.shoulder

    def off_road(self, d: float) -> bool:
        """Whether lateral offset ``d`` is beyond the barriers."""
        return abs(d) >= self.barrier_offset

    def lateral_deviation(self, d: float, lane: int) -> float:
        """Signed offset of ``d`` from the center of ``lane``."""
        return d - self.lane_offset(lane)

    # -- waypoints and routing ----------------------------------------------

    def _build_waypoints(self) -> list[list[Waypoint]]:
        spacing = self.config.waypoint_spacing
        count = int(self.length / spacing) + 1
        lanes: list[list[Waypoint]] = []
        for lane in range(self.config.n_lanes):
            points: list[Waypoint] = []
            for index in range(count):
                s = min(index * spacing, self.length)
                position, yaw = self.lane_center(lane, s)
                points.append(
                    Waypoint(
                        lane=lane,
                        index=index,
                        s=s,
                        position=(float(position[0]), float(position[1])),
                        yaw=yaw,
                    )
                )
            lanes.append(points)
        return lanes

    def _build_graph(self) -> nx.DiGraph:
        """Directed graph: forward edges along lanes, diagonal lane changes."""
        graph = nx.DiGraph()
        lane_change_span = max(
            2, int(math.ceil(8.0 / self.config.waypoint_spacing))
        )
        for lane_points in self._waypoints:
            for waypoint in lane_points:
                graph.add_node((waypoint.lane, waypoint.index))
        spacing = self.config.waypoint_spacing
        for lane, lane_points in enumerate(self._waypoints):
            for waypoint in lane_points:
                nxt = (lane, waypoint.index + 1)
                if graph.has_node(nxt):
                    graph.add_edge((lane, waypoint.index), nxt, weight=spacing)
                for other in (lane - 1, lane + 1):
                    target = (other, waypoint.index + lane_change_span)
                    if graph.has_node(target):
                        cost = math.hypot(
                            lane_change_span * spacing, self.config.lane_width
                        )
                        graph.add_edge(
                            (lane, waypoint.index),
                            target,
                            weight=cost * 1.05,
                        )
        return graph

    def waypoints(self, lane: int) -> list[Waypoint]:
        """All waypoints of ``lane`` ordered by arc-length."""
        self._check_lane(lane)
        return self._waypoints[lane]

    def waypoint(self, lane: int, index: int) -> Waypoint:
        return self._waypoints[lane][index]

    def nearest_waypoint(self, lane: int, s: float) -> Waypoint:
        """The waypoint of ``lane`` closest to arc-length ``s``."""
        self._check_lane(lane)
        index = int(round(s / self.config.waypoint_spacing))
        index = min(max(index, 0), len(self._waypoints[lane]) - 1)
        return self._waypoints[lane][index]

    def shortest_route(
        self, start: tuple[int, int], goal: tuple[int, int]
    ) -> list[Waypoint]:
        """Dijkstra route between waypoint graph nodes ``(lane, index)``."""
        nodes = nx.shortest_path(self._graph, start, goal, weight="weight")
        return [self.waypoint(lane, index) for lane, index in nodes]

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.config.n_lanes:
            raise ValueError(
                f"lane {lane} out of range [0, {self.config.n_lanes})"
            )


@lru_cache(maxsize=8)
def default_road() -> Road:
    """The shared straight freeway used by the paper's scenario."""
    return Road.straight(RoadConfig())
