"""Simulation configuration.

Constants follow Section III of the paper: 0.1 s control steps, 180-step
episodes, ego reference speed 16 m/s, six NPC vehicles at 6 m/s, actuation
smoothing per Eq. (1) with per-step variation bounded by the mechanical
limit ``EPSILON_MECH = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Mechanical limit of the normalized actuation variation (paper: epsilon = 1).
EPSILON_MECH = 1.0


@dataclass(frozen=True)
class VehicleConfig:
    """Physical parameters of a simulated vehicle (kinematic bicycle model)."""

    length: float = 4.7
    width: float = 2.0
    wheelbase: float = 2.9
    #: Maximum road-wheel steering angle in radians (paper: 70 degrees).
    max_steer_angle: float = math.radians(70.0)
    #: Maximum forward acceleration at full throttle, m/s^2.
    max_accel: float = 4.0
    #: Maximum deceleration at full brake, m/s^2.
    max_brake: float = 8.0
    #: Lateral-acceleration limit approximating tire grip, m/s^2.  The
    #: kinematic model has no slip, so yaw rate is clamped to
    #: ``max_lateral_accel / speed`` to keep high-speed steering physical.
    max_lateral_accel: float = 6.5
    #: Quadratic drag coefficient (m^-1) applied as ``-drag * v^2``.
    drag: float = 0.002
    #: Retain rate of the previous steering actuation, Eq. (1) alpha.
    steer_retain: float = 0.6
    #: Retain rate of the previous thrust actuation, Eq. (1) eta.
    thrust_retain: float = 0.6
    #: Top speed, m/s.
    max_speed: float = 30.0


@dataclass(frozen=True)
class RoadConfig:
    """Geometry of the freeway (a Town04-Road23-like straight multilane road)."""

    n_lanes: int = 4
    lane_width: float = 3.5
    length: float = 450.0
    #: Lateral clearance between the outermost lane edge and the barrier.
    shoulder: float = 1.0
    #: Spacing of generated waypoints along each lane, meters.
    waypoint_spacing: float = 2.0


@dataclass(frozen=True)
class ScenarioConfig:
    """The lane-changing / overtaking traffic scenario of Fig. 1(a)."""

    #: Control-step duration, seconds (paper: 0.1 s).
    dt: float = 0.1
    #: Physics sub-steps per control step; the IMU samples each sub-step,
    #: which yields the paper's 20 sps at the default of 2.
    substeps: int = 2
    #: Episode horizon in control steps (paper: 180).
    max_steps: int = 180
    #: Ego reference speed, m/s (paper: 16).
    ego_speed: float = 16.0
    #: NPC reference speed, m/s (paper: 6).
    npc_speed: float = 6.0
    #: Number of NPC vehicles to overtake (paper: 6).
    n_npcs: int = 6
    #: Longitudinal gap from the ego to the first NPC at spawn, meters.
    first_npc_gap: float = 35.0
    #: Longitudinal spacing between consecutive NPCs at spawn, meters.
    npc_spacing: float = 24.0
    #: Index of the lane the ego spawns in (0 = rightmost).
    ego_lane: int = 1
    #: Lanes the NPCs cycle through at spawn.
    npc_lanes: tuple[int, ...] = (1, 2)
    #: Randomization half-ranges applied per episode (position jitter, m).
    spawn_jitter: float = 3.0
    speed_jitter: float = 0.4
    road: RoadConfig = field(default_factory=RoadConfig)
    vehicle: VehicleConfig = field(default_factory=VehicleConfig)

    @property
    def physics_dt(self) -> float:
        """Duration of one physics sub-step, seconds."""
        return self.dt / self.substeps

    @property
    def imu_rate(self) -> float:
        """IMU sampling rate in samples per second (paper: 20 sps)."""
        return 1.0 / self.physics_dt


DEFAULT_SCENARIO = ScenarioConfig()
