"""Scenario presets beyond the paper's default configuration.

The paper evaluates one scenario (four-lane freeway, six NPCs). These
presets vary traffic density and road geometry so downstream users can
probe generalization — the limitation Section II-A raises for end-to-end
agents — without hand-assembling configs.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import RoadConfig, ScenarioConfig
from repro.sim.road import Road
from repro.sim.scenario import make_world
from repro.sim.world import World


def paper_scenario() -> ScenarioConfig:
    """The exact configuration of Section III-A."""
    return ScenarioConfig()


def dense_traffic() -> ScenarioConfig:
    """Nine NPCs with tighter spacing: more frequent critical windows."""
    return ScenarioConfig(
        n_npcs=9,
        npc_spacing=17.0,
        first_npc_gap=28.0,
        npc_lanes=(0, 1, 2),
    )


def light_traffic() -> ScenarioConfig:
    """Three NPCs far apart: long lurk phases between attack windows."""
    return ScenarioConfig(n_npcs=3, npc_spacing=45.0, first_npc_gap=50.0)


def two_lane() -> ScenarioConfig:
    """A two-lane road: every overtake passes through the single free lane."""
    return ScenarioConfig(
        road=RoadConfig(n_lanes=2),
        ego_lane=0,
        npc_lanes=(0,),
    )


def fast_npcs() -> ScenarioConfig:
    """NPCs at 10 m/s: smaller speed differential, longer side-by-side
    exposure during each overtake."""
    return ScenarioConfig(npc_speed=10.0, npc_spacing=30.0)


def curved_world(
    rng: np.random.Generator | None = None,
    amplitude: float = 5.0,
    wavelength: float = 240.0,
) -> World:
    """The paper scenario on a gently S-curved freeway.

    Exercises the generic (polyline) Frenet path instead of the
    axis-aligned fast path.
    """
    config = ScenarioConfig()
    road = Road.curved(config.road, amplitude=amplitude, wavelength=wavelength)
    return make_world(config, rng=rng, road=road)


PRESETS = {
    "paper": paper_scenario,
    "dense": dense_traffic,
    "light": light_traffic,
    "two-lane": two_lane,
    "fast-npcs": fast_npcs,
}
