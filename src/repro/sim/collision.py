"""Collision detection and classification.

The adversarial reward distinguishes the attacker's desired outcome (a
*side* collision with an NPC vehicle) from undesired outcomes (front or
rear-end collisions, or hitting the roadside barrier). Classification uses
the bearing of the other actor in the struck vehicle's body frame.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.sim.road import Road
from repro.sim.vehicle import Vehicle
from repro.utils.geometry import normalize_angle


class CollisionKind(enum.Enum):
    """How a collision presented itself relative to the ego vehicle."""

    SIDE = "side"
    FRONT = "front"
    REAR = "rear"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Collision:
    """A collision event reported by the world.

    Attributes:
        kind: geometric classification from the ego's perspective.
        ego: name of the vehicle whose perspective ``kind`` uses.
        other: name of the struck actor (``"barrier"`` for road edges).
        step: world control step at which contact was first detected.
        time: simulation time of first contact, seconds.
    """

    kind: CollisionKind
    ego: str
    other: str
    step: int
    time: float

    @property
    def is_side(self) -> bool:
        return self.kind is CollisionKind.SIDE


# Bearing sectors (radians from the ego's forward axis) for classification.
_FRONT_SECTOR = math.radians(38.0)
_REAR_SECTOR = math.radians(142.0)


def classify_vehicle_collision(ego: Vehicle, other: Vehicle) -> CollisionKind:
    """Classify a vehicle-vehicle contact from ``ego``'s perspective.

    The other vehicle's center is expressed in ego body coordinates. A
    bearing within +/-38 deg of the nose is a front collision, beyond
    +/-142 deg a rear-end, and anything in between is a side collision
    (the attacker's target outcome).
    """
    dx = other.state.x - ego.state.x
    dy = other.state.y - ego.state.y
    bearing = abs(normalize_angle(math.atan2(dy, dx) - ego.state.yaw))
    if bearing <= _FRONT_SECTOR:
        return CollisionKind.FRONT
    if bearing >= _REAR_SECTOR:
        return CollisionKind.REAR
    return CollisionKind.SIDE


def check_vehicle_pair(ego: Vehicle, other: Vehicle) -> CollisionKind | None:
    """Overlap test + classification; ``None`` when not in contact."""
    if not ego.footprint().intersects(other.footprint()):
        return None
    return classify_vehicle_collision(ego, other)


def check_barrier(vehicle: Vehicle, road: Road) -> bool:
    """Whether any corner of ``vehicle`` crosses the roadside barriers."""
    corners = vehicle.footprint().corners()
    for corner in corners:
        _, d, _ = road.to_frenet(corner)
        if road.off_road(d):
            return True
    return False
