"""Driving simulator substrate (CARLA substitute).

2D freeway world with kinematic bicycle-model vehicles, actuation smoothing
per Eq. (1) of the paper, OBB collision detection with side/front/rear
classification, lane-keeping NPC drivers, and the Fig. 1(a) overtaking
scenario builder.
"""

from repro.sim.batch import BatchTickResult, BatchWorld, make_batch_world
from repro.sim.collision import Collision, CollisionKind
from repro.sim.config import (
    DEFAULT_SCENARIO,
    EPSILON_MECH,
    RoadConfig,
    ScenarioConfig,
    VehicleConfig,
)
from repro.sim.npc import LaneKeepingDriver
from repro.sim.road import Road, Waypoint, default_road
from repro.sim.presets import PRESETS, curved_world
from repro.sim.scenario import make_world
from repro.sim.vehicle import Control, Vehicle, VehicleState
from repro.sim.world import NpcActor, TickResult, World

__all__ = [
    "BatchTickResult",
    "BatchWorld",
    "make_batch_world",
    "Collision",
    "CollisionKind",
    "Control",
    "DEFAULT_SCENARIO",
    "EPSILON_MECH",
    "LaneKeepingDriver",
    "NpcActor",
    "Road",
    "RoadConfig",
    "ScenarioConfig",
    "TickResult",
    "Vehicle",
    "VehicleConfig",
    "VehicleState",
    "Waypoint",
    "World",
    "default_road",
    "make_world",
    "PRESETS",
    "curved_world",
]
