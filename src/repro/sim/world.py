"""The simulated world: actors, ticking, collision registry.

A :class:`World` owns the road, the ego vehicle, and the NPC fleet with
their lane-keeping drivers. Each control tick applies the ego command
(optionally perturbed on the steering channel by an action-space attack),
advances every vehicle, and reports collision events.

Episode termination mirrors the paper's protocol: a collision, the 180-step
horizon, or the ego running out of road.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.collision import (
    Collision,
    CollisionKind,
    check_barrier,
    check_vehicle_pair,
)
from repro.sim.config import ScenarioConfig
from repro.sim.npc import LaneKeepingDriver
from repro.sim.road import Road
from repro.sim.vehicle import Control, Vehicle
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import span


@dataclass(frozen=True)
class TickResult:
    """Outcome of one control step."""

    step: int
    time: float
    collision: Collision | None
    done: bool
    #: The steering variation actually applied to the ego after the
    #: attack perturbation and mechanical clamp (Eq. (1) input).
    applied_steer: float

    @property
    def collided(self) -> bool:
        return self.collision is not None


@dataclass
class NpcActor:
    """An NPC vehicle bundled with its driver."""

    vehicle: Vehicle
    driver: LaneKeepingDriver


class World:
    """Owns all simulation state and advances it tick by tick."""

    def __init__(
        self,
        road: Road,
        config: ScenarioConfig,
        ego: Vehicle,
        npcs: list[NpcActor],
    ) -> None:
        self.road = road
        self.config = config
        self.ego = ego
        self.npcs = npcs
        self.step_count = 0
        self.time = 0.0
        self.collisions: list[Collision] = []
        self._done = False
        self._passed: set[str] = set()

    # -- ticking ---------------------------------------------------------------

    def tick(self, ego_control: Control, steer_delta: float = 0.0) -> TickResult:
        """Advance the world one control step.

        Args:
            ego_control: the victim agent's command (pre-attack).
            steer_delta: additive action-space perturbation applied to the
                steering *variation* before the mechanical clamp, per
                Section IV-C (``nu' = nu + delta``).

        Returns:
            The per-step result. After ``done`` becomes true further ticks
            raise ``RuntimeError``.
        """
        if self._done:
            raise RuntimeError("world already done; create a new episode")
        with span("world.tick"):
            perturbed = Control(
                steer=ego_control.steer + steer_delta,
                thrust=ego_control.thrust,
            ).clipped()
            self.ego.apply_control(perturbed)
            for npc in self.npcs:
                npc.vehicle.apply_control(npc.driver.control(npc.vehicle))

            dt, substeps = self.config.dt, self.config.substeps
            self.ego.step(dt, substeps)
            for npc in self.npcs:
                npc.vehicle.step(dt, substeps)

            self.step_count += 1
            self.time += dt
            collision = self._detect_collision()
            if collision is not None:
                self.collisions.append(collision)
                get_registry().counter(
                    "collisions_total", kind=collision.kind.name
                ).inc()
            self._update_passed()
            ego_s, _, _ = self.road.to_frenet(self.ego.state.position)
            out_of_road = ego_s >= self.road.length - self.ego.config.length
            self._done = (
                collision is not None
                or self.step_count >= self.config.max_steps
                or out_of_road
            )
        return TickResult(
            step=self.step_count,
            time=self.time,
            collision=collision,
            done=self._done,
            applied_steer=perturbed.steer,
        )

    @property
    def done(self) -> bool:
        return self._done

    # -- collision handling ------------------------------------------------------

    def _detect_collision(self) -> Collision | None:
        for npc in self.npcs:
            kind = check_vehicle_pair(self.ego, npc.vehicle)
            if kind is not None:
                return Collision(
                    kind=kind,
                    ego=self.ego.name,
                    other=npc.vehicle.name,
                    step=self.step_count,
                    time=self.time,
                )
        if check_barrier(self.ego, self.road):
            return Collision(
                kind=CollisionKind.BARRIER,
                ego=self.ego.name,
                other="barrier",
                step=self.step_count,
                time=self.time,
            )
        return None

    # -- progress metrics ----------------------------------------------------------

    def _update_passed(self) -> None:
        ego_s, _, _ = self.road.to_frenet(self.ego.state.position)
        margin = self.ego.config.length
        for npc in self.npcs:
            npc_s, _, _ = self.road.to_frenet(npc.vehicle.state.position)
            if ego_s > npc_s + margin:
                self._passed.add(npc.vehicle.name)

    @property
    def passed_npcs(self) -> int:
        """How many NPC vehicles the ego has fully overtaken so far."""
        return len(self._passed)

    def ego_frenet(self) -> tuple[float, float, float]:
        """Ego ``(s, d, tangent_yaw)`` on the road reference line."""
        return self.road.to_frenet(self.ego.state.position)

    def nearest_npc(self) -> NpcActor | None:
        """The NPC closest to the ego by Euclidean distance (None if empty)."""
        if not self.npcs:
            return None
        ego_pos = self.ego.state.position
        distances = [
            float(np.linalg.norm(npc.vehicle.state.position - ego_pos))
            for npc in self.npcs
        ]
        return self.npcs[int(np.argmin(distances))]
