"""Vehicle dynamics: kinematic bicycle model with Eq. (1) actuation smoothing.

Controls are normalized: ``steer`` in ``[-1, 1]`` maps to the road-wheel
angle (positive = right turn, matching the paper's sign convention), and
``thrust`` in ``[-1, 1]`` maps to throttle (positive) or brake (negative).
Per the paper, agents command the *variation* ``nu`` (steer) and ``gamma``
(thrust); the applied actuation is the exponential blend of Eq. (1):

    a_t = (1 - alpha) * nu_t + alpha * a_{t-1}
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.sim.config import EPSILON_MECH, VehicleConfig
from repro.utils.geometry import OrientedBox, normalize_angle


@dataclass(frozen=True)
class Control:
    """A raw control command: steering and thrust variations, Eq. (1) inputs."""

    steer: float = 0.0
    thrust: float = 0.0

    def clipped(self, limit: float = EPSILON_MECH) -> "Control":
        """Clamp both channels to the mechanical limit ``[-limit, limit]``."""
        return Control(
            steer=float(np.clip(self.steer, -limit, limit)),
            thrust=float(np.clip(self.thrust, -limit, limit)),
        )


@dataclass
class VehicleState:
    """Full kinematic state of a vehicle."""

    x: float = 0.0
    y: float = 0.0
    yaw: float = 0.0
    speed: float = 0.0
    #: Smoothed actuation values a_{t-1} of Eq. (1).
    steer_actuation: float = 0.0
    thrust_actuation: float = 0.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y])

    @property
    def velocity(self) -> np.ndarray:
        return self.speed * np.array([math.cos(self.yaw), math.sin(self.yaw)])

    def copy(self) -> "VehicleState":
        return replace(self)


@dataclass(frozen=True)
class ImuSample:
    """One inertial sample: body-frame longitudinal accel and yaw rate."""

    accel_long: float
    accel_lat: float
    yaw_rate: float


class Vehicle:
    """A simulated vehicle advanced by the kinematic bicycle model.

    Attributes:
        name: identifier used by the world and collision reports.
        config: physical parameters.
        state: mutable kinematic state.
        imu_trace: inertial samples recorded during the last ``step`` call,
            one per physics sub-step (consumed by :class:`repro.sensors.Imu`).
    """

    def __init__(
        self,
        name: str,
        config: VehicleConfig | None = None,
        state: VehicleState | None = None,
    ) -> None:
        self.name = name
        self.config = config or VehicleConfig()
        self.state = state or VehicleState()
        self.imu_trace: list[ImuSample] = []
        self._pending = Control()

    # -- control -------------------------------------------------------------

    def apply_control(self, control: Control) -> None:
        """Queue the control variations for the next :meth:`step`.

        The command is clamped to the mechanical limit before use, mirroring
        the paper's ``nu, gamma in [-epsilon, epsilon]``.
        """
        self._pending = control.clipped()

    @property
    def pending_control(self) -> Control:
        """The command queued for the next step (post mechanical clamp)."""
        return self._pending

    def smoothed_actuation(self, control: Control) -> tuple[float, float]:
        """Eq. (1): blend ``control`` with the previous actuation values."""
        cfg = self.config
        steer = (1.0 - cfg.steer_retain) * control.steer + (
            cfg.steer_retain * self.state.steer_actuation
        )
        thrust = (1.0 - cfg.thrust_retain) * control.thrust + (
            cfg.thrust_retain * self.state.thrust_actuation
        )
        return steer, thrust

    # -- dynamics --------------------------------------------------------------

    def step(self, dt: float, substeps: int = 1) -> None:
        """Advance the vehicle by ``dt`` seconds using the pending control.

        Integration runs in ``substeps`` sub-intervals; each sub-step appends
        one :class:`ImuSample` to :attr:`imu_trace` (the trace is reset at the
        start of every call).
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if substeps < 1:
            raise ValueError("substeps must be >= 1")
        steer_act, thrust_act = self.smoothed_actuation(self._pending)
        self.state.steer_actuation = steer_act
        self.state.thrust_actuation = thrust_act
        self.imu_trace = []
        sub_dt = dt / substeps
        for _ in range(substeps):
            self._integrate(steer_act, thrust_act, sub_dt)

    def _integrate(self, steer_act: float, thrust_act: float, dt: float) -> None:
        cfg = self.config
        state = self.state
        if thrust_act >= 0.0:
            accel = thrust_act * cfg.max_accel
        else:
            accel = thrust_act * cfg.max_brake
        accel -= cfg.drag * state.speed * state.speed
        new_speed = float(np.clip(state.speed + accel * dt, 0.0, cfg.max_speed))
        achieved_accel = (new_speed - state.speed) / dt

        # Positive steer = right turn = negative (clockwise) yaw rate.
        wheel_angle = steer_act * cfg.max_steer_angle
        yaw_rate = -new_speed / cfg.wheelbase * math.tan(wheel_angle)
        if new_speed > 1e-6:
            limit = cfg.max_lateral_accel / new_speed
            yaw_rate = float(np.clip(yaw_rate, -limit, limit))
        lateral_accel = yaw_rate * new_speed

        mid_yaw = state.yaw + 0.5 * yaw_rate * dt
        mid_speed = 0.5 * (state.speed + new_speed)
        state.x += mid_speed * math.cos(mid_yaw) * dt
        state.y += mid_speed * math.sin(mid_yaw) * dt
        state.yaw = normalize_angle(state.yaw + yaw_rate * dt)
        state.speed = new_speed
        self.imu_trace.append(
            ImuSample(
                accel_long=achieved_accel,
                accel_lat=lateral_accel,
                yaw_rate=yaw_rate,
            )
        )

    # -- queries ---------------------------------------------------------------

    def footprint(self) -> OrientedBox:
        """The vehicle's oriented bounding box in the world frame."""
        return OrientedBox(
            center=(self.state.x, self.state.y),
            yaw=self.state.yaw,
            length=self.config.length,
            width=self.config.width,
        )

    def teleport(
        self, x: float, y: float, yaw: float = 0.0, speed: float = 0.0
    ) -> None:
        """Reset pose and speed; clears actuation state and pending control."""
        self.state = VehicleState(x=x, y=y, yaw=yaw, speed=speed)
        self._pending = Control()
        self.imu_trace = []
