"""Scenario builder for the paper's lane-changing / overtaking task.

Constructs the world of Fig. 1(a): the ego on a freeway behind six slower
NPC vehicles that it must overtake within 180 control steps. Spawn
positions, lanes and speeds are jittered per episode from a seeded stream
so evaluation distributions are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import ScenarioConfig
from repro.sim.npc import LaneKeepingDriver
from repro.sim.road import Road
from repro.sim.vehicle import Vehicle, VehicleState
from repro.sim.world import NpcActor, World


def make_world(
    config: ScenarioConfig | None = None,
    rng: np.random.Generator | None = None,
    road: Road | None = None,
) -> World:
    """Build a fresh episode world.

    Args:
        config: scenario parameters; defaults to the paper's setup.
        rng: stream for spawn jitter. ``None`` disables all randomization,
            which is useful for exactly repeatable unit tests.
        road: override the road (defaults to the straight freeway).

    Returns:
        A ready-to-tick :class:`World` with the ego at rest-speed 16 m/s and
        six NPCs ahead at 6 m/s.
    """
    config = config or ScenarioConfig()
    road = road or Road.straight(config.road)

    ego_start_s = 10.0
    ego_position, ego_yaw = road.lane_center(config.ego_lane, ego_start_s)
    ego = Vehicle(
        "ego",
        config=config.vehicle,
        state=VehicleState(
            x=float(ego_position[0]),
            y=float(ego_position[1]),
            yaw=ego_yaw,
            speed=config.ego_speed,
        ),
    )

    npcs: list[NpcActor] = []
    for index in range(config.n_npcs):
        lane = config.npc_lanes[index % len(config.npc_lanes)]
        s = ego_start_s + config.first_npc_gap + index * config.npc_spacing
        speed = config.npc_speed
        if rng is not None:
            s += float(rng.uniform(-config.spawn_jitter, config.spawn_jitter))
            speed += float(rng.uniform(-config.speed_jitter, config.speed_jitter))
        s = float(np.clip(s, 0.0, road.length - 10.0))
        position, yaw = road.lane_center(lane, s)
        vehicle = Vehicle(
            f"npc_{index}",
            config=config.vehicle,
            state=VehicleState(
                x=float(position[0]),
                y=float(position[1]),
                yaw=yaw,
                speed=max(speed, 0.0),
            ),
        )
        driver = LaneKeepingDriver(road, lane, max(speed, 0.0))
        npcs.append(NpcActor(vehicle=vehicle, driver=driver))

    return World(road=road, config=config, ego=ego, npcs=npcs)
