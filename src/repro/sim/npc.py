"""NPC vehicle behaviour: lane keeping at a fixed reference speed.

NPCs in the paper's scenario travel at 6 m/s in their spawn lane and never
change lanes; the ego must weave between them. The controller is a simple
proportional law on speed plus a cross-track / heading feedback on steering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.road import Road
from repro.sim.vehicle import Control, Vehicle
from repro.utils.geometry import angle_diff


@dataclass(frozen=True)
class LaneKeepGains:
    """Feedback gains for the NPC lane-keeping controller."""

    cross_track: float = 0.22
    heading: float = 0.9
    speed: float = 0.5


class LaneKeepingDriver:
    """Keeps a vehicle centered in ``lane`` at ``target_speed``."""

    def __init__(
        self,
        road: Road,
        lane: int,
        target_speed: float,
        gains: LaneKeepGains | None = None,
    ) -> None:
        if not 0 <= lane < road.n_lanes:
            raise ValueError(f"lane {lane} outside road with {road.n_lanes} lanes")
        self.road = road
        self.lane = lane
        self.target_speed = float(target_speed)
        self.gains = gains or LaneKeepGains()

    def control(self, vehicle: Vehicle) -> Control:
        """Compute the steering/thrust variations for one control step."""
        state = vehicle.state
        _, d, lane_yaw = self.road.to_frenet(state.position)
        cross_track = self.road.lateral_deviation(d, self.lane)
        heading_error = angle_diff(state.yaw, lane_yaw)
        steer = (
            self.gains.cross_track * cross_track
            + self.gains.heading * heading_error
        )
        thrust = self.gains.speed * (self.target_speed - state.speed)
        return Control(
            steer=float(np.clip(steer, -1.0, 1.0)),
            thrust=float(np.clip(thrust, -1.0, 1.0)),
        )
