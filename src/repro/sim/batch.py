"""Structure-of-arrays batch simulation: N episodes ticking in lockstep.

The scalar :class:`~repro.sim.world.World` advances one episode per call
with per-vehicle Python objects; profiling shows a full bench session is
dominated by that per-episode Python overhead, not by compute. This module
re-expresses the same physics over ``[N, ...]`` numpy arrays so one
``tick`` advances every episode of a batch at once:

* all actor state (ego + NPCs) lives in ``[N, 1 + M]`` arrays (column 0 is
  the ego, columns ``1..M`` the NPCs in spawn order);
* the kinematic bicycle model, Eq. (1) actuation smoothing, the
  lane-keeping NPC drivers, and the vehicle-pair/barrier collision checks
  are all evaluated as whole-batch array expressions;
* finished episodes are *frozen* via a per-episode ``done`` mask — their
  rows stop updating while the batch continues, so every episode sees
  exactly the trajectory it would have seen running alone.

Determinism contract: the batch engine evaluates the same formulas as the
scalar world in the same order, but through numpy's SIMD kernels
(``np.cos`` over an array) instead of ``math.cos`` per scalar. Those
kernels may differ from libm in the last ulp, so batched trajectories are
*deterministic for a fixed batch* and match the scalar reference to within
a tight documented tolerance rather than bit-for-bit (see
``tests/eval/test_batch_equivalence.py`` for the measured envelope).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.collision import (
    _FRONT_SECTOR,
    _REAR_SECTOR,
    Collision,
    CollisionKind,
)
from repro.sim.config import EPSILON_MECH, ScenarioConfig
from repro.sim.npc import LaneKeepGains
from repro.sim.road import Road
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import span

#: Integer collision codes used by the SoA bookkeeping arrays.
KIND_NONE = 0
KIND_SIDE = 1
KIND_FRONT = 2
KIND_REAR = 3
KIND_BARRIER = 4

_KIND_TO_ENUM = {
    KIND_SIDE: CollisionKind.SIDE,
    KIND_FRONT: CollisionKind.FRONT,
    KIND_REAR: CollisionKind.REAR,
    KIND_BARRIER: CollisionKind.BARRIER,
}

_TWO_PI = 2.0 * math.pi


def _normalize_angles(angles: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.utils.geometry.normalize_angle`."""
    return (angles + math.pi) % _TWO_PI - math.pi


@dataclass(frozen=True)
class BatchTickResult:
    """Per-episode outcome arrays of one lockstep control step.

    Rows of episodes that were already ``done`` before the call are frozen:
    their ``step``/``time`` do not advance and ``collision_kind`` is
    :data:`KIND_NONE` (a collision is reported only on the tick it first
    happens, matching the scalar :class:`~repro.sim.world.TickResult`).
    """

    #: Control step count per episode (after this tick).
    step: np.ndarray
    #: Simulation time per episode, seconds.
    time: np.ndarray
    #: Collision code (KIND_*) of collisions that happened *this tick*.
    collision_kind: np.ndarray
    #: Episode-finished flags after this tick.
    done: np.ndarray
    #: The steering variation actually applied per episode (post clamp).
    applied_steer: np.ndarray

    @property
    def collided(self) -> np.ndarray:
        return self.collision_kind != KIND_NONE


class BatchWorld:
    """N independent episodes of the overtaking scenario, ticked in lockstep.

    All state is stored as structure-of-arrays with the actor axis second:
    ``x[i, 0]`` is episode ``i``'s ego, ``x[i, 1 + j]`` its NPC ``j``.
    Build instances with :func:`make_batch_world`.
    """

    def __init__(
        self,
        road: Road,
        config: ScenarioConfig,
        x: np.ndarray,
        y: np.ndarray,
        yaw: np.ndarray,
        speed: np.ndarray,
        npc_lane: np.ndarray,
        npc_target_speed: np.ndarray,
        gains: LaneKeepGains | None = None,
    ) -> None:
        if x.ndim != 2 or x.shape[1] < 1:
            raise ValueError("state arrays must have shape (n, 1 + n_npcs)")
        self.road = road
        self.config = config
        self.n, actors = x.shape
        self.m = actors - 1
        self.x = np.array(x, dtype=float)
        self.y = np.array(y, dtype=float)
        self.yaw = np.array(yaw, dtype=float)
        self.speed = np.array(speed, dtype=float)
        #: Smoothed actuation values a_{t-1} of Eq. (1), per actor.
        self.steer_act = np.zeros((self.n, actors))
        self.thrust_act = np.zeros((self.n, actors))
        self.npc_lane = np.array(npc_lane, dtype=int)
        self.npc_target_speed = np.array(npc_target_speed, dtype=float)
        self.gains = gains or LaneKeepGains()

        self.step_count = np.zeros(self.n, dtype=int)
        self.time = np.zeros(self.n)
        self.done = np.zeros(self.n, dtype=bool)
        self.passed = np.zeros((self.n, self.m), dtype=bool)
        #: First-collision bookkeeping (KIND_NONE / -1 where none yet).
        self.collision_kind = np.zeros(self.n, dtype=np.int8)
        self.collision_other = np.full(self.n, -1, dtype=int)
        self.collision_step = np.zeros(self.n, dtype=int)
        self.collision_time = np.zeros(self.n)

        cfg = config.vehicle
        half_l, half_w = cfg.length / 2.0, cfg.width / 2.0
        # Same corner order as OrientedBox.corners (CCW from front-left).
        self._corner_local = np.array(
            [
                [half_l, half_w],
                [-half_l, half_w],
                [-half_l, -half_w],
                [half_l, -half_w],
            ]
        )
        # Signed lateral offset of each NPC's lane center, [N, M].
        centre = (road.config.n_lanes - 1) / 2.0
        self._npc_lane_offset = (
            (self.npc_lane - centre) * road.config.lane_width
        )

    # -- ticking -----------------------------------------------------------

    def tick(
        self,
        ego_steer: np.ndarray,
        ego_thrust: np.ndarray,
        steer_delta: np.ndarray | None = None,
    ) -> BatchTickResult:
        """Advance every unfinished episode one control step.

        Args:
            ego_steer / ego_thrust: the victims' commands, shape ``(n,)``.
            steer_delta: additive action-space perturbations on the
                steering variation (``nu' = nu + delta``), shape ``(n,)``.

        Raises:
            RuntimeError: when every episode is already done.
        """
        if bool(self.done.all()):
            raise RuntimeError("all episodes done; create a new batch")
        with span("world.tick_batch"):
            active = ~self.done
            cfg, vcfg = self.config, self.config.vehicle
            ego_steer = np.asarray(ego_steer, dtype=float)
            ego_thrust = np.asarray(ego_thrust, dtype=float)
            if steer_delta is None:
                steer_delta = np.zeros(self.n)

            # Control.clipped: both channels to the mechanical limit.
            p_steer = np.clip(
                ego_steer + steer_delta, -EPSILON_MECH, EPSILON_MECH
            )
            p_thrust = np.clip(ego_thrust, -EPSILON_MECH, EPSILON_MECH)
            npc_steer, npc_thrust = self._npc_controls()
            steer_cmd = np.concatenate([p_steer[:, None], npc_steer], axis=1)
            thrust_cmd = np.concatenate(
                [p_thrust[:, None], npc_thrust], axis=1
            )

            # Eq. (1) actuation smoothing, then sub-stepped integration.
            steer_act = (
                (1.0 - vcfg.steer_retain) * steer_cmd
                + vcfg.steer_retain * self.steer_act
            )
            thrust_act = (
                (1.0 - vcfg.thrust_retain) * thrust_cmd
                + vcfg.thrust_retain * self.thrust_act
            )
            x, y = self.x.copy(), self.y.copy()
            yaw, speed = self.yaw.copy(), self.speed.copy()
            sub_dt = cfg.dt / cfg.substeps
            for _ in range(cfg.substeps):
                accel = np.where(
                    thrust_act >= 0.0,
                    thrust_act * vcfg.max_accel,
                    thrust_act * vcfg.max_brake,
                )
                accel = accel - vcfg.drag * speed * speed
                new_speed = np.clip(
                    speed + accel * sub_dt, 0.0, vcfg.max_speed
                )
                wheel = steer_act * vcfg.max_steer_angle
                yaw_rate = -new_speed / vcfg.wheelbase * np.tan(wheel)
                moving = new_speed > 1e-6
                limit = vcfg.max_lateral_accel / np.where(
                    moving, new_speed, 1.0
                )
                yaw_rate = np.where(
                    moving, np.clip(yaw_rate, -limit, limit), yaw_rate
                )
                mid_yaw = yaw + 0.5 * yaw_rate * sub_dt
                mid_speed = 0.5 * (speed + new_speed)
                x = x + mid_speed * np.cos(mid_yaw) * sub_dt
                y = y + mid_speed * np.sin(mid_yaw) * sub_dt
                yaw = _normalize_angles(yaw + yaw_rate * sub_dt)
                speed = new_speed

            # Frozen rows keep their old state verbatim.
            self.x[active] = x[active]
            self.y[active] = y[active]
            self.yaw[active] = yaw[active]
            self.speed[active] = speed[active]
            self.steer_act[active] = steer_act[active]
            self.thrust_act[active] = thrust_act[active]
            self.step_count[active] += 1
            self.time[active] += cfg.dt

            kind, other = self._detect_collisions()
            new_hit = active & (kind != KIND_NONE)
            if new_hit.any():
                registry = get_registry()
                for i in np.flatnonzero(new_hit):
                    self.collision_kind[i] = kind[i]
                    self.collision_other[i] = other[i]
                    self.collision_step[i] = self.step_count[i]
                    self.collision_time[i] = self.time[i]
                    registry.counter(
                        "collisions_total",
                        kind=_KIND_TO_ENUM[int(kind[i])].name,
                    ).inc()

            ego_s, _, _ = self.ego_frenet()
            npc_s = self._npc_s()
            overtaken = (
                ego_s[:, None] > npc_s + vcfg.length
            )
            self.passed[active] |= overtaken[active]
            out_of_road = ego_s >= self.road.length - vcfg.length
            finished = (
                new_hit
                | (self.step_count >= cfg.max_steps)
                | out_of_road
            )
            self.done[active] |= finished[active]

            tick_kind = np.where(new_hit, kind, KIND_NONE).astype(np.int8)
        return BatchTickResult(
            step=self.step_count.copy(),
            time=self.time.copy(),
            collision_kind=tick_kind,
            done=self.done.copy(),
            applied_steer=p_steer,
        )

    # -- NPC drivers -------------------------------------------------------

    def _npc_controls(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lane-keeping feedback for every NPC, [N, M] each."""
        if self.m == 0:
            empty = np.zeros((self.n, 0))
            return empty, empty
        pts = np.stack(
            [self.x[:, 1:].ravel(), self.y[:, 1:].ravel()], axis=1
        )
        _, d, lane_yaw = self.road.frenet_batch(pts)
        d = d.reshape(self.n, self.m)
        lane_yaw = lane_yaw.reshape(self.n, self.m)
        cross_track = d - self._npc_lane_offset
        heading_error = _normalize_angles(self.yaw[:, 1:] - lane_yaw)
        g = self.gains
        steer = np.clip(
            g.cross_track * cross_track + g.heading * heading_error,
            -1.0,
            1.0,
        )
        thrust = np.clip(
            g.speed * (self.npc_target_speed - self.speed[:, 1:]),
            -1.0,
            1.0,
        )
        return steer, thrust

    # -- collision detection -----------------------------------------------

    def _corners(self) -> np.ndarray:
        """World-frame footprint corners of every actor, [N, A, 4, 2]."""
        cos, sin = np.cos(self.yaw), np.sin(self.yaw)
        lx = self._corner_local[:, 0]
        ly = self._corner_local[:, 1]
        cx = (
            lx[None, None, :] * cos[:, :, None]
            - ly[None, None, :] * sin[:, :, None]
            + self.x[:, :, None]
        )
        cy = (
            lx[None, None, :] * sin[:, :, None]
            + ly[None, None, :] * cos[:, :, None]
            + self.y[:, :, None]
        )
        return np.stack([cx, cy], axis=-1)

    def _detect_collisions(self) -> tuple[np.ndarray, np.ndarray]:
        """First collision per episode: ``(kind[N], other[N])`` arrays.

        Mirrors the scalar ``World._detect_collision``: NPCs are tested in
        spawn order (the lowest-index overlapping NPC wins), the barrier
        only when no vehicle contact exists.
        """
        kind = np.zeros(self.n, dtype=np.int8)
        other = np.full(self.n, -1, dtype=int)
        corners = self._corners()
        ego_corners = corners[:, 0]  # [N, 4, 2]
        if self.m > 0:
            npc_corners = corners[:, 1:]  # [N, M, 4, 2]
            # SAT axes: ego's two face normals + each NPC's two, mirroring
            # OrientedBox.axes (heading_vector(yaw) and yaw + pi/2).
            hit = np.ones((self.n, self.m), dtype=bool)
            for yaw_src, owner in (
                (self.yaw[:, :1], "ego"),
                (self.yaw[:, 1:], "npc"),
            ):
                for offset in (0.0, math.pi / 2.0):
                    a = yaw_src + offset
                    axis = np.stack([np.cos(a), np.sin(a)], axis=-1)
                    if owner == "ego":
                        axis = np.broadcast_to(
                            axis, (self.n, self.m, 2)
                        )
                    # Projections of both footprints on the axis, [N, M, 4].
                    proj_e = np.einsum(
                        "nkj,nmj->nmk", ego_corners, axis
                    )
                    proj_o = np.einsum(
                        "nmkj,nmj->nmk", npc_corners, axis
                    )
                    separated = (
                        proj_e.max(axis=2) < proj_o.min(axis=2)
                    ) | (proj_o.max(axis=2) < proj_e.min(axis=2))
                    hit &= ~separated
            any_hit = hit.any(axis=1)
            if any_hit.any():
                first = np.argmax(hit, axis=1)
                rows = np.flatnonzero(any_hit)
                cols = first[rows]
                dx = self.x[rows, 1 + cols] - self.x[rows, 0]
                dy = self.y[rows, 1 + cols] - self.y[rows, 0]
                bearing = np.abs(
                    _normalize_angles(
                        np.arctan2(dy, dx) - self.yaw[rows, 0]
                    )
                )
                k = np.full(len(rows), KIND_SIDE, dtype=np.int8)
                k[bearing <= _FRONT_SECTOR] = KIND_FRONT
                k[bearing >= _REAR_SECTOR] = KIND_REAR
                kind[rows] = k
                other[rows] = cols
        # Barrier: any ego footprint corner beyond the roadside barriers,
        # only where no vehicle collision was found.
        clear = kind == KIND_NONE
        if clear.any():
            flat = ego_corners.reshape(-1, 2)
            _, d, _ = self.road.frenet_batch(flat)
            off = (
                np.abs(d.reshape(self.n, 4)) >= self.road.barrier_offset
            ).any(axis=1)
            barrier = clear & off
            kind[barrier] = KIND_BARRIER
            other[barrier] = -1
        return kind, other

    # -- queries -----------------------------------------------------------

    @property
    def all_done(self) -> bool:
        return bool(self.done.all())

    @property
    def ego_position(self) -> np.ndarray:
        """Ego world positions, ``[N, 2]``."""
        return np.stack([self.x[:, 0], self.y[:, 0]], axis=1)

    @property
    def ego_velocity(self) -> np.ndarray:
        """Ego velocity vectors, ``[N, 2]``."""
        return self.speed[:, 0, None] * np.stack(
            [np.cos(self.yaw[:, 0]), np.sin(self.yaw[:, 0])], axis=1
        )

    @property
    def npc_positions(self) -> np.ndarray:
        """NPC world positions, ``[N, M, 2]``."""
        return np.stack([self.x[:, 1:], self.y[:, 1:]], axis=2)

    @property
    def npc_velocities(self) -> np.ndarray:
        """NPC velocity vectors, ``[N, M, 2]``."""
        return self.speed[:, 1:, None] * np.stack(
            [np.cos(self.yaw[:, 1:]), np.sin(self.yaw[:, 1:])], axis=2
        )

    def ego_frenet(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ego ``(s, d, tangent_yaw)`` arrays on the road reference line."""
        return self.road.frenet_batch(self.ego_position)

    def _npc_s(self) -> np.ndarray:
        """NPC arc-length positions, ``[N, M]``."""
        if self.m == 0:
            return np.zeros((self.n, 0))
        pts = np.stack(
            [self.x[:, 1:].ravel(), self.y[:, 1:].ravel()], axis=1
        )
        s, _, _ = self.road.frenet_batch(pts)
        return s.reshape(self.n, self.m)

    def nearest_npc_index(self) -> np.ndarray:
        """Index of the Euclidean-closest NPC per episode, ``[N]``."""
        if self.m == 0:
            raise ValueError("batch has no NPCs")
        diff = self.npc_positions - self.ego_position[:, None, :]
        return np.argmin(
            np.sqrt(np.einsum("nmj,nmj->nm", diff, diff)), axis=1
        )

    def nearest_npc_gap(self) -> np.ndarray:
        """Distance from the ego to its nearest NPC per episode, ``[N]``."""
        diff = self.npc_positions - self.ego_position[:, None, :]
        return np.sqrt(np.einsum("nmj,nmj->nm", diff, diff)).min(axis=1)

    @property
    def passed_npcs(self) -> np.ndarray:
        """How many NPCs each ego has fully overtaken so far, ``[N]``."""
        return self.passed.sum(axis=1)

    def collision(self, i: int) -> Collision | None:
        """Episode ``i``'s collision event (None while not collided)."""
        code = int(self.collision_kind[i])
        if code == KIND_NONE:
            return None
        other = (
            "barrier"
            if code == KIND_BARRIER
            else f"npc_{int(self.collision_other[i])}"
        )
        return Collision(
            kind=_KIND_TO_ENUM[code],
            ego="ego",
            other=other,
            step=int(self.collision_step[i]),
            time=float(self.collision_time[i]),
        )


def make_batch_world(
    config: ScenarioConfig | None = None,
    seeds: list[int] | None = None,
    n: int | None = None,
    road: Road | None = None,
) -> BatchWorld:
    """Build ``N`` fresh episode worlds as one :class:`BatchWorld`.

    Episode ``i`` is spawned exactly like ``make_world(config,
    rng=np.random.default_rng(seeds[i]))`` — same jitter-draw order, same
    clipping — so batched and scalar runs of the same seed start from
    bit-identical states. ``seeds=None`` spawns ``n`` unjittered episodes
    (the ``rng=None`` scalar behaviour).
    """
    config = config or ScenarioConfig()
    road = road or Road.straight(config.road)
    if seeds is None:
        if n is None:
            raise ValueError("provide seeds or n")
        rngs = [None] * n
    else:
        rngs = [np.random.default_rng(s) for s in seeds]
        n = len(rngs)
    m = config.n_npcs

    x = np.zeros((n, 1 + m))
    y = np.zeros((n, 1 + m))
    yaw = np.zeros((n, 1 + m))
    speed = np.zeros((n, 1 + m))
    npc_lane = np.zeros((n, m), dtype=int)
    npc_target_speed = np.zeros((n, m))

    ego_start_s = 10.0
    ego_position, ego_yaw = road.lane_center(config.ego_lane, ego_start_s)
    x[:, 0] = float(ego_position[0])
    y[:, 0] = float(ego_position[1])
    yaw[:, 0] = ego_yaw
    speed[:, 0] = config.ego_speed

    for i, rng in enumerate(rngs):
        for index in range(m):
            lane = config.npc_lanes[index % len(config.npc_lanes)]
            s = ego_start_s + config.first_npc_gap + index * config.npc_spacing
            npc_speed = config.npc_speed
            if rng is not None:
                s += float(
                    rng.uniform(-config.spawn_jitter, config.spawn_jitter)
                )
                npc_speed += float(
                    rng.uniform(-config.speed_jitter, config.speed_jitter)
                )
            s = float(np.clip(s, 0.0, road.length - 10.0))
            position, npc_yaw = road.lane_center(lane, s)
            col = 1 + index
            x[i, col] = float(position[0])
            y[i, col] = float(position[1])
            yaw[i, col] = npc_yaw
            speed[i, col] = max(npc_speed, 0.0)
            npc_lane[i, index] = lane
            npc_target_speed[i, index] = max(npc_speed, 0.0)

    return BatchWorld(
        road=road,
        config=config,
        x=x,
        y=y,
        yaw=yaw,
        speed=speed,
        npc_lane=npc_lane,
        npc_target_speed=npc_target_speed,
    )
