"""Checkpoint (de)serialization.

Checkpoints are ``.npz`` archives holding named float arrays plus one JSON
metadata blob under the reserved key ``__meta__``. They are the interchange
format between the training pipeline (``examples/train_all.py``), the
shipped artifacts in ``artifacts/`` and the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

_META_KEY = "__meta__"


def save_checkpoint(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict | None = None
) -> Path:
    """Write ``arrays`` and ``meta`` to ``path`` (suffix forced to ``.npz``).

    Returns the final path written.
    """
    path = Path(path).with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved for metadata")
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez(handle, **payload)
    return path


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns ``(arrays, meta)``. Raises ``FileNotFoundError`` if missing.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files if name != _META_KEY}
        if _META_KEY in data.files:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        else:
            meta = {}
    return arrays, meta
