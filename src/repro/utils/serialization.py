"""Checkpoint (de)serialization.

Checkpoints are ``.npz`` archives holding named float arrays plus one JSON
metadata blob under the reserved key ``__meta__``. They are the interchange
format between the training pipeline (``examples/train_all.py``), the
shipped artifacts in ``artifacts/`` and the benchmark harness.

Writes are **crash-safe**: :func:`save_checkpoint` serializes into a
same-directory temporary file, fsyncs it, and atomically renames it over
the target with ``os.replace``, so a SIGKILL or power loss mid-write
leaves either the previous checkpoint or the new one — never a torn
half-archive (the failure that corrupted the originally shipped
artifacts). Every checkpoint embeds a format version and a SHA-256
content checksum in its metadata; :func:`load_checkpoint` verifies the
checksum and raises :class:`CheckpointCorruptError` with an actionable
message on truncation or bit-rot instead of surfacing numpy's opaque
zipfile errors. Checkpoints written before the checksum era (format
version 1) still load, with a warning.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.telemetry.log import get_logger

log = get_logger("utils.serialization")

_META_KEY = "__meta__"
#: Reserved key inside the metadata JSON carrying format/integrity info.
_FORMAT_KEY = "__format__"

#: Format history: 1 = bare ``np.savez`` without integrity info (legacy,
#: read-only); 2 = atomic write + SHA-256 content checksum.
FORMAT_VERSION = 2


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file exists but cannot be trusted.

    Raised on truncated archives, checksum mismatches, and undecodable
    metadata. The message names the file and the repair options, so it is
    actionable from a traceback alone.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(
            f"checkpoint {self.path} is corrupt: {reason}. "
            "Restore it from the last good snapshot (see the checkpoint "
            "directory's rotation), regenerate it via "
            "examples/train_all.py, or audit the whole directory with "
            "`python -m repro.obsv verify-artifacts`."
        )


def checksum_arrays(arrays: dict[str, np.ndarray]) -> str:
    """Deterministic SHA-256 over array names, dtypes, shapes, and bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("ascii"))
        digest.update(repr(value.shape).encode("ascii"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def save_checkpoint(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict | None = None
) -> Path:
    """Atomically write ``arrays`` and ``meta`` to ``path`` (suffix ``.npz``).

    The archive is staged in a same-directory temporary file, fsynced,
    and renamed over ``path`` with ``os.replace`` — readers never observe
    a partially written checkpoint. Returns the final path written.
    """
    path = Path(path).with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved for metadata")
    meta = dict(meta or {})
    if _FORMAT_KEY in meta:
        raise ValueError(
            f"meta key {_FORMAT_KEY!r} is reserved for format/integrity info"
        )
    plan = faults.active_plan()
    if plan is not None:
        plan.on_checkpoint_write(path)
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    meta[_FORMAT_KEY] = {
        "version": FORMAT_VERSION,
        "checksum": f"sha256:{checksum_arrays(payload)}",
        "arrays": len(payload),
    }
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_checkpoint(
    path: str | Path, verify: bool = True
) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns ``(arrays, meta)``. Raises ``FileNotFoundError`` if missing
    and :class:`CheckpointCorruptError` if the archive is truncated,
    undecodable, or fails its content checksum (``verify=False`` skips
    the checksum recomputation, not the structural checks). Legacy
    checkpoints without integrity metadata load with a warning.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {
                name: data[name] for name in data.files if name != _META_KEY
            }
            if _META_KEY in data.files:
                meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
            else:
                meta = {}
    except (zipfile.BadZipFile, ValueError, EOFError, OSError, KeyError) as exc:
        raise CheckpointCorruptError(
            path, f"unreadable archive ({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(meta, dict):
        raise CheckpointCorruptError(path, "metadata is not a JSON object")
    fmt = meta.pop(_FORMAT_KEY, None)
    if fmt is None:
        log.warning(
            "checkpoint.legacy_format", path=str(path),
            detail="no checksum; written before format v2",
        )
        return arrays, meta
    if verify:
        expected = str(fmt.get("checksum", ""))
        actual = f"sha256:{checksum_arrays(arrays)}"
        if expected != actual:
            raise CheckpointCorruptError(
                path,
                f"content checksum mismatch (stored {expected or '<missing>'}"
                f", computed {actual})",
            )
    return arrays, meta


@dataclass(frozen=True)
class CheckpointReport:
    """Outcome of auditing one ``.npz`` checkpoint file."""

    path: Path
    ok: bool
    legacy: bool
    arrays: int
    size: int
    reason: str = ""

    @property
    def status(self) -> str:
        if not self.ok:
            return "CORRUPT"
        return "legacy" if self.legacy else "ok"


def verify_checkpoint(path: str | Path) -> CheckpointReport:
    """Audit one checkpoint: structure, metadata, and content checksum."""
    path = Path(path)
    size = path.stat().st_size if path.exists() else 0
    try:
        arrays, _ = load_checkpoint(path)
        # Loadable: distinguish checksummed (v2) from legacy by re-reading
        # the raw metadata blob (load_checkpoint strips the format key).
        with np.load(path, allow_pickle=False) as data:
            legacy = True
            if _META_KEY in data.files:
                meta = json.loads(
                    bytes(data[_META_KEY].tobytes()).decode("utf-8")
                )
                legacy = not (
                    isinstance(meta, dict) and _FORMAT_KEY in meta
                )
    except FileNotFoundError:
        return CheckpointReport(path, False, False, 0, 0, "missing")
    except CheckpointCorruptError as error:
        return CheckpointReport(path, False, False, 0, size, error.reason)
    except (ValueError, OSError) as error:
        return CheckpointReport(path, False, False, 0, size, str(error))
    return CheckpointReport(path, True, legacy, len(arrays), size)
