"""Deterministic random-number streams.

Every stochastic component in the library draws from a named child stream of
a single root seed, so whole experiments replay bit-identically from one
integer while components stay statistically independent.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of named, independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(7)
    >>> a = streams.get("traffic").integers(0, 100)
    >>> b = RngStreams(7).get("traffic").integers(0, 100)
    >>> int(a) == int(b)
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use."""
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """An indexed generator, e.g. one per episode: ``spawn('episode', 3)``."""
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(_stable_hash(name), int(index)),
        )
        return np.random.default_rng(child)


def _stable_hash(name: str) -> int:
    """A process-independent 32-bit hash of ``name`` (``hash()`` is salted)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) % (1 << 32)
    return value


def seed_everything(seed: int) -> RngStreams:
    """Seed numpy's legacy global state and return fresh :class:`RngStreams`."""
    np.random.seed(seed % (1 << 32))
    return RngStreams(seed)
