"""Shared utilities: geometry, random streams, configuration, checkpoints."""

from repro.utils.geometry import (
    OrientedBox,
    normalize_angle,
    rotate,
    unit,
)
from repro.utils.rng import RngStreams, seed_everything
from repro.utils.serialization import load_checkpoint, save_checkpoint

__all__ = [
    "OrientedBox",
    "normalize_angle",
    "rotate",
    "unit",
    "RngStreams",
    "seed_everything",
    "load_checkpoint",
    "save_checkpoint",
]
