"""2D geometry primitives used by the driving simulator.

Everything operates on plain ``numpy`` arrays in a right-handed world frame:
``x`` forward/east, ``y`` left/north, yaw measured counter-clockwise from the
``x`` axis in radians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

TWO_PI = 2.0 * math.pi


def normalize_angle(angle: float) -> float:
    """Wrap an angle to the interval ``[-pi, pi)``.

    >>> normalize_angle(math.pi)
    -3.141592653589793
    >>> normalize_angle(0.0)
    0.0
    """
    return (angle + math.pi) % TWO_PI - math.pi


def angle_diff(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` wrapped to ``[-pi, pi)``."""
    return normalize_angle(a - b)


def rotate(points: np.ndarray, yaw: float) -> np.ndarray:
    """Rotate ``points`` (shape ``(..., 2)``) counter-clockwise by ``yaw``."""
    c, s = math.cos(yaw), math.sin(yaw)
    rot = np.array([[c, -s], [s, c]])
    return points @ rot.T


def unit(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to unit length (zero vector is returned as-is)."""
    norm = float(np.linalg.norm(vector))
    if norm < 1e-12:
        return np.zeros_like(vector)
    return vector / norm


def heading_vector(yaw: float) -> np.ndarray:
    """Unit vector pointing along ``yaw``."""
    return np.array([math.cos(yaw), math.sin(yaw)])


@dataclass(frozen=True)
class OrientedBox:
    """An oriented rectangle: vehicle footprints and collision queries.

    Attributes:
        center: world-frame ``(x, y)`` of the box center.
        yaw: heading of the box's long axis, radians.
        length: extent along the heading axis (meters).
        width: extent across the heading axis (meters).
    """

    center: tuple[float, float]
    yaw: float
    length: float
    width: float

    def corners(self) -> np.ndarray:
        """The four corners, shape ``(4, 2)``, counter-clockwise from front-left."""
        half_l, half_w = self.length / 2.0, self.width / 2.0
        local = np.array(
            [
                [half_l, half_w],
                [-half_l, half_w],
                [-half_l, -half_w],
                [half_l, -half_w],
            ]
        )
        return rotate(local, self.yaw) + np.asarray(self.center)

    def axes(self) -> np.ndarray:
        """The two face normals (unit vectors), shape ``(2, 2)``."""
        return np.array(
            [heading_vector(self.yaw), heading_vector(self.yaw + math.pi / 2.0)]
        )

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the box."""
        rel = np.asarray(point, dtype=float) - np.asarray(self.center)
        local = rotate(rel[None, :], -self.yaw)[0]
        return bool(
            abs(local[0]) <= self.length / 2.0 + 1e-12
            and abs(local[1]) <= self.width / 2.0 + 1e-12
        )

    def intersects(self, other: "OrientedBox") -> bool:
        """Separating-axis test between two oriented boxes."""
        corners_a, corners_b = self.corners(), other.corners()
        for axis in np.concatenate([self.axes(), other.axes()]):
            proj_a = corners_a @ axis
            proj_b = corners_b @ axis
            if proj_a.max() < proj_b.min() or proj_b.max() < proj_a.min():
                return False
        return True

    def to_local(self, point: np.ndarray) -> np.ndarray:
        """Express a world-frame ``point`` in this box's body frame."""
        rel = np.asarray(point, dtype=float) - np.asarray(self.center)
        return rotate(rel[None, :], -self.yaw)[0]


def polyline_arclength(points: np.ndarray) -> np.ndarray:
    """Cumulative arc-length of a polyline, shape ``(n,)`` starting at 0."""
    deltas = np.diff(points, axis=0)
    seg = np.hypot(deltas[:, 0], deltas[:, 1])
    return np.concatenate([[0.0], np.cumsum(seg)])


def project_to_polyline(
    point: np.ndarray, points: np.ndarray, arclength: np.ndarray
) -> tuple[float, float, float]:
    """Project ``point`` onto a polyline.

    Args:
        point: the ``(x, y)`` query.
        points: the polyline vertices, shape ``(n, 2)``.
        arclength: output of :func:`polyline_arclength` for ``points``.

    Returns:
        ``(s, d, tangent_yaw)`` — arc-length position of the foot point,
        signed lateral offset (positive to the left of travel direction)
        and the tangent heading at the foot point.
    """
    pt = np.asarray(point, dtype=float)
    starts = points[:-1]
    ends = points[1:]
    seg = ends - starts
    seg_len2 = np.einsum("ij,ij->i", seg, seg)
    seg_len2 = np.maximum(seg_len2, 1e-12)
    t = np.einsum("ij,ij->i", pt - starts, seg) / seg_len2
    t = np.clip(t, 0.0, 1.0)
    foot = starts + t[:, None] * seg
    dist2 = np.einsum("ij,ij->i", pt - foot, pt - foot)
    idx = int(np.argmin(dist2))
    tangent = seg[idx] / math.sqrt(seg_len2[idx])
    normal = np.array([-tangent[1], tangent[0]])
    offset = pt - foot[idx]
    s = arclength[idx] + t[idx] * math.sqrt(seg_len2[idx])
    d = float(offset @ normal)
    yaw = math.atan2(tangent[1], tangent[0])
    return float(s), d, yaw


def interpolate_polyline(
    s: float, points: np.ndarray, arclength: np.ndarray
) -> tuple[np.ndarray, float]:
    """Point and tangent heading at arc-length ``s`` along a polyline.

    ``s`` is clamped to the polyline's extent.
    """
    total = float(arclength[-1])
    s = min(max(s, 0.0), total)
    idx = int(np.searchsorted(arclength, s, side="right") - 1)
    idx = min(max(idx, 0), len(points) - 2)
    seg_start, seg_end = arclength[idx], arclength[idx + 1]
    span = max(seg_end - seg_start, 1e-12)
    t = (s - seg_start) / span
    position = points[idx] * (1.0 - t) + points[idx + 1] * t
    direction = points[idx + 1] - points[idx]
    yaw = math.atan2(direction[1], direction[0])
    return position, yaw
