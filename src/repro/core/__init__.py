"""The paper's contribution: learning-based action-space attacks.

Adversarial reward shaping (Section IV-D/E), the injection channel
(Section IV-B/C), camera/IMU adversarial state spaces, the adversarial MDP
used for SAC attack training, and the attackers themselves (scripted
oracle baseline and the learned policy).
"""

from repro.core.attack_env import AttackEnv, VictimFactory
from repro.core.attackers import (
    ATTACKER_HIDDEN,
    LearnedAttacker,
    NullAttacker,
    OracleAttacker,
)
from repro.core.injection import InjectionChannel, InjectionChannelConfig
from repro.core.observations import CameraAttackObservation, ImuAttackObservation
from repro.core.rewards import (
    BETA,
    AdversarialBreakdown,
    AdversarialReward,
    AdversarialRewardConfig,
    collision_label,
    critical_moment,
)

__all__ = [
    "ATTACKER_HIDDEN",
    "AttackEnv",
    "AdversarialBreakdown",
    "AdversarialReward",
    "AdversarialRewardConfig",
    "BETA",
    "CameraAttackObservation",
    "ImuAttackObservation",
    "InjectionChannel",
    "InjectionChannelConfig",
    "LearnedAttacker",
    "NullAttacker",
    "OracleAttacker",
    "VictimFactory",
    "collision_label",
    "critical_moment",
]
