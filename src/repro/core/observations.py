"""Adversarial state spaces (Section IV-C).

Two sensor options for the attacker:

* **Camera** — a roof-mounted semantic-segmentation camera with a wide
  field of view: informative (sees nearby NPC vehicles directly) but
  conspicuous. Encoded exactly like the driver's camera: a 3-frame stack
  of bird's-eye semantic grids.
* **IMU** — a hidden triaxial IMU: covert but indirect. Encoded as the
  rolling 3.2 s trace of longitudinal acceleration and yaw rate at 20 sps
  (64 samples x 2 channels).
"""

from __future__ import annotations

import numpy as np

from repro.agents.e2e.observation import POLICY_CAMERA
from repro.sensors.base import FrameStack, Sensor
from repro.sensors.camera import BevCamera, BevCameraConfig
from repro.sensors.imu import Imu, ImuConfig
from repro.sensors.noise import NoiseModel
from repro.sim.world import World


class CameraAttackObservation(Sensor):
    """s^img: stacked bird's-eye semantic frames from the extra camera."""

    def __init__(
        self,
        camera_config: BevCameraConfig | None = None,
        frames: int = 3,
    ) -> None:
        self._stack = FrameStack(
            BevCamera(camera_config or POLICY_CAMERA), k=frames
        )

    def observe(self, world: World) -> np.ndarray:
        return self._stack.observe(world)

    def observe_batch(self, batch) -> np.ndarray:
        return self._stack.observe_batch(batch)

    def reset(self) -> None:
        self._stack.reset()

    @property
    def observation_dim(self) -> int:
        return self._stack.observation_dim


class ImuAttackObservation(Sensor):
    """s^imu: the rolling inertial trace from the hidden IMU."""

    def __init__(
        self,
        imu_config: ImuConfig | None = None,
        noise: NoiseModel | None = None,
        #: Scales raw accelerations/rates into roughly [-1, 1] for the MLP.
        accel_scale: float = 8.0,
        yaw_rate_scale: float = 0.5,
    ) -> None:
        self._imu = Imu(imu_config or ImuConfig(), noise=noise)
        self.accel_scale = float(accel_scale)
        self.yaw_rate_scale = float(yaw_rate_scale)

    def observe(self, world: World) -> np.ndarray:
        trace = self._imu.observe(world)
        window = self._imu.config.window
        scaled = trace.copy()
        scaled[:window] /= self.accel_scale
        scaled[window:] /= self.yaw_rate_scale
        return scaled

    def reset(self) -> None:
        self._imu.reset()

    @property
    def observation_dim(self) -> int:
        return self._imu.observation_dim
