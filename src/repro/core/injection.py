"""The action-space injection channel (Sections IV-B and IV-C).

Models the physical pathway the paper describes — CAN-bus message
manipulation or intentional electromagnetic interference (IEMI) on the
steering servo's analog line — as an additive perturbation of the steering
*variation* ``nu`` before the mechanical clamp:

    nu' = clip(nu + delta, -eps_mech, eps_mech),   delta in [-budget, budget]

The channel owns the attack *budget* (the paper's ``epsilon``), converts a
normalized policy output in ``[-1, 1]`` to a physical perturbation, and can
optionally model channel imperfections (quantization of CAN payloads,
zero-mean analog noise for IEMI).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.config import EPSILON_MECH

#: Smallest |delta| that counts as a meaningful injection: below this the
#: attacker is considered to be lurking (used for the attack-effort
#: denominator and for dating attack initiation).
ACTIVE_THRESHOLD = 0.05


@dataclass(frozen=True)
class InjectionChannelConfig:
    """Physical properties of the injection pathway."""

    #: Attack budget epsilon: max |delta| injectable per step.
    budget: float = 1.0
    #: Quantization step of the injected value (CAN payloads are discrete);
    #: 0 disables quantization.
    quantization: float = 0.0
    #: Std of zero-mean analog noise on the injected value (IEMI); 0 = none.
    noise_std: float = 0.0

    def __post_init__(self) -> None:
        if self.budget < 0.0 or self.budget > 1.5 * EPSILON_MECH:
            raise ValueError(
                f"budget must be in [0, {1.5 * EPSILON_MECH}], got {self.budget}"
            )
        if self.quantization < 0.0 or self.noise_std < 0.0:
            raise ValueError("quantization and noise_std must be non-negative")


class InjectionChannel:
    """Converts normalized attack actions into physical steering deltas."""

    def __init__(
        self,
        config: InjectionChannelConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or InjectionChannelConfig()
        self.rng = rng or np.random.default_rng(0)
        #: Total |delta| injected since the last reset.
        self.total_effort = 0.0
        self.steps = 0
        #: Steps with a non-negligible injection (the "attack attempt"),
        #: and the |delta| injected during those steps (the numerator of
        #: the paper's *attack effort* metric).
        self.active_steps = 0
        self.active_effort = 0.0

    def reset(self) -> None:
        self.total_effort = 0.0
        self.steps = 0
        self.active_steps = 0
        self.active_effort = 0.0

    @property
    def budget(self) -> float:
        return self.config.budget

    def inject(self, normalized_action: float) -> float:
        """Physical steering perturbation for a policy output in [-1, 1]."""
        cfg = self.config
        delta = float(np.clip(normalized_action, -1.0, 1.0)) * cfg.budget
        if cfg.quantization > 0.0:
            delta = round(delta / cfg.quantization) * cfg.quantization
        if cfg.noise_std > 0.0:
            delta += float(self.rng.normal(0.0, cfg.noise_std))
        delta = float(np.clip(delta, -cfg.budget, cfg.budget))
        self.total_effort += abs(delta)
        self.steps += 1
        if abs(delta) > ACTIVE_THRESHOLD:
            self.active_steps += 1
            self.active_effort += abs(delta)
        return delta

    @property
    def mean_effort(self) -> float:
        """Mean |delta| over the steps of the attack attempt (Fig. 5 x-axis).

        Per Section V-B the effort is "the total amount of perturbation
        injected during the attack attempt ... averaged over the number of
        steps in each attack attempt" — i.e. the average over the steps in
        which the attacker actually injected, not over the whole episode.
        Sub-threshold (lurking) perturbations count toward neither the
        numerator nor the denominator, so the mean never exceeds the budget.
        """
        if self.active_steps == 0:
            return 0.0
        return self.active_effort / self.active_steps


class BatchInjectionChannel:
    """N independent :class:`InjectionChannel` lanes advanced per tick.

    Lane ``i`` reproduces a scalar channel fed episode ``i``'s actions:
    the clip → quantize → noise → clip pipeline and the effort
    bookkeeping all evaluate per row. Finished episodes are excluded via
    the ``active`` mask — neither their noise streams nor their effort
    counters advance, matching a scalar channel that simply stops being
    called.
    """

    def __init__(
        self,
        config: InjectionChannelConfig | None = None,
        n: int = 1,
        rngs: list[np.random.Generator] | None = None,
    ) -> None:
        self.config = config or InjectionChannelConfig()
        self.n = int(n)
        if rngs is not None and len(rngs) != self.n:
            raise ValueError(
                f"need one rng per lane: got {len(rngs)} for n={self.n}"
            )
        self.rngs = rngs
        self.total_effort = np.zeros(self.n)
        self.steps = np.zeros(self.n, dtype=np.int64)
        self.active_steps = np.zeros(self.n, dtype=np.int64)
        self.active_effort = np.zeros(self.n)

    def reset(self) -> None:
        self.total_effort[:] = 0.0
        self.steps[:] = 0
        self.active_steps[:] = 0
        self.active_effort[:] = 0.0

    @property
    def budget(self) -> float:
        return self.config.budget

    def inject(
        self, normalized_actions: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Per-episode perturbations for policy outputs in [-1, 1], ``[N]``.

        Rows where ``active`` is False return 0 and leave all bookkeeping
        (and noise generators) untouched.
        """
        cfg = self.config
        delta = np.clip(normalized_actions, -1.0, 1.0) * cfg.budget
        if cfg.quantization > 0.0:
            delta = np.round(delta / cfg.quantization) * cfg.quantization
        if cfg.noise_std > 0.0:
            if self.rngs is None:
                raise ValueError("noise_std > 0 requires per-lane rngs")
            for i in np.flatnonzero(active):
                delta[i] += float(self.rngs[i].normal(0.0, cfg.noise_std))
        delta = np.clip(delta, -cfg.budget, cfg.budget)
        delta = np.where(active, delta, 0.0)
        magnitude = np.abs(delta)
        self.total_effort[active] += magnitude[active]
        self.steps[active] += 1
        hot = active & (magnitude > ACTIVE_THRESHOLD)
        self.active_steps[hot] += 1
        self.active_effort[hot] += magnitude[hot]
        return delta

    @property
    def mean_effort(self) -> np.ndarray:
        """Per-episode mean |delta| over active steps (0 where none)."""
        return np.where(
            self.active_steps > 0,
            self.active_effort / np.maximum(self.active_steps, 1),
            0.0,
        )
