"""Attack policies: the scripted oracle baseline and the learned attacker.

Every attacker implements the :class:`~repro.agents.e2e.env.SteerInjector`
protocol — ``reset(world)`` then ``delta(world, control)`` once per tick —
so victims and evaluation protocols never see attack internals.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.injection import (
    BatchInjectionChannel,
    InjectionChannel,
    InjectionChannelConfig,
)
from repro.core.observations import CameraAttackObservation, ImuAttackObservation
from repro.core.rewards import BETA, _omega, _omega_batch
from repro.rl.policy import SquashedGaussianPolicy
from repro.sensors.base import Sensor
from repro.sim.vehicle import Control
from repro.sim.world import World
from repro.utils.serialization import load_checkpoint, save_checkpoint

#: Hidden widths used by all shipped attack policies.
ATTACKER_HIDDEN = (128, 128)


class NullAttacker:
    """No attack: the epsilon = 0 baseline."""

    name = "none"
    budget = 0.0

    def reset(self, world: World) -> None:
        """Nothing to prepare."""

    def delta(self, world: World, control: Control) -> float:
        return 0.0

    @property
    def mean_effort(self) -> float:
        return 0.0


class OracleAttacker:
    """Geometry-aware scripted attacker (model-based baseline).

    Uses privileged world state: inside the critical window of Section IV-D
    it steers the ego toward the nearest NPC at full budget; outside it
    stays silent. Serves both as the comparison baseline and as the
    behaviour-cloning teacher that warm-starts the learned camera attacker.
    """

    name = "oracle"

    def __init__(
        self,
        budget: float = 1.0,
        beta: float = BETA,
        #: Only act when the target NPC is within this range, meters.
        max_range: float = 25.0,
    ) -> None:
        self.channel = InjectionChannel(InjectionChannelConfig(budget=budget))
        self.beta = float(beta)
        self.max_range = float(max_range)

    @property
    def budget(self) -> float:
        return self.channel.budget

    @property
    def mean_effort(self) -> float:
        return self.channel.mean_effort

    def reset(self, world: World) -> None:
        self.channel.reset()

    def normalized_action(self, world: World) -> float:
        """The oracle's decision in [-1, 1] (before budget scaling)."""
        npc = world.nearest_npc()
        if npc is None:
            return 0.0
        ego = world.ego
        offset = npc.vehicle.state.position - ego.state.position
        if float(np.linalg.norm(offset)) > self.max_range:
            return 0.0
        omega = _omega(world)
        if omega is None or abs(omega) > self.beta:
            return 0.0
        # Steer toward the target: positive steer turns right (toward
        # negative lateral offsets in the ego frame).
        local = ego.footprint().to_local(npc.vehicle.state.position)
        return -1.0 if local[1] > 0.0 else 1.0

    def delta(self, world: World, control: Control) -> float:
        return self.channel.inject(self.normalized_action(world))


class LearnedAttacker:
    """A DRL attack policy behind a sensor and the injection channel."""

    def __init__(
        self,
        policy: SquashedGaussianPolicy,
        sensor: Sensor,
        channel: InjectionChannel | None = None,
        name: str = "learned",
        deterministic: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.policy = policy
        self.sensor = sensor
        self.channel = channel or InjectionChannel()
        self.name = name
        self.deterministic = deterministic
        self.rng = rng or np.random.default_rng(0)

    @property
    def budget(self) -> float:
        return self.channel.budget

    @property
    def mean_effort(self) -> float:
        return self.channel.mean_effort

    def with_budget(self, budget: float) -> "LearnedAttacker":
        """A copy of this attacker operating under a different budget."""
        return LearnedAttacker(
            policy=self.policy,
            sensor=self.sensor,
            channel=InjectionChannel(InjectionChannelConfig(budget=budget)),
            name=self.name,
            deterministic=self.deterministic,
            rng=self.rng,
        )

    def reset(self, world: World) -> None:
        self.sensor.reset()
        self.channel.reset()

    def normalized_action(self, world: World) -> float:
        obs = self.sensor.observe(world)
        action = self.policy.act(
            obs, deterministic=self.deterministic, rng=self.rng
        )
        return float(action[0])

    def delta(self, world: World, control: Control) -> float:
        return self.channel.inject(self.normalized_action(world))

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path, extra_meta: dict | None = None) -> Path:
        meta = {
            "kind": f"attacker-{self.name}",
            "obs_dim": self.policy.obs_dim,
            "action_dim": self.policy.action_dim,
            "hidden": list(self.policy.hidden),
            "sensor": type(self.sensor).__name__,
        }
        meta.update(extra_meta or {})
        return save_checkpoint(path, self.policy.state_dict(), meta)

    @classmethod
    def load(
        cls, path: str | Path, budget: float = 1.0, **kwargs
    ) -> "LearnedAttacker":
        """Restore an attacker; the sensor is rebuilt from metadata."""
        arrays, meta = load_checkpoint(path)
        policy = SquashedGaussianPolicy(
            int(meta["obs_dim"]),
            int(meta["action_dim"]),
            tuple(meta.get("hidden", ATTACKER_HIDDEN)),
        )
        policy.load_state_dict(arrays)
        sensor_name = meta.get("sensor", "CameraAttackObservation")
        if sensor_name == "ImuAttackObservation":
            sensor: Sensor = ImuAttackObservation()
            name = "imu"
        else:
            sensor = CameraAttackObservation()
            name = "camera"
        return cls(
            policy,
            sensor,
            channel=InjectionChannel(InjectionChannelConfig(budget=budget)),
            name=meta.get("name", name),
            **kwargs,
        )


# -- batched twins ---------------------------------------------------------------
#
# Each scalar attacker has a lockstep counterpart exposing
# ``deltas(batch) -> [N]`` (called once per tick, before ``batch.tick``).
# Rows that are already done inject 0 and freeze their effort bookkeeping,
# so per-episode statistics match a scalar run of the same seed.


class BatchNullAttacker:
    """Batched epsilon = 0 baseline."""

    name = "none"
    budget = 0.0

    def __init__(self, n: int) -> None:
        self.n = int(n)

    def deltas(self, batch) -> np.ndarray:
        return np.zeros(self.n)

    @property
    def mean_effort(self) -> np.ndarray:
        return np.zeros(self.n)


class BatchOracleAttacker:
    """Vectorized :class:`OracleAttacker`: one geometry pass for N episodes."""

    name = "oracle"

    def __init__(
        self,
        n: int,
        budget: float = 1.0,
        beta: float = BETA,
        max_range: float = 25.0,
    ) -> None:
        self.channel = BatchInjectionChannel(
            InjectionChannelConfig(budget=budget), n=n
        )
        self.beta = float(beta)
        self.max_range = float(max_range)

    @property
    def budget(self) -> float:
        return self.channel.budget

    @property
    def mean_effort(self) -> np.ndarray:
        return self.channel.mean_effort

    def normalized_actions(self, batch) -> np.ndarray:
        """The oracle's per-episode decisions in [-1, 1]."""
        if batch.m == 0:
            return np.zeros(batch.n)
        rows = np.arange(batch.n)
        j = batch.nearest_npc_index()
        offset = batch.npc_positions[rows, j] - batch.ego_position
        dist = np.sqrt(np.einsum("nj,nj->n", offset, offset))
        omega, _, has_dir = _omega_batch(batch)
        window = (
            (dist <= self.max_range) & has_dir & (np.abs(omega) <= self.beta)
        )
        # Ego-frame lateral offset of the target (footprint().to_local y).
        yaw = batch.yaw[:, 0]
        local_y = -offset[:, 0] * np.sin(yaw) + offset[:, 1] * np.cos(yaw)
        side = np.where(local_y > 0.0, -1.0, 1.0)
        return np.where(window, side, 0.0)

    def deltas(self, batch) -> np.ndarray:
        return self.channel.inject(self.normalized_actions(batch), ~batch.done)


class BatchLearnedAttacker:
    """Batched deterministic rollout of a :class:`LearnedAttacker`.

    Rebuilds the camera observation pipeline with batch support and runs
    the policy through its fused inference plan. Only deterministic
    camera attackers are supported: the IMU trace sensor has no batched
    observation path, and stochastic evaluation is done on the scalar
    path where noise streams are per-episode by construction.
    """

    def __init__(self, attacker: LearnedAttacker, n: int) -> None:
        sensor = attacker.sensor
        if not isinstance(sensor, CameraAttackObservation):
            raise TypeError(
                "batched attack rollout requires a camera sensor; "
                f"got {type(sensor).__name__}"
            )
        if not attacker.deterministic:
            raise TypeError(
                "batched attack rollout supports deterministic policies only"
            )
        self.name = attacker.name
        self.policy = attacker.policy
        self.sensor = CameraAttackObservation(
            camera_config=sensor._stack.inner.config,
            frames=sensor._stack.k,
        )
        self.channel = BatchInjectionChannel(attacker.channel.config, n=n)
        self.plan = self.policy.inference_plan(n)

    @property
    def budget(self) -> float:
        return self.channel.budget

    @property
    def mean_effort(self) -> np.ndarray:
        return self.channel.mean_effort

    def normalized_actions(self, batch) -> np.ndarray:
        obs = self.sensor.observe_batch(batch)
        actions = self.policy.act_batch(
            obs, deterministic=True, plan=self.plan
        )
        return actions[:, 0]

    def deltas(self, batch) -> np.ndarray:
        return self.channel.inject(self.normalized_actions(batch), ~batch.done)


def as_batch_attacker(attacker, batch):
    """The lockstep twin of a scalar attacker, sized for ``batch``.

    Raises :class:`TypeError` for attackers with no batched path (IMU
    sensors, stochastic policies, custom injectors).
    """
    if attacker is None or isinstance(attacker, NullAttacker):
        return BatchNullAttacker(batch.n)
    if isinstance(attacker, OracleAttacker):
        return BatchOracleAttacker(
            batch.n,
            budget=attacker.budget,
            beta=attacker.beta,
            max_range=attacker.max_range,
        )
    if isinstance(attacker, LearnedAttacker):
        return BatchLearnedAttacker(attacker, batch.n)
    raise TypeError(
        f"no batched twin for attacker type {type(attacker).__name__}"
    )
