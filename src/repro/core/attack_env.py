"""The adversarial MDP (Fig. 2): training environment for attack policies.

The attacker is the RL agent; the fixed victim driving agent and the world
form the environment's (stationary) dynamics. Each step the attacker emits
a normalized perturbation in ``[-1, 1]``; the channel scales it to the
budget, the victim acts, the world ticks, and the adversarial reward of
Section IV-D scores the outcome.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.agents.base import DrivingAgent
from repro.core.attackers import LearnedAttacker
from repro.core.injection import InjectionChannel, InjectionChannelConfig
from repro.core.rewards import AdversarialReward, AdversarialRewardConfig
from repro.sensors.base import Sensor
from repro.sim.collision import CollisionKind
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.sim.world import World

#: Builds a fresh victim for a world (called once per episode).
VictimFactory = Callable[[World], DrivingAgent]


class AttackEnv:
    """Gym-like adversarial environment around a fixed victim agent."""

    action_dim = 1

    def __init__(
        self,
        victim_factory: VictimFactory,
        sensor: Sensor,
        budget: float = 1.0,
        reward_config: AdversarialRewardConfig | None = None,
        scenario: ScenarioConfig | None = None,
        rng: np.random.Generator | None = None,
        teacher: LearnedAttacker | None = None,
    ) -> None:
        """Args:
            victim_factory: builds the (fixed) victim per episode.
            sensor: the adversarial state space (camera or IMU encoder).
            budget: the attack budget epsilon used during training.
            teacher: optional camera attacker whose action supplies the
                ``p_se`` learning-from-teacher term (Section IV-E).
        """
        self.victim_factory = victim_factory
        self.sensor = sensor
        self.channel = InjectionChannel(InjectionChannelConfig(budget=budget))
        self.reward = AdversarialReward(reward_config)
        self.scenario = scenario or ScenarioConfig()
        self.rng = rng or np.random.default_rng(0)
        self.teacher = teacher
        self.world: World | None = None
        self.victim: DrivingAgent | None = None

    @property
    def observation_dim(self) -> int:
        return self.sensor.observation_dim

    def reset(self) -> np.ndarray:
        self.world = make_world(self.scenario, rng=self.rng)
        self.victim = self.victim_factory(self.world)
        self.victim.reset(self.world)
        self.sensor.reset()
        self.channel.reset()
        if self.teacher is not None:
            self.teacher.reset(self.world)
        return self.sensor.observe(self.world)

    def step(self, action: np.ndarray) -> tuple[np.ndarray, float, bool, dict]:
        """One adversarial step: victim acts, perturbation is injected."""
        if self.world is None:
            raise RuntimeError("call reset() before step()")
        world = self.world
        teacher_delta = None
        if self.teacher is not None:
            teacher_delta = self.teacher.delta(world, None)
        control = self.victim.act(world)
        delta = self.channel.inject(float(np.atleast_1d(action)[0]))
        result = world.tick(control, steer_delta=delta)
        breakdown = self.reward.step(
            world, delta, result.collision, teacher_delta=teacher_delta
        )
        obs = self.sensor.observe(world)
        info = {
            "collision": result.collision,
            "side_collision": (
                result.collision is not None
                and result.collision.kind is CollisionKind.SIDE
            ),
            "breakdown": breakdown,
            "delta": delta,
            "teacher_delta": teacher_delta,
            "mean_effort": self.channel.mean_effort,
            "step": result.step,
            "truncated": result.done and result.collision is None,
        }
        return obs, breakdown.total, result.done, info
