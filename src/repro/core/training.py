"""Training pipelines for the attack policies (Sections IV-D and IV-E).

* **Camera attacker** — behaviour-cloned from the scripted oracle (the
  model-based baseline), then refined with SAC on the adversarial reward
  ``R_adv`` in the black-box adversarial MDP. The refined policy is kept
  only if it improves the mean cumulative adversarial reward.
* **IMU attacker** — 'learning-from-teacher' (Section IV-E): the camera
  policy drives the attack while the student records IMU traces and the
  teacher's actions; the student is distilled supervised, then optionally
  refined with SAC on ``R_adv^IMU`` (which adds the ``p_se`` discrepancy
  term against the teacher).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attack_env import AttackEnv, VictimFactory
from repro.core.attackers import (
    ATTACKER_HIDDEN,
    LearnedAttacker,
    OracleAttacker,
)
from repro.core.injection import InjectionChannel, InjectionChannelConfig
from repro.core.observations import CameraAttackObservation, ImuAttackObservation
from repro.eval.episodes import run_episodes
from repro.eval.metrics import success_rate
from repro.rl.bc import BcConfig, BehaviorCloner
from repro.rl.checkpoint import SacLoopGuard
from repro.rl.health import HealthEmitter
from repro.rl.policy import SquashedGaussianPolicy
from repro.rl.sac import Sac, SacConfig
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.telemetry.log import get_logger
from repro.telemetry.spans import span
from repro.telemetry.trace import TraceWriter, default_writer

log = get_logger("core.training")


@dataclass
class AttackTrainConfig:
    """Budgets and hyper-parameters for attacker training."""

    bc_episodes: int = 30
    bc: BcConfig = field(default_factory=lambda: BcConfig(epochs=30))
    sac_steps: int = 6_000
    sac: SacConfig = field(
        default_factory=lambda: SacConfig(
            hidden=ATTACKER_HIDDEN,
            batch_size=128,
            buffer_capacity=40_000,
            start_steps=0,
            actor_lr=2e-5,
            critic_lr=3e-4,
            alpha=0.005,
            autotune_alpha=False,
            update_every=2,
            actor_delay=1_500,
        )
    )
    #: Attack budget used during training (evaluation sweeps re-scale it).
    budget: float = 1.0
    #: Independent BC fits (different init seeds); the best by evaluated
    #: adversarial return is kept. Behaviour cloning of the bang-bang
    #: oracle is cheap but init-sensitive, so restarts buy robustness.
    bc_restarts: int = 3
    eval_episodes: int = 8
    seed: int = 0


def collect_oracle_demonstrations(
    victim_factory: VictimFactory,
    n_episodes: int,
    rng: np.random.Generator,
    scenario: ScenarioConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Oracle attack rollouts recorded through the camera sensor.

    Returns ``(observations, normalized_actions)`` where actions are the
    oracle's decisions in ``[-1, 1]``.
    """
    scenario = scenario or ScenarioConfig()
    sensor = CameraAttackObservation()
    observations: list[np.ndarray] = []
    actions: list[float] = []
    for _ in range(n_episodes):
        world = make_world(scenario, rng=rng)
        victim = victim_factory(world)
        victim.reset(world)
        oracle = OracleAttacker(budget=1.0)
        oracle.reset(world)
        sensor.reset()
        while not world.done:
            obs = sensor.observe(world)
            action = oracle.normalized_action(world)
            observations.append(obs)
            actions.append(action)
            control = victim.act(world)
            world.tick(control, steer_delta=oracle.channel.inject(action))
    return np.asarray(observations), np.asarray(actions)[:, None]


def evaluate_attacker(
    attacker: LearnedAttacker,
    victim_factory: VictimFactory,
    n_episodes: int = 8,
    seed: int = 5_000,
) -> dict[str, float]:
    """Success rate and mean adversarial return over fresh episodes."""
    results = run_episodes(
        victim_factory,
        attacker_factory=lambda: attacker,
        n_episodes=n_episodes,
        seed=seed,
    )
    return {
        "success_rate": success_rate(results),
        "mean_adversarial_return": float(
            np.mean([r.adversarial_return for r in results])
        ),
        "mean_nominal_return": float(
            np.mean([r.nominal_return for r in results])
        ),
    }


def _make_attacker(
    policy: SquashedGaussianPolicy, sensor, budget: float, name: str
) -> LearnedAttacker:
    return LearnedAttacker(
        policy,
        sensor,
        channel=InjectionChannel(InjectionChannelConfig(budget=budget)),
        name=name,
    )


def _fit_best_of(
    observations: np.ndarray,
    actions: np.ndarray,
    sensor,
    victim_factory: VictimFactory,
    config: AttackTrainConfig,
    rng: np.random.Generator,
    label: str,
    progress: bool,
) -> tuple[SquashedGaussianPolicy, dict[str, float]]:
    """Fit ``bc_restarts`` policies on the dataset and keep the best one
    by evaluated mean adversarial return (ties broken by success rate)."""
    best_policy: SquashedGaussianPolicy | None = None
    best_metrics: dict[str, float] | None = None
    for restart in range(max(config.bc_restarts, 1)):
        policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, ATTACKER_HIDDEN, rng=rng
        )
        losses = BehaviorCloner(policy, config.bc, rng=rng).fit(
            observations, actions
        )
        attacker = _make_attacker(policy, sensor, config.budget, label)
        metrics = evaluate_attacker(
            attacker, victim_factory, config.eval_episodes
        )
        (log.info if progress else log.debug)(
            "bc.restart", label=label, restart=restart,
            loss=float(losses[-1]), **metrics,
        )
        better = best_metrics is None or (
            metrics["mean_adversarial_return"],
            metrics["success_rate"],
        ) > (
            best_metrics["mean_adversarial_return"],
            best_metrics["success_rate"],
        )
        if better:
            best_policy, best_metrics = policy, metrics
    return best_policy, best_metrics


def _sac_refine(
    policy: SquashedGaussianPolicy,
    env: AttackEnv,
    config: AttackTrainConfig,
    rng: np.random.Generator,
    progress: bool = False,
    trace: TraceWriter | None = None,
    loop_label: str = "sac-attack",
) -> None:
    """In-place SAC refinement of an attack policy in ``env``.

    Crash-safe: the loop defers ``env.reset`` to the top of the next
    iteration so episode boundaries are pure learner state, snapshots
    resumable :class:`~repro.rl.checkpoint.TrainState` checkpoints there
    when ``config.sac.checkpoint_every`` (or ``REPRO_CHECKPOINT_EVERY``)
    is set, and resumes bit-identically when ``config.sac.resume`` (or
    ``REPRO_RESUME``) finds one.
    """
    trace = trace if trace is not None else default_writer()
    sac = Sac(env.observation_dim, env.action_dim, config.sac, rng=rng,
              actor=policy)
    health = HealthEmitter(trace, loop_label, every=config.sac.health_every)
    guard = SacLoopGuard(sac, loop_label, rng, trace=trace)
    start = guard.start()
    obs = None
    episode_return, episode = 0.0, guard.episode
    with span("train.sac_refine"):
        for step in range(start, config.sac_steps):
            guard.on_step(step)
            if obs is None:  # episode boundary: snapshot, then reset
                guard.at_boundary(step, episode)
                obs = env.reset()
                episode_return = 0.0
            action = sac.act(obs)
            next_obs, reward, done, info = env.step(action)
            sac.observe(obs, action, reward, next_obs,
                        done and not info["truncated"])
            episode_return += reward
            obs = next_obs
            if trace is not None:
                trace.emit(
                    "train_step", loop=loop_label, step=step,
                    reward=float(reward), done=bool(done), episode=episode,
                )
            if done:
                episode += 1
                if episode % 20 == 0:
                    (log.info if progress else log.debug)(
                        "sac.episode", loop=loop_label, step=step,
                        episode=episode, episode_return=episode_return,
                    )
                obs = None
            if step % config.sac.update_every == 0 and len(sac.replay) >= (
                config.sac.batch_size
            ):
                stats = sac.update()
                health.after_update(sac, step, stats)
                guard.after_update(step, stats)
    guard.finish(config.sac_steps, episode)
    if trace is not None:
        trace.flush()


def train_camera_attacker(
    victim_factory: VictimFactory,
    config: AttackTrainConfig | None = None,
    progress: bool = False,
) -> tuple[LearnedAttacker, dict[str, float]]:
    """Full camera-attacker pipeline; returns (attacker, eval metrics)."""
    config = config or AttackTrainConfig()
    rng = np.random.default_rng(config.seed)

    observations, actions = collect_oracle_demonstrations(
        victim_factory, config.bc_episodes, rng
    )
    sensor = CameraAttackObservation()
    policy, metrics = _fit_best_of(
        observations,
        actions,
        sensor,
        victim_factory,
        config,
        rng,
        label="bc-attack",
        progress=progress,
    )
    attacker = _make_attacker(policy, sensor, config.budget, "camera")

    if config.sac_steps > 0:
        before = {k: v.copy() for k, v in policy.state_dict().items()}
        env = AttackEnv(
            victim_factory,
            CameraAttackObservation(),
            budget=config.budget,
            rng=rng,
        )
        _sac_refine(policy, env, config, rng, progress)
        refined = _make_attacker(policy, sensor, config.budget, "camera")
        refined_metrics = evaluate_attacker(
            refined, victim_factory, config.eval_episodes
        )
        (log.info if progress else log.debug)(
            "sac.eval", loop="sac-attack", **refined_metrics
        )
        if (
            refined_metrics["mean_adversarial_return"]
            >= metrics["mean_adversarial_return"]
        ):
            metrics = refined_metrics
        else:
            policy.load_state_dict(before)
    return attacker, metrics


def collect_teacher_traces(
    teacher: LearnedAttacker,
    victim_factory: VictimFactory,
    n_episodes: int,
    rng: np.random.Generator,
    scenario: ScenarioConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Learning-from-teacher data: IMU observations + teacher actions.

    The teacher *executes* its attack so the IMU trace carries the
    attack-induced motion signature the student must learn to recognize.
    """
    scenario = scenario or ScenarioConfig()
    student_sensor = ImuAttackObservation()
    observations: list[np.ndarray] = []
    actions: list[float] = []
    for _ in range(n_episodes):
        world = make_world(scenario, rng=rng)
        victim = victim_factory(world)
        victim.reset(world)
        teacher.reset(world)
        student_sensor.reset()
        while not world.done:
            obs = student_sensor.observe(world)
            teacher_action = teacher.normalized_action(world)
            observations.append(obs)
            actions.append(teacher_action)
            control = victim.act(world)
            delta = teacher.channel.inject(teacher_action)
            world.tick(control, steer_delta=delta)
    return np.asarray(observations), np.asarray(actions)[:, None]


def train_imu_attacker(
    teacher: LearnedAttacker,
    victim_factory: VictimFactory,
    config: AttackTrainConfig | None = None,
    progress: bool = False,
) -> tuple[LearnedAttacker, dict[str, float]]:
    """Learning-from-teacher pipeline for the covert IMU attacker."""
    config = config or AttackTrainConfig()
    rng = np.random.default_rng(config.seed + 1)

    observations, actions = collect_teacher_traces(
        teacher, victim_factory, config.bc_episodes, rng
    )
    sensor = ImuAttackObservation()
    policy, metrics = _fit_best_of(
        observations,
        actions,
        sensor,
        victim_factory,
        config,
        rng,
        label="distill-imu",
        progress=progress,
    )
    attacker = _make_attacker(policy, sensor, config.budget, "imu")

    if config.sac_steps > 0:
        before = {k: v.copy() for k, v in policy.state_dict().items()}
        env = AttackEnv(
            victim_factory,
            ImuAttackObservation(),
            budget=config.budget,
            rng=rng,
            teacher=teacher,
        )
        _sac_refine(policy, env, config, rng, progress, loop_label="sac-imu")
        refined = _make_attacker(policy, sensor, config.budget, "imu")
        refined_metrics = evaluate_attacker(
            refined, victim_factory, config.eval_episodes
        )
        (log.info if progress else log.debug)(
            "sac.eval", loop="sac-imu", **refined_metrics
        )
        if (
            refined_metrics["mean_adversarial_return"]
            >= metrics["mean_adversarial_return"]
        ):
            metrics = refined_metrics
        else:
            policy.load_state_dict(before)
    return attacker, metrics
