"""Adversarial reward shaping (Section IV-D and IV-E).

The attacker's per-step reward is

    R_adv = C(lambda) + I(omega) * r_e2n + (1 - I(omega)) * p_m

* ``C(lambda)`` — terminal collision reward: ``+a`` for the desired side
  collision with an NPC, ``-a`` for any undesired collision (front,
  rear-end, or barrier), ``0`` otherwise.
* ``r_e2n`` — collision potential: the dot product of the unit vector from
  the ego to the closest NPC with the ego's velocity direction; maximized
  when the ego drives straight at the target.
* ``p_m`` — maneuver penalty: proportional to the injected perturbation,
  teaching the attacker to lurk outside safety-critical moments.
* ``I(omega)`` — the critical-moment indicator: 1 iff
  ``|omega| <= beta`` where ``omega`` is the dot product of the ego-to-NPC
  unit vector with the NPC's velocity direction and ``beta = cos(pi/6)``.

The IMU variant (Section IV-E) adds the learning-from-teacher term
``p_se``: the negative squared discrepancy between the student's and the
camera teacher's perturbations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.collision import Collision, CollisionKind
from repro.sim.world import World
from repro.utils.geometry import unit

#: The paper's critical-moment threshold, cos(pi/6).
BETA = math.cos(math.pi / 6.0)


@dataclass(frozen=True)
class AdversarialRewardConfig:
    """Weights of the adversarial reward terms."""

    #: Magnitude ``a`` of the terminal collision reward.
    collision_reward: float = 10.0
    #: Critical-moment threshold on ``|omega|``.
    beta: float = BETA
    #: Weight of the maneuver penalty ``p_m`` (applied to ``|delta|``).
    maneuver_weight: float = 0.2
    #: Weight of the teacher-discrepancy penalty ``p_se`` (IMU training).
    teacher_weight: float = 1.0


@dataclass(frozen=True)
class AdversarialBreakdown:
    """Per-term diagnostics for one step."""

    collision: float
    potential: float
    maneuver: float
    teacher: float
    critical: bool

    @property
    def total(self) -> float:
        return self.collision + self.potential + self.maneuver + self.teacher


def collision_label(collision: Collision | None) -> int:
    """The paper's ``lambda``: 1 side collision, -1 undesired, 0 none."""
    if collision is None:
        return 0
    return 1 if collision.kind is CollisionKind.SIDE else -1


def critical_moment(world: World, beta: float = BETA) -> bool:
    """Whether the ego/nearest-NPC geometry is inside the attack window."""
    return _omega(world) is not None and abs(_omega(world)) <= beta


def _omega(world: World) -> float | None:
    npc = world.nearest_npc()
    if npc is None:
        return None
    e2n = unit(npc.vehicle.state.position - world.ego.state.position)
    npc_dir = unit(npc.vehicle.state.velocity)
    if not np.any(npc_dir):
        return None
    return float(e2n @ npc_dir)


def _unit_rows(vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`~repro.utils.geometry.unit`: ``(units, nonzero)``."""
    norm = np.sqrt(np.einsum("nj,nj->n", vectors, vectors))
    zero = norm < 1e-12
    safe = np.where(zero, 1.0, norm)
    return np.where(zero[:, None], 0.0, vectors / safe[:, None]), ~zero


def _omega_batch(
    batch,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_omega` over a batch world.

    Returns ``(omega[N], e2n[N, 2], valid[N])`` for each episode's nearest
    NPC; rows where the scalar ``_omega`` would return ``None`` (no NPC or
    a zero NPC velocity) have ``valid`` False and ``omega`` 0.
    """
    n = batch.n
    if batch.m == 0:
        return np.zeros(n), np.zeros((n, 2)), np.zeros(n, dtype=bool)
    rows = np.arange(n)
    j = batch.nearest_npc_index()
    npc_pos = batch.npc_positions[rows, j]
    npc_vel = batch.npc_velocities[rows, j]
    e2n, _ = _unit_rows(npc_pos - batch.ego_position)
    npc_dir, has_dir = _unit_rows(npc_vel)
    omega = np.einsum("nj,nj->n", e2n, npc_dir)
    return np.where(has_dir, omega, 0.0), e2n, has_dir


class AdversarialReward:
    """Computes ``R_adv`` (camera) or ``R_adv^IMU`` (with teacher term)."""

    def __init__(self, config: AdversarialRewardConfig | None = None) -> None:
        self.config = config or AdversarialRewardConfig()

    def step(
        self,
        world: World,
        delta: float,
        collision: Collision | None,
        teacher_delta: float | None = None,
    ) -> AdversarialBreakdown:
        """Reward for the tick that just happened.

        Args:
            world: the world after ticking.
            delta: the perturbation the attacker injected this tick.
            collision: the tick's collision event, if any.
            teacher_delta: the camera teacher's action for the same state
                (only during IMU 'learning-from-teacher' training).
        """
        cfg = self.config
        label = collision_label(collision)
        collision_term = cfg.collision_reward * label

        omega = _omega(world)
        critical = omega is not None and abs(omega) <= cfg.beta

        potential = 0.0
        maneuver = 0.0
        if critical:
            npc = world.nearest_npc()
            e2n = unit(npc.vehicle.state.position - world.ego.state.position)
            ego_dir = unit(world.ego.state.velocity)
            potential = float(e2n @ ego_dir)
        else:
            maneuver = -cfg.maneuver_weight * abs(delta)

        teacher = 0.0
        if teacher_delta is not None:
            teacher = -cfg.teacher_weight * (delta - teacher_delta) ** 2

        return AdversarialBreakdown(
            collision=collision_term,
            potential=potential,
            maneuver=maneuver,
            teacher=teacher,
            critical=critical,
        )

    def step_batch(
        self,
        batch,
        delta: np.ndarray,
        collision_kind: np.ndarray,
    ) -> np.ndarray:
        """Per-episode ``R_adv`` totals for a batch tick, shape ``[N]``.

        Args:
            batch: the :class:`~repro.sim.batch.BatchWorld` after ticking.
            delta: perturbations injected this tick, ``[N]``.
            collision_kind: this tick's collision codes
                (:data:`repro.sim.batch.KIND_SIDE` etc., 0 = none).
        """
        from repro.sim.batch import KIND_NONE, KIND_SIDE

        cfg = self.config
        label = np.where(
            collision_kind == KIND_SIDE,
            1.0,
            np.where(collision_kind != KIND_NONE, -1.0, 0.0),
        )
        collision_term = cfg.collision_reward * label

        omega, e2n, has_dir = _omega_batch(batch)
        critical = has_dir & (np.abs(omega) <= cfg.beta)

        ego_vel = batch.ego_velocity
        norm = np.sqrt(np.einsum("nj,nj->n", ego_vel, ego_vel))
        safe = np.where(norm < 1e-12, 1.0, norm)
        ego_dir = np.where(
            (norm < 1e-12)[:, None], 0.0, ego_vel / safe[:, None]
        )
        potential = np.where(
            critical, np.einsum("nj,nj->n", e2n, ego_dir), 0.0
        )
        maneuver = np.where(
            critical, 0.0, -cfg.maneuver_weight * np.abs(delta)
        )
        return collision_term + potential + maneuver
