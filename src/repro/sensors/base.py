"""Sensor base types.

A sensor observes a :class:`~repro.sim.world.World` once per control tick
and produces a numpy observation. Sensors are stateful (frame stacks, IMU
ring buffers) and must be ``reset`` between episodes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sim.world import World


class Sensor(abc.ABC):
    """Interface shared by all sensors."""

    @abc.abstractmethod
    def observe(self, world: World) -> np.ndarray:
        """Sample the world and return the current observation."""

    def observe_batch(self, batch) -> np.ndarray:
        """Observations for every episode of a batch world, ``[N, dim]``.

        Optional: only sensors wired into the batch engine implement it
        (the IMU ring buffer, for instance, stays scalar-only).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched observation path"
        )

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear internal state (buffers, stacks) for a new episode."""

    @property
    @abc.abstractmethod
    def observation_dim(self) -> int:
        """Length of the flattened observation vector."""


class FrameStack(Sensor):
    """Stack the last ``k`` frames of an inner sensor (paper: 3 frames).

    Before the first full window the earliest frame is repeated, matching
    the common DRL convention.
    """

    def __init__(self, inner: Sensor, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.inner = inner
        self.k = k
        self._frames: list[np.ndarray] = []

    def observe(self, world: World) -> np.ndarray:
        frame = self.inner.observe(world)
        if not self._frames:
            self._frames = [frame] * self.k
        else:
            self._frames = self._frames[1:] + [frame]
        return np.concatenate(self._frames)

    def observe_batch(self, batch) -> np.ndarray:
        """Stacked frames per episode, ``[N, k * inner_dim]``."""
        frame = self.inner.observe_batch(batch)
        if not self._frames:
            self._frames = [frame] * self.k
        else:
            self._frames = self._frames[1:] + [frame]
        return np.concatenate(self._frames, axis=1)

    def reset(self) -> None:
        self._frames = []
        self.inner.reset()

    @property
    def observation_dim(self) -> int:
        return self.k * self.inner.observation_dim
