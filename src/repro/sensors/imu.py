"""Triaxial IMU model (Section IV-C of the paper).

The attacker's covert sensor: a rolling trace of the ego vehicle's
longitudinal acceleration (x axis) and yaw rate (z axis), sampled at the
physics sub-step rate (20 sps by default) over a 3.2 s window — 64 samples
per channel. The y (lateral) axis is recorded by the hardware but, per the
paper, carries little steering information and is excluded from the
observation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sensors.base import Sensor
from repro.sensors.noise import NoiseModel
from repro.sim.world import World
from repro.telemetry.spans import timed


@dataclass(frozen=True)
class ImuConfig:
    """IMU observation window."""

    #: Samples retained per channel (paper: 20 sps * 3.2 s = 64).
    window: int = 64
    #: Whether to include the (uninformative) lateral channel.
    include_lateral: bool = False


class Imu(Sensor):
    """Rolling inertial trace of the ego vehicle.

    :meth:`observe` drains the sub-step samples the vehicle recorded during
    the last control tick into a ring buffer and returns the flattened
    window, ordered ``[accel_long x window, yaw_rate x window]`` (plus the
    lateral channel when enabled). The window is zero-padded at episode
    start.
    """

    def __init__(
        self,
        config: ImuConfig | None = None,
        noise: NoiseModel | None = None,
    ) -> None:
        self.config = config or ImuConfig()
        self.noise = noise or NoiseModel()
        window = self.config.window
        self._accel_long: deque[float] = deque(maxlen=window)
        self._accel_lat: deque[float] = deque(maxlen=window)
        self._yaw_rate: deque[float] = deque(maxlen=window)

    @timed("imu.observe")
    def observe(self, world: World) -> np.ndarray:
        for sample in world.ego.imu_trace:
            raw = np.array(
                [sample.accel_long, sample.accel_lat, sample.yaw_rate]
            )
            noisy = np.asarray(self.noise.apply(raw))
            self._accel_long.append(float(noisy[0]))
            self._accel_lat.append(float(noisy[1]))
            self._yaw_rate.append(float(noisy[2]))
        channels = [self._padded(self._accel_long), self._padded(self._yaw_rate)]
        if self.config.include_lateral:
            channels.insert(1, self._padded(self._accel_lat))
        return np.concatenate(channels)

    def _padded(self, buffer: deque[float]) -> np.ndarray:
        window = self.config.window
        data = np.zeros(window)
        if buffer:
            values = np.fromiter(buffer, dtype=float)
            data[window - len(values):] = values
        return data

    def reset(self) -> None:
        self._accel_long.clear()
        self._accel_lat.clear()
        self._yaw_rate.clear()
        self.noise.reset()

    @property
    def observation_dim(self) -> int:
        channels = 3 if self.config.include_lateral else 2
        return channels * self.config.window
