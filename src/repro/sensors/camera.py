"""Semantic segmentation cameras.

Two renderers substitute for the CARLA semantic segmentation camera:

* :class:`BevCamera` — a fast ego-centric bird's-eye grid used as the
  policy observation (our numpy MLP substrate replaces the paper's GPU
  CNN over 84x420 panoramas, so the default grid is compact).
* :class:`PanoramaCamera` — a range-azimuth panorama mimicking the paper's
  300-degree roof-camera view at configurable resolution (84x420 capable);
  used for visualization and fidelity tests.

Both label each pixel with a semantic class: off-road, road surface, lane
marking, or vehicle.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.sensors.base import Sensor
from repro.sim.batch import BatchWorld
from repro.sim.world import World
from repro.telemetry.spans import timed


class SemanticClass(enum.IntEnum):
    """Pixel labels of the segmentation output."""

    OFF_ROAD = 0
    ROAD = 1
    LANE_MARKING = 2
    VEHICLE = 3


#: Scale for normalizing class codes into [0, 1] observations.
_MAX_CLASS = float(max(SemanticClass))
#: Half-width of a painted lane boundary, meters.
_MARKING_HALF_WIDTH = 0.2


def _classify_points(world: World, points: np.ndarray) -> np.ndarray:
    """Semantic class per world point, shape ``(n,)`` of ``uint8``."""
    road = world.road
    _, d = road.to_frenet_batch(points)
    classes = np.full(len(points), int(SemanticClass.OFF_ROAD), dtype=np.uint8)
    on_road = np.abs(d) <= road.half_width
    classes[on_road] = int(SemanticClass.ROAD)
    boundaries = np.array(
        [
            -road.half_width + i * road.config.lane_width
            for i in range(road.config.n_lanes + 1)
        ]
    )
    near_marking = (
        np.min(np.abs(d[:, None] - boundaries[None, :]), axis=1)
        <= _MARKING_HALF_WIDTH
    )
    classes[on_road & near_marking] = int(SemanticClass.LANE_MARKING)
    for npc in world.npcs:
        box = npc.vehicle.footprint()
        rel = points - np.asarray(box.center)
        cos_yaw, sin_yaw = math.cos(box.yaw), math.sin(box.yaw)
        local_x = rel[:, 0] * cos_yaw + rel[:, 1] * sin_yaw
        local_y = -rel[:, 0] * sin_yaw + rel[:, 1] * cos_yaw
        inside = (np.abs(local_x) <= box.length / 2.0) & (
            np.abs(local_y) <= box.width / 2.0
        )
        classes[inside] = int(SemanticClass.VEHICLE)
    return classes


def _classify_points_batch(
    batch: BatchWorld, points: np.ndarray
) -> np.ndarray:
    """Semantic class per point for every episode, shape ``[N, P]``.

    The road/marking layers depend only on geometry shared by the whole
    batch, so they run over the flattened ``N * P`` points in one pass; the
    vehicle layer paints each NPC column across all episodes at once, in
    the same ascending index order as the scalar renderer (later NPCs
    overwrite earlier ones on overlap).
    """
    road = batch.road
    n, p = points.shape[0], points.shape[1]
    _, d, _ = road.frenet_batch(points.reshape(-1, 2))
    d = d.reshape(n, p)
    classes = np.full((n, p), int(SemanticClass.OFF_ROAD), dtype=np.uint8)
    on_road = np.abs(d) <= road.half_width
    classes[on_road] = int(SemanticClass.ROAD)
    boundaries = np.array(
        [
            -road.half_width + i * road.config.lane_width
            for i in range(road.config.n_lanes + 1)
        ]
    )
    near_marking = (
        np.min(np.abs(d[..., None] - boundaries), axis=-1)
        <= _MARKING_HALF_WIDTH
    )
    classes[on_road & near_marking] = int(SemanticClass.LANE_MARKING)
    half_l = batch.config.vehicle.length / 2.0
    half_w = batch.config.vehicle.width / 2.0
    for j in range(batch.m):
        col = 1 + j
        rel_x = points[..., 0] - batch.x[:, col, None]
        rel_y = points[..., 1] - batch.y[:, col, None]
        cos_yaw = np.cos(batch.yaw[:, col, None])
        sin_yaw = np.sin(batch.yaw[:, col, None])
        local_x = rel_x * cos_yaw + rel_y * sin_yaw
        local_y = -rel_x * sin_yaw + rel_y * cos_yaw
        inside = (np.abs(local_x) <= half_l) & (np.abs(local_y) <= half_w)
        classes[inside] = int(SemanticClass.VEHICLE)
    return classes


@dataclass(frozen=True)
class BevCameraConfig:
    """Geometry of the bird's-eye observation grid (ego frame)."""

    forward: float = 48.0
    backward: float = 8.0
    half_width: float = 9.0
    rows: int = 24
    cols: int = 12

    @property
    def cells(self) -> int:
        return self.rows * self.cols


class BevCamera(Sensor):
    """Ego-centric bird's-eye semantic grid.

    Rows span ``[-backward, forward]`` meters along the ego heading
    (row 0 = farthest back), columns span ``[-half_width, half_width]``
    laterally (column 0 = rightmost). :meth:`observe` returns the grid
    flattened with class codes normalized to ``[0, 1]``.
    """

    def __init__(self, config: BevCameraConfig | None = None) -> None:
        self.config = config or BevCameraConfig()
        cfg = self.config
        xs = np.linspace(-cfg.backward, cfg.forward, cfg.rows)
        ys = np.linspace(-cfg.half_width, cfg.half_width, cfg.cols)
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
        self._local = np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)

    @timed("camera.bev.render")
    def render(self, world: World) -> np.ndarray:
        """The raw class grid, shape ``(rows, cols)`` of ``uint8``."""
        state = world.ego.state
        cos_yaw, sin_yaw = math.cos(state.yaw), math.sin(state.yaw)
        rot = np.array([[cos_yaw, -sin_yaw], [sin_yaw, cos_yaw]])
        points = self._local @ rot.T + state.position
        classes = _classify_points(world, points)
        return classes.reshape(self.config.rows, self.config.cols)

    def observe(self, world: World) -> np.ndarray:
        return (
            self.render(world).astype(np.float64).ravel() / _MAX_CLASS
        )

    @timed("camera.bev.render_batch")
    def render_batch(self, batch: BatchWorld) -> np.ndarray:
        """All N ego-centric class grids in one pass, ``[N, rows, cols]``.

        One call replaces N :meth:`render` invocations: the local grid is
        rotated/translated into every episode's ego frame by broadcasting,
        and classification runs over the stacked point cloud.
        """
        cos_yaw = np.cos(batch.yaw[:, 0])
        sin_yaw = np.sin(batch.yaw[:, 0])
        lx, ly = self._local[:, 0], self._local[:, 1]
        px = (
            lx[None, :] * cos_yaw[:, None]
            - ly[None, :] * sin_yaw[:, None]
            + batch.x[:, 0, None]
        )
        py = (
            lx[None, :] * sin_yaw[:, None]
            + ly[None, :] * cos_yaw[:, None]
            + batch.y[:, 0, None]
        )
        points = np.stack([px, py], axis=-1)
        classes = _classify_points_batch(batch, points)
        return classes.reshape(batch.n, self.config.rows, self.config.cols)

    def observe_batch(self, batch: BatchWorld) -> np.ndarray:
        """Flattened normalized grids for every episode, ``[N, cells]``."""
        return (
            self.render_batch(batch)
            .astype(np.float64)
            .reshape(batch.n, -1)
            / _MAX_CLASS
        )

    def reset(self) -> None:
        """Stateless: nothing to clear."""

    @property
    def observation_dim(self) -> int:
        return self.config.cells


@dataclass(frozen=True)
class PanoramaCameraConfig:
    """Geometry of the panorama camera (paper default: 84x420, 300 deg)."""

    height: int = 84
    width: int = 420
    fov: float = math.radians(300.0)
    camera_height: float = 1.6
    max_range: float = 60.0


class PanoramaCamera(Sensor):
    """Roof-mounted panorama projecting the ground plane.

    Each pixel ``(row, col)`` corresponds to an azimuth within the field
    of view and a downward elevation angle; the pixel is labeled with the
    semantic class of the ground point the ray hits (rows near the top of
    the image look toward the horizon / far range).
    """

    def __init__(self, config: PanoramaCameraConfig | None = None) -> None:
        self.config = config or PanoramaCameraConfig()
        cfg = self.config
        azimuths = np.linspace(cfg.fov / 2.0, -cfg.fov / 2.0, cfg.width)
        # Row 0 looks at max range, bottom row near the vehicle.
        min_range = 2.0
        ranges = np.geomspace(cfg.max_range, min_range, cfg.height)
        grid_r, grid_a = np.meshgrid(ranges, azimuths, indexing="ij")
        self._local = np.stack(
            [(grid_r * np.cos(grid_a)).ravel(), (grid_r * np.sin(grid_a)).ravel()],
            axis=1,
        )

    @timed("camera.panorama.render")
    def render(self, world: World) -> np.ndarray:
        """The class image, shape ``(height, width)`` of ``uint8``."""
        state = world.ego.state
        cos_yaw, sin_yaw = math.cos(state.yaw), math.sin(state.yaw)
        rot = np.array([[cos_yaw, -sin_yaw], [sin_yaw, cos_yaw]])
        points = self._local @ rot.T + state.position
        classes = _classify_points(world, points)
        return classes.reshape(self.config.height, self.config.width)

    def observe(self, world: World) -> np.ndarray:
        return self.render(world).astype(np.float64).ravel() / _MAX_CLASS

    def reset(self) -> None:
        """Stateless: nothing to clear."""

    @property
    def observation_dim(self) -> int:
        return self.config.height * self.config.width
