"""Sensor models: semantic segmentation cameras and the triaxial IMU."""

from repro.sensors.base import FrameStack, Sensor
from repro.sensors.camera import (
    BevCamera,
    BevCameraConfig,
    PanoramaCamera,
    PanoramaCameraConfig,
    SemanticClass,
)
from repro.sensors.imu import Imu, ImuConfig
from repro.sensors.noise import GaussianNoise, NoiseModel

__all__ = [
    "BevCamera",
    "BevCameraConfig",
    "FrameStack",
    "GaussianNoise",
    "Imu",
    "ImuConfig",
    "NoiseModel",
    "PanoramaCamera",
    "PanoramaCameraConfig",
    "SemanticClass",
    "Sensor",
]
