"""Additive sensor-noise models for the IMU."""

from __future__ import annotations

import numpy as np


class NoiseModel:
    """Identity noise model: passes samples through unchanged."""

    def apply(self, sample: np.ndarray) -> np.ndarray:
        return sample

    def reset(self) -> None:  # pragma: no cover - trivial
        """Re-draw any per-episode noise state (e.g. bias)."""


class GaussianNoise(NoiseModel):
    """Zero-mean white Gaussian noise with optional constant bias drift.

    A fresh bias is drawn per episode at :meth:`reset`, modelling the slow
    bias instability of a consumer-grade MEMS IMU.
    """

    def __init__(
        self,
        std: float,
        bias_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if std < 0.0 or bias_std < 0.0:
            raise ValueError("noise magnitudes must be non-negative")
        self.std = float(std)
        self.bias_std = float(bias_std)
        self.rng = rng or np.random.default_rng(0)
        self._bias = 0.0
        self.reset()

    def apply(self, sample: np.ndarray) -> np.ndarray:
        noise = self.rng.normal(0.0, self.std, size=np.shape(sample))
        return np.asarray(sample) + noise + self._bias

    def reset(self) -> None:
        self._bias = (
            float(self.rng.normal(0.0, self.bias_std)) if self.bias_std else 0.0
        )
