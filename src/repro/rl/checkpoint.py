"""Resumable training state for the SAC loops.

A :class:`TrainState` captures everything a SAC training loop needs to
continue *bit-identically* after a crash: actor/critic/target weights,
optimizer moments, the replay buffer contents, the shared RNG stream
state, and the loop counters. Snapshots are taken at episode boundaries
only — between an episode's final ``update`` and the next ``env.reset``
the simulation world is dead and the loop state is exactly this tuple,
so a resumed run replays the same RNG draws the uninterrupted run would
have made.

:class:`Snapshotter` handles the disk side (periodic cadence,
keep-last-K rotation, corrupt-snapshot fallback), and
:class:`SacLoopGuard` packages the whole protocol — resume, fault
hooks, periodic snapshots, and watchdog checkpoint-and-halt — behind
four calls that all three SAC loops share.

Configuration comes from :class:`repro.rl.sac.SacConfig`
(``checkpoint_every``, ``checkpoint_dir``, ``checkpoint_keep``,
``resume``, ``halt_on_alert``) with process-wide environment overrides
``REPRO_CHECKPOINT_EVERY``, ``REPRO_CHECKPOINT_DIR``,
``REPRO_CHECKPOINT_KEEP``, ``REPRO_RESUME``, ``REPRO_HALT_ON_ALERT``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import faults
from repro.obsv.alerts import Alert, Watchdog
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import get_registry
from repro.utils.serialization import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
)

log = get_logger("rl.checkpoint")

#: Periodic/final snapshots eligible for rotation and auto-resume.
_SNAPSHOT_RE = re.compile(r"^state_step(\d{8})\.npz$")
#: Emergency snapshots are captured mid-episode, so they are *not*
#: resume-safe; they get a distinct name that auto-resume skips.
_ALERT_PREFIX = "state_alert_"

#: ``update_health`` fields forwarded to the in-loop watchdog.
_WATCH_FIELDS = (
    "critic_loss", "actor_loss", "alpha", "q_mean", "q_max", "entropy",
)


# -- configuration ------------------------------------------------------------------


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw.strip() else default
    except ValueError:
        return default


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def checkpoint_interval(configured: int | None = None) -> int:
    """Snapshot cadence in env steps (0 = disabled).

    An explicit positive ``configured`` value wins; otherwise
    ``REPRO_CHECKPOINT_EVERY`` is consulted.
    """
    if configured:
        return max(int(configured), 0)
    return max(_env_int("REPRO_CHECKPOINT_EVERY", 0), 0)


def checkpoint_keep(configured: int | None = None) -> int:
    """How many periodic snapshots to retain (minimum 1)."""
    if configured:
        return max(int(configured), 1)
    return max(_env_int("REPRO_CHECKPOINT_KEEP", 3), 1)


def checkpoint_dir(configured: str | None = None) -> str:
    """Base snapshot directory; each loop appends its label."""
    return configured or os.environ.get("REPRO_CHECKPOINT_DIR", "") or "checkpoints"


def resume_enabled(configured: bool = False) -> bool:
    return bool(configured) or _env_flag("REPRO_RESUME")


def halt_enabled(configured: bool = False) -> bool:
    return bool(configured) or _env_flag("REPRO_HALT_ON_ALERT")


# -- state capture ------------------------------------------------------------------


@dataclass
class TrainState:
    """A complete, serializable snapshot of a SAC loop's live state."""

    loop: str
    #: The next environment-step index the loop will execute.
    step: int
    #: Episodes finished so far (the loop-local counter).
    episode: int
    #: ``env._episode`` for envs that track it (log cadence on resume).
    env_episode: int
    total_updates: int
    #: ``rng.bit_generator.state`` — a JSON-able dict of Python ints.
    rng_state: dict
    #: Flattened arrays, prefixed ``sac:``, ``opt:<name>:``, ``replay:``.
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    final: bool = False

    def counters(self) -> dict:
        return {
            "loop": self.loop,
            "step": self.step,
            "episode": self.episode,
            "env_episode": self.env_episode,
            "total_updates": self.total_updates,
            "final": self.final,
        }


def capture(
    sac,
    loop: str,
    step: int,
    episode: int,
    env_episode: int,
    rng: np.random.Generator,
    final: bool = False,
) -> TrainState:
    """Snapshot a learner + loop counters into a :class:`TrainState`.

    Must be called at an episode boundary (after the step's update,
    before the next ``env.reset``) for the resulting state to resume
    bit-identically; ``step`` is the index of the next step to run.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, value in sac.state_dict().items():
        arrays[f"sac:{name}"] = np.array(value, copy=True)
    for opt_name, opt in (
        ("actor", sac.actor_opt),
        ("critic", sac.critic_opt),
        ("alpha", sac.alpha_opt),
    ):
        for name, value in opt.state_dict().items():
            arrays[f"opt:{opt_name}:{name}"] = np.array(value, copy=True)
    for name, value in sac.replay.state_dict().items():
        arrays[f"replay:{name}"] = np.array(value, copy=True)
    return TrainState(
        loop=loop,
        step=int(step),
        episode=int(episode),
        env_episode=int(env_episode),
        total_updates=int(sac.total_updates),
        rng_state=rng.bit_generator.state,
        arrays=arrays,
        final=final,
    )


def restore(state: TrainState, sac, rng: np.random.Generator) -> None:
    """Load a :class:`TrainState` back into a live learner and RNG.

    The RNG stream is restored in place, so every object sharing the
    generator (env, learner, injector) continues the original sequence.
    """

    def split(prefix: str) -> dict[str, np.ndarray]:
        return {
            name[len(prefix):]: value
            for name, value in state.arrays.items()
            if name.startswith(prefix)
        }

    sac.load_state_dict(split("sac:"))
    sac.actor_opt.load_state_dict(split("opt:actor:"))
    sac.critic_opt.load_state_dict(split("opt:critic:"))
    sac.alpha_opt.load_state_dict(split("opt:alpha:"))
    sac.replay.load_state_dict(split("replay:"))
    sac.total_updates = state.total_updates
    rng.bit_generator.state = state.rng_state


def save_state(state: TrainState, path: str | Path) -> Path:
    """Write a :class:`TrainState` through the atomic checkpoint writer."""
    meta = {"train_state": dict(state.counters(), rng_state=state.rng_state)}
    return save_checkpoint(path, state.arrays, meta)


def load_state(path: str | Path) -> TrainState:
    """Read a snapshot written by :func:`save_state` (verified)."""
    arrays, meta = load_checkpoint(path)
    info = meta.get("train_state")
    if not isinstance(info, dict):
        raise CheckpointCorruptError(
            path, "missing train_state metadata (not a training snapshot)"
        )
    return TrainState(
        loop=str(info.get("loop", "")),
        step=int(info["step"]),
        episode=int(info.get("episode", 0)),
        env_episode=int(info.get("env_episode", 0)),
        total_updates=int(info.get("total_updates", 0)),
        rng_state=info["rng_state"],
        arrays=arrays,
        final=bool(info.get("final", False)),
    )


# -- disk management ----------------------------------------------------------------


class Snapshotter:
    """Periodic snapshot writer with rotation and corrupt-file fallback."""

    def __init__(
        self, directory: str | Path, every: int, keep: int, loop: str
    ) -> None:
        self.directory = Path(directory)
        self.every = int(every)
        self.keep = int(keep)
        self.loop = loop
        self._last_step: int | None = None
        self._failures = get_registry().counter("checkpoint_write_failures_total")

    def maybe_save(self, state: TrainState) -> Path | None:
        """Save if a snapshot is due (call at episode boundaries only)."""
        if self.every <= 0:
            return None
        last = self._last_step if self._last_step is not None else 0
        if not state.final and state.step - last < self.every:
            return None
        return self.save(state)

    def save(self, state: TrainState, tag: str | None = None) -> Path | None:
        """Write one snapshot; a full disk degrades to a warning.

        The atomic writer guarantees the previous snapshot survives a
        failed write untouched, so training continues on ``OSError``
        rather than dying with progress unsaved in memory.
        """
        prefix = _ALERT_PREFIX if tag == "alert" else "state_"
        path = self.directory / f"{prefix}step{state.step:08d}.npz"
        try:
            save_checkpoint(path, state.arrays, {
                "train_state": dict(
                    state.counters(), rng_state=state.rng_state
                )
            })
        except OSError as error:
            self._failures.inc()
            log.warning(
                "checkpoint.write_failed", loop=self.loop, step=state.step,
                path=str(path), error=str(error),
            )
            return None
        if tag != "alert":
            self._last_step = state.step
            self._rotate()
        log.info(
            "checkpoint.saved", loop=self.loop, step=state.step,
            path=str(path), final=state.final,
        )
        return path

    def _rotate(self) -> None:
        periodic = sorted(
            p for p in self.directory.iterdir() if _SNAPSHOT_RE.match(p.name)
        )
        for stale in periodic[: max(0, len(periodic) - self.keep)]:
            stale.unlink(missing_ok=True)

    def snapshots(self) -> list[Path]:
        """Periodic snapshots on disk, oldest first (alert files excluded)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.iterdir() if _SNAPSHOT_RE.match(p.name)
        )

    def latest_state(self) -> TrainState | None:
        """Newest loadable snapshot, skipping corrupt files with a warning.

        This is the torn-tail recovery path: if the newest snapshot was
        truncated by a crash (or failed verification), fall back to the
        previous one rather than refusing to resume.
        """
        for path in reversed(self.snapshots()):
            try:
                state = load_state(path)
            except CheckpointCorruptError as error:
                log.warning(
                    "checkpoint.skipping_corrupt", loop=self.loop,
                    path=str(path), reason=error.reason,
                )
                continue
            self._last_step = state.step
            return state
        return None


# -- the loop-facing protocol -------------------------------------------------------


class TrainingHalted(RuntimeError):
    """A critical watchdog alert stopped training.

    Carries the triggering :class:`~repro.obsv.alerts.Alert` and the
    emergency snapshot path (``None`` if snapshotting was off or the
    write failed), so callers can inspect the run post-mortem.
    """

    def __init__(self, alert: Alert, checkpoint: Path | None) -> None:
        self.alert = alert
        self.checkpoint = checkpoint
        where = f"; state saved to {checkpoint}" if checkpoint else ""
        super().__init__(
            f"training halted by {alert.rule} alert on loop "
            f"{alert.loop or '?'}: {alert.message}{where}"
        )


class SacLoopGuard:
    """Crash-safety protocol for one SAC training loop.

    Usage inside a loop body::

        guard = SacLoopGuard(sac, loop_label, rng, trace=trace)
        start = guard.start()                       # 0, or resumed counters
        for step in range(start, total_steps):
            guard.on_step(step)                     # fault-injection hook
            if obs is None:                         # episode boundary
                guard.at_boundary(step)             # periodic snapshot
                obs = env.reset()
            ...
            stats = sac.update()
            guard.after_update(step, stats)         # watchdog halt
        guard.finish(total_steps)                   # final snapshot
    """

    def __init__(
        self,
        sac,
        loop: str,
        rng: np.random.Generator,
        trace=None,
        watch_config=None,
    ) -> None:
        cfg = sac.config
        self.sac = sac
        self.loop = loop
        self.rng = rng
        self.trace = trace
        self.every = checkpoint_interval(cfg.checkpoint_every)
        self.resume = resume_enabled(cfg.resume)
        self.halt = halt_enabled(cfg.halt_on_alert)
        base = Path(checkpoint_dir(cfg.checkpoint_dir)) / loop
        self.snapshotter: Snapshotter | None = None
        if self.every > 0 or self.resume or self.halt:
            self.snapshotter = Snapshotter(
                base, self.every, checkpoint_keep(cfg.checkpoint_keep), loop
            )
        self._watchdog = Watchdog(watch_config) if self.halt else None
        # Loop counters, advanced by the loop via at_boundary/after_update.
        self.step = 0
        self.episode = 0
        self.env_episode = 0

    def start(self) -> int:
        """Resume from the newest snapshot if configured; returns the
        environment-step index the loop should start from."""
        if self.resume and self.snapshotter is not None:
            state = self.snapshotter.latest_state()
            if state is not None:
                restore(state, self.sac, self.rng)
                self.step = state.step
                self.episode = state.episode
                self.env_episode = state.env_episode
                log.info(
                    "checkpoint.resumed", loop=self.loop, step=state.step,
                    episode=state.episode, updates=state.total_updates,
                )
                return state.step
            log.info("checkpoint.no_snapshot", loop=self.loop)
        return 0

    def on_step(self, step: int) -> None:
        """Call at the top of every loop iteration (fault hook)."""
        self.step = step
        plan = faults.active_plan()
        if plan is not None:
            plan.on_train_step(self.loop, step)

    def at_boundary(
        self, step: int, episode: int, env_episode: int = 0
    ) -> None:
        """Call at each episode boundary, before the next ``env.reset``."""
        self.episode = episode
        self.env_episode = env_episode
        if self.snapshotter is not None and self.every > 0:
            self.snapshotter.maybe_save(
                capture(
                    self.sac, self.loop, step, episode, env_episode, self.rng
                )
            )

    def after_update(self, step: int, stats: dict) -> None:
        """Feed update stats to the in-loop watchdog; halt on critical."""
        if self._watchdog is None:
            return
        event = {
            "event": "update_health",
            "loop": self.loop,
            "step": int(step),
            "update": int(self.sac.total_updates),
        }
        for name in _WATCH_FIELDS:
            if name in stats:
                event[name] = float(stats[name])
        critical = [
            a for a in self._watchdog.observe(event)
            if a.severity == "critical"
        ]
        if not critical:
            return
        alert = critical[0]
        # Mid-episode capture: forensic only, excluded from auto-resume.
        path = None
        if self.snapshotter is not None:
            path = self.snapshotter.save(
                capture(
                    self.sac, self.loop, step, self.episode,
                    self.env_episode, self.rng,
                ),
                tag="alert",
            )
        if self.trace is not None:
            self.trace.emit("alert", **alert.to_event())
        raise TrainingHalted(alert, path)

    def finish(self, step: int, episode: int, env_episode: int = 0) -> None:
        """Write the final snapshot after the loop completes."""
        if self.snapshotter is not None and self.every > 0:
            self.snapshotter.save(
                capture(
                    self.sac, self.loop, step, episode, env_episode,
                    self.rng, final=True,
                )
            )
