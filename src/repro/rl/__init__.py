"""DRL substrate: SAC, behaviour cloning, replay, progressive networks."""

from repro.rl.bc import BcConfig, BehaviorCloner
from repro.rl.pnn import ProgressivePolicy
from repro.rl.policy import PolicyInferencePlan, QNetwork, SquashedGaussianPolicy
from repro.rl.replay import ReplayBuffer
from repro.rl.sac import Sac, SacConfig

__all__ = [
    "BcConfig",
    "BehaviorCloner",
    "PolicyInferencePlan",
    "ProgressivePolicy",
    "QNetwork",
    "ReplayBuffer",
    "Sac",
    "SacConfig",
    "SquashedGaussianPolicy",
]
