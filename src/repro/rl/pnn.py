"""Progressive neural networks (Rusu et al., 2016) for defense training.

Section VI-B: the original driving policy becomes a frozen *column 1*; a
new *column 2* is trained on adversarial episodes while receiving lateral
connections from column 1's hidden activations, so adversarial competence
is added without touching (or forgetting) nominal driving weights.
"""

from __future__ import annotations

import numpy as np

from repro.rl.nn.autograd import Tensor, concat
from repro.rl.nn.layers import Linear, Module
from repro.rl.policy import (
    LOG_STD_MAX,
    LOG_STD_MIN,
    SquashedGaussianPolicy,
)


class ProgressivePolicy(Module):
    """A two-column progressive extension of a squashed-Gaussian policy.

    Column 1 is the frozen base policy's trunk. Column 2 mirrors its
    architecture; each hidden layer past the first receives the previous
    layer of *both* columns (lateral connections), as do the output heads.
    Only column-2 weights (including laterals) are trainable.

    The object implements the same interface as
    :class:`SquashedGaussianPolicy`, so it drops into :class:`~repro.rl.sac.Sac`
    as the actor.
    """

    def __init__(
        self,
        base: SquashedGaussianPolicy,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.obs_dim = base.obs_dim
        self.action_dim = base.action_dim
        self.hidden = base.hidden
        self.column1 = base
        self.column1.freeze()

        widths = list(base.hidden)
        self.column2_layers: list[Linear] = []
        for index, width in enumerate(widths):
            if index == 0:
                in_dim = base.obs_dim
            else:
                in_dim = widths[index - 1] * 2  # own + lateral features
            self.column2_layers.append(Linear(in_dim, width, rng=rng))
        head_in = widths[-1] * 2
        self.mean_head = Linear(head_in, base.action_dim, rng=rng, scale=1e-2)
        self.log_std_head = Linear(head_in, base.action_dim, rng=rng, scale=1e-2)

    # -- autodiff path -----------------------------------------------------------

    def _features(self, obs: Tensor) -> Tensor:
        """Column-2 top features concatenated with column-1 laterals."""
        lateral = []
        h1 = obs
        for layer in self.column1.trunk.layers:
            h1 = layer(h1).relu()
            lateral.append(h1)
        h = obs
        for index, layer in enumerate(self.column2_layers):
            if index > 0:
                h = concat([h, lateral[index - 1]], axis=-1)
            h = layer(h).relu()
        return concat([h, lateral[-1]], axis=-1)

    def distribution(self, obs: Tensor) -> tuple[Tensor, Tensor]:
        features = self._features(obs)
        mean = self.mean_head(features)
        raw = self.log_std_head(features)
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            raw.tanh() + 1.0
        )
        return mean, log_std

    def rsample(self, obs: Tensor, noise: np.ndarray) -> tuple[Tensor, Tensor]:
        return SquashedGaussianPolicy.rsample(self, obs, noise)

    # -- numpy inference path --------------------------------------------------------

    def _features_np(self, obs: np.ndarray) -> np.ndarray:
        lateral = []
        h1 = obs
        for layer in self.column1.trunk.layers[:-1]:
            h1 = np.maximum(h1 @ layer.weight.data + layer.bias.data, 0.0)
            lateral.append(h1)
        last = self.column1.trunk.layers[-1]
        lateral.append(np.maximum(h1 @ last.weight.data + last.bias.data, 0.0))
        h = obs
        for index, layer in enumerate(self.column2_layers):
            if index > 0:
                h = np.concatenate([h, lateral[index - 1]], axis=-1)
            h = np.maximum(h @ layer.weight.data + layer.bias.data, 0.0)
        return np.concatenate([h, lateral[-1]], axis=-1)

    def forward_np(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        features = self._features_np(obs)
        mean = features @ self.mean_head.weight.data + self.mean_head.bias.data
        raw = (
            features @ self.log_std_head.weight.data
            + self.log_std_head.bias.data
        )
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            np.tanh(raw) + 1.0
        )
        return mean, log_std

    def act(
        self,
        obs: np.ndarray,
        deterministic: bool = False,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return SquashedGaussianPolicy.act(self, obs, deterministic, rng)

    def sample_np(
        self, obs: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        return SquashedGaussianPolicy.sample_np(self, obs, rng)
