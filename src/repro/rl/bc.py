"""Behaviour cloning (and DAgger-style dataset aggregation).

Used to warm-start SAC policies: the end-to-end driver clones the modular
pipeline (the paper's privileged agent), and the camera attacker clones the
scripted oracle attacker before SAC refinement. Cloning trains the squashed
mean toward expert actions and regularizes the log-std toward a fixed
exploration level so the subsequent SAC phase starts with sensible entropy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.nn.autograd import Tensor
from repro.rl.nn.optim import Adam
from repro.rl.policy import SquashedGaussianPolicy


@dataclass
class BcConfig:
    """Behaviour-cloning hyper-parameters."""

    lr: float = 1e-3
    batch_size: int = 128
    epochs: int = 20
    #: Target pre-squash log standard deviation after cloning.
    target_log_std: float = -1.5
    #: Weight of the log-std regularizer.
    std_weight: float = 0.1
    max_grad_norm: float = 10.0


class BehaviorCloner:
    """Supervised trainer for a :class:`SquashedGaussianPolicy`."""

    def __init__(
        self,
        policy: SquashedGaussianPolicy,
        config: BcConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.policy = policy
        self.config = config or BcConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(
            policy.parameters(),
            self.config.lr,
            max_grad_norm=self.config.max_grad_norm,
        )

    def fit(
        self, observations: np.ndarray, actions: np.ndarray
    ) -> list[float]:
        """Train on an expert dataset; returns per-epoch mean losses."""
        observations = np.asarray(observations, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.float64)
        if len(observations) != len(actions):
            raise ValueError("observations and actions must align")
        if len(observations) == 0:
            raise ValueError("empty dataset")
        n = len(observations)
        cfg = self.config
        losses = []
        for _ in range(cfg.epochs):
            order = self.rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, cfg.batch_size):
                idx = order[start:start + cfg.batch_size]
                loss = self._step(observations[idx], actions[idx])
                epoch_losses.append(loss)
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def _step(self, obs: np.ndarray, actions: np.ndarray) -> float:
        cfg = self.config
        mean, log_std = self.policy.distribution(Tensor(obs))
        predicted = mean.tanh()
        imitation = ((predicted - Tensor(actions)) ** 2.0).mean()
        std_reg = ((log_std - cfg.target_log_std) ** 2.0).mean()
        loss = imitation + std_reg * cfg.std_weight
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def evaluate(self, observations: np.ndarray, actions: np.ndarray) -> float:
        """Mean squared imitation error without updating the policy."""
        mean, _ = self.policy.forward_np(np.asarray(observations, dtype=float))
        predicted = np.tanh(mean)
        return float(np.mean((predicted - actions) ** 2))
