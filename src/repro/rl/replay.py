"""Experience replay buffer with preallocated storage."""

from __future__ import annotations

import numpy as np


class ReplayBuffer:
    """A fixed-capacity FIFO buffer of transitions.

    Observations are stored as ``float32`` to halve memory (the default
    camera observation is ~400 floats per frame stack); samples are
    returned as ``float64`` for the autodiff update.
    """

    def __init__(self, capacity: int, obs_dim: int, action_dim: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.obs = np.zeros((capacity, obs_dim), dtype=np.float32)
        self.actions = np.zeros((capacity, action_dim), dtype=np.float32)
        self.rewards = np.zeros(capacity, dtype=np.float32)
        self.next_obs = np.zeros((capacity, obs_dim), dtype=np.float32)
        self.dones = np.zeros(capacity, dtype=np.float32)
        self._index = 0
        self._size = 0

    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_obs: np.ndarray,
        done: bool,
    ) -> None:
        """Append one transition, evicting the oldest when full.

        ``done`` should reflect *environment termination* (collision), not
        time-limit truncation, so bootstrapping stays correct at horizon.
        """
        i = self._index
        self.obs[i] = obs
        self.actions[i] = np.atleast_1d(action)
        self.rewards[i] = reward
        self.next_obs[i] = next_obs
        self.dones[i] = float(done)
        self._index = (i + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def __len__(self) -> int:
        return self._size

    def state_dict(self) -> dict[str, np.ndarray]:
        """Stored transitions plus write cursor, trimmed to live size.

        Only the first ``len(self)`` rows are persisted — for a buffer
        that never filled, that keeps checkpoints proportional to the
        experience actually collected, not the capacity.
        """
        n = self._size
        return {
            "obs": self.obs[:n].copy(),
            "actions": self.actions[:n].copy(),
            "rewards": self.rewards[:n].copy(),
            "next_obs": self.next_obs[:n].copy(),
            "dones": self.dones[:n].copy(),
            "index": np.asarray(self._index, dtype=np.int64),
            "size": np.asarray(n, dtype=np.int64),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        n = int(state["size"])
        if n > self.capacity:
            raise ValueError(
                f"checkpointed buffer holds {n} transitions but capacity "
                f"is {self.capacity}"
            )
        if state["obs"].shape[1:] != self.obs.shape[1:]:
            raise ValueError(
                f"checkpointed obs dim {state['obs'].shape[1:]} does not "
                f"match buffer {self.obs.shape[1:]}"
            )
        for name in ("obs", "actions", "rewards", "next_obs", "dones"):
            getattr(self, name)[:n] = state[name][:n]
        self._index = int(state["index"])
        self._size = n

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Uniformly sample a batch of transitions."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        idx = rng.integers(0, self._size, size=batch_size)
        return {
            "obs": self.obs[idx].astype(np.float64),
            "actions": self.actions[idx].astype(np.float64),
            "rewards": self.rewards[idx].astype(np.float64),
            "next_obs": self.next_obs[idx].astype(np.float64),
            "dones": self.dones[idx].astype(np.float64),
        }
