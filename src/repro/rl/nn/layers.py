"""Neural-network modules built on the autodiff core."""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.rl.nn import autograd
from repro.rl.nn.autograd import Tensor


class Module:
    """Base class: parameter registration and checkpoint (de)serialization."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors, discovered recursively."""
        params: list[Tensor] = []
        for value in self.__dict__.values():
            params.extend(_collect(value))
        return params

    def named_parameters(self) -> dict[str, Tensor]:
        """Stable ``name -> tensor`` mapping for checkpoints."""
        named: dict[str, Tensor] = {}
        for key, value in self.__dict__.items():
            for suffix, tensor in _collect_named(value):
                named[f"{key}{suffix}"] = tensor
        return named

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            name: tensor.data.copy()
            for name, tensor in self.named_parameters().items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        named = self.named_parameters()
        missing = set(named) - set(state)
        extra = set(state) - set(named)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for name, tensor in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {tensor.data.shape}"
                )
            tensor.data = value.copy()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> None:
        """Mark all parameters non-trainable (used for PNN column 1)."""
        for param in self.parameters():
            param.requires_grad = False

    def trainable_parameters(self) -> list[Tensor]:
        return [p for p in self.parameters() if p.requires_grad]


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor):
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


def _collect_named(value, prefix: str = "") -> list[tuple[str, Tensor]]:
    if isinstance(value, Tensor):
        return [(prefix, value)]
    if isinstance(value, Module):
        return [
            (f"{prefix}.{name}", tensor)
            for name, tensor in value.named_parameters().items()
        ]
    if isinstance(value, (list, tuple)):
        out: list[tuple[str, Tensor]] = []
        for index, item in enumerate(value):
            out.extend(_collect_named(item, f"{prefix}.{index}"))
        return out
    return []


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with orthogonal-ish init."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator | None = None,
        scale: float | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        limit = scale if scale is not None else math.sqrt(2.0 / in_dim)
        self.weight = Tensor(
            rng.normal(0.0, limit, size=(in_dim, out_dim)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_dim), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias

    @property
    def in_dim(self) -> int:
        return self.weight.data.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.data.shape[1]


Activation = Callable[[Tensor], Tensor]


class InferencePlan:
    """Preallocated activation buffers for tape-free batched inference.

    One plan pins a ``[max_batch, width]`` output buffer per layer so a
    steady-state inference loop (policy rollouts, batched evaluation)
    performs zero allocations per forward: each layer's matmul writes into
    its buffer (``np.matmul(..., out=)``), the bias add and activation run
    in place, and the buffer is reused on the next call. Plans are
    per-network and not thread-safe; results are valid until the next
    forward that uses the same plan.
    """

    def __init__(self, widths: Sequence[int], max_batch: int) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self._buffers = [
            np.empty((self.max_batch, int(width))) for width in widths
        ]

    def out(self, index: int, batch: int) -> np.ndarray:
        """The ``[batch, width]`` output view for layer ``index``."""
        return self._buffers[index][:batch]

    def fits(self, batch: int) -> bool:
        return batch <= self.max_batch


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


class Mlp(Module):
    """A feed-forward stack of :class:`Linear` layers.

    Args:
        sizes: layer widths including input and output,
            e.g. ``(obs_dim, 128, 128, act_dim)``.
        activation: hidden-layer nonlinearity.
        output_activation: applied to the final layer (``None`` = linear).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: Activation = relu,
        output_activation: Activation | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        self.layers = [
            Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])
        ]
        self.activation = activation
        self.output_activation = output_activation
        self.sizes = tuple(sizes)

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = self.activation(layer(x))
        x = self.layers[-1](x)
        if self.output_activation is not None:
            x = self.output_activation(x)
        return x

    def hidden_features(self, x: Tensor) -> list[Tensor]:
        """Activations after each hidden layer (PNN lateral sources)."""
        features = []
        for layer in self.layers[:-1]:
            x = self.activation(layer(x))
            features.append(x)
        return features

    def inference_plan(self, max_batch: int) -> InferencePlan:
        """Buffers for the fused :meth:`forward_np` path on this stack."""
        return InferencePlan(
            [layer.out_dim for layer in self.layers], max_batch
        )

    def forward_np(
        self, x: np.ndarray, plan: InferencePlan | None = None
    ) -> np.ndarray:
        """Fast inference path without building an autodiff graph.

        With ``plan`` (from :meth:`inference_plan`) and a 2-D input that
        fits, every Linear+activation pair runs fused into the plan's
        preallocated buffers — no per-call allocations, identical results
        (``np.matmul(out=)`` + in-place bias/activation compute the same
        ops as the allocating expressions). The returned array aliases the
        plan's last buffer and is only valid until the next planned call.
        """
        hook = autograd.FLOP_HOOK
        if hook is not None:
            # One batched sweep over the whole stack: matmul + bias +
            # activation per layer, same bookkeeping as the taped path
            # (shared by the allocating and the fused plan path).
            batch = 1 if x.ndim == 1 else x.shape[0]
            for layer in self.layers:
                hook.matmul(batch, layer.in_dim, layer.out_dim)
                hook.elementwise("add_fwd", batch * layer.out_dim)
            for layer in self.layers[:-1]:
                hook.elementwise(
                    _activation_op(self.activation), batch * layer.out_dim
                )
            if self.output_activation is not None:
                hook.elementwise(
                    _activation_op(self.output_activation),
                    batch * self.layers[-1].out_dim,
                )
        if plan is not None and x.ndim == 2 and plan.fits(x.shape[0]):
            batch = x.shape[0]
            for index, layer in enumerate(self.layers):
                out = plan.out(index, batch)
                np.matmul(x, layer.weight.data, out=out)
                out += layer.bias.data
                activation = (
                    self.activation
                    if index < len(self.layers) - 1
                    else self.output_activation
                )
                if activation is not None:
                    _apply_np_inplace(activation, out)
                x = out
            return x
        for layer in self.layers[:-1]:
            x = x @ layer.weight.data + layer.bias.data
            x = _apply_np(self.activation, x)
        x = x @ self.layers[-1].weight.data + self.layers[-1].bias.data
        if self.output_activation is not None:
            x = _apply_np(self.output_activation, x)
        return x


def _activation_op(activation: Activation) -> str:
    if activation is relu:
        return "relu_fwd"
    if activation is tanh:
        return "tanh_fwd"
    return "activation_fwd"


def _apply_np(activation: Activation, x: np.ndarray) -> np.ndarray:
    if activation is relu:
        return np.maximum(x, 0.0)
    if activation is tanh:
        return np.tanh(x)
    return activation(Tensor(x)).data


def _apply_np_inplace(activation: Activation, x: np.ndarray) -> None:
    """In-place activation for the fused buffer path."""
    if activation is relu:
        np.maximum(x, 0.0, out=x)
    elif activation is tanh:
        np.tanh(x, out=x)
    else:
        x[...] = activation(Tensor(x)).data
