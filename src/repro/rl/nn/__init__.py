"""Numpy neural-network core: autodiff tensors, layers, optimizers."""

from repro.rl.nn.autograd import Tensor, concat, gaussian_log_prob, minimum
from repro.rl.nn.flops import FlopCounter, get_flop_counter
from repro.rl.nn.layers import InferencePlan, Linear, Mlp, Module, relu, tanh
from repro.rl.nn.optim import Adam, Sgd

__all__ = [
    "Adam",
    "FlopCounter",
    "InferencePlan",
    "Linear",
    "Mlp",
    "Module",
    "Sgd",
    "Tensor",
    "concat",
    "gaussian_log_prob",
    "get_flop_counter",
    "minimum",
    "relu",
    "tanh",
]
