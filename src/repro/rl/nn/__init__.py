"""Numpy neural-network core: autodiff tensors, layers, optimizers."""

from repro.rl.nn.autograd import Tensor, concat, gaussian_log_prob, minimum
from repro.rl.nn.layers import Linear, Mlp, Module, relu, tanh
from repro.rl.nn.optim import Adam, Sgd

__all__ = [
    "Adam",
    "Linear",
    "Mlp",
    "Module",
    "Sgd",
    "Tensor",
    "concat",
    "gaussian_log_prob",
    "minimum",
    "relu",
    "tanh",
]
