"""Gradient-descent optimizers for the autodiff tensors."""

from __future__ import annotations

import numpy as np

from repro.rl.nn.autograd import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Tensor], lr: float) -> None:
        if lr <= 0.0:
            raise ValueError("learning rate must be positive")
        self.params = [p for p in params if p.requires_grad]
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def _load_slots(
    name: str, slots: list[np.ndarray], state: dict[str, np.ndarray], key: str
) -> None:
    for i, slot in enumerate(slots):
        value = state[f"{key}_{i}"]
        if value.shape != slot.shape:
            raise ValueError(
                f"{name} state {key}_{i} has shape {value.shape}, "
                f"expected {slot.shape}"
            )
        slot[...] = value


class Sgd(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: list[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity

    def state_dict(self) -> dict[str, np.ndarray]:
        """Momentum slots, keyed by parameter index (the order is fixed)."""
        return {
            f"velocity_{i}": v.copy() for i, v in enumerate(self._velocity)
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        _load_slots("Sgd", self._velocity, state, "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        max_grad_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        if self.max_grad_norm is not None:
            self._clip_grads()
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Moment estimates and step count, keyed by parameter index."""
        state = {f"m_{i}": m.copy() for i, m in enumerate(self._m)}
        state.update({f"v_{i}": v.copy() for i, v in enumerate(self._v)})
        state["t"] = np.asarray(self._t, dtype=np.int64)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        _load_slots("Adam", self._m, state, "m")
        _load_slots("Adam", self._v, state, "v")
        self._t = int(state["t"])

    def _clip_grads(self) -> None:
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad * param.grad))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0.0:
            scale = self.max_grad_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
