"""Gradient-descent optimizers for the autodiff tensors."""

from __future__ import annotations

import numpy as np

from repro.rl.nn.autograd import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Tensor], lr: float) -> None:
        if lr <= 0.0:
            raise ValueError("learning rate must be positive")
        self.params = [p for p in params if p.requires_grad]
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class Sgd(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: list[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        max_grad_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        if self.max_grad_norm is not None:
            self._clip_grads()
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _clip_grads(self) -> None:
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad * param.grad))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0.0:
            scale = self.max_grad_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
