"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small tape-based autodiff engine — the substrate that
replaces a GPU deep-learning framework for this reproduction. It supports
exactly the operations needed by SAC, behaviour cloning and progressive
networks: affine maps, pointwise nonlinearities, broadcasting arithmetic,
reductions, elementwise min, and concatenation.

Gradient correctness is verified against finite differences in
``tests/rl/test_autograd.py``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

ArrayLike = "np.ndarray | float | int"

#: FLOP-accounting hook — ``None`` (the default) means counting is off
#: and every op pays exactly one identity comparison. Set to the
#: process-wide :class:`repro.rl.nn.flops.FlopCounter` by its
#: ``enable()``; the ops below then report matmul / elementwise work.
FLOP_HOOK = None


def _matmul_dims(
    a_shape: tuple[int, ...], b_shape: tuple[int, ...]
) -> tuple[int, int, int]:
    """Effective ``(m, k, n)`` of ``a @ b`` (1-D operands rank-extended)."""
    k = a_shape[-1]
    m = 1
    for dim in a_shape[:-1]:
        m *= dim
    n = b_shape[-1] if len(b_shape) > 1 else 1
    return m, k, n


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum across axes that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")
    __array_priority__ = 100  # keep numpy from hijacking reflected ops

    def __init__(
        self,
        data: "ArrayLike",
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward

    # -- graph bookkeeping ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _lift(value: "ArrayLike | Tensor") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _needs(self, *others: "Tensor") -> bool:
        return self.requires_grad or any(o.requires_grad for o in others)

    # -- arithmetic ---------------------------------------------------------------

    def __add__(self, other: "ArrayLike | Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data
        if FLOP_HOOK is not None:
            FLOP_HOOK.elementwise("add_fwd", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate(grad)
            if other.requires_grad or other._parents:
                other._accumulate(grad)

        return Tensor(
            out_data,
            requires_grad=self._needs(other),
            _parents=(self, other),
            _backward=backward,
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor(
            -self.data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def __sub__(self, other: "ArrayLike | Tensor") -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: "ArrayLike | Tensor") -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: "ArrayLike | Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate(grad * other.data)
            if other.requires_grad or other._parents:
                other._accumulate(grad * self.data)

        return Tensor(
            out_data,
            requires_grad=self._needs(other),
            _parents=(self, other),
            _backward=backward,
        )

    __rmul__ = __mul__

    def __truediv__(self, other: "ArrayLike | Tensor") -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: "ArrayLike | Tensor") -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def __matmul__(self, other: "ArrayLike | Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data
        if FLOP_HOOK is not None:
            FLOP_HOOK.matmul(*_matmul_dims(self.data.shape, other.data.shape))

        def backward(grad: np.ndarray) -> None:
            if FLOP_HOOK is not None:
                FLOP_HOOK.matmul(
                    *_matmul_dims(self.data.shape, other.data.shape),
                    backward=True,
                )
            if self.requires_grad or self._parents:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad or other._parents:
                other._accumulate(self.data.T @ grad)

        return Tensor(
            out_data,
            requires_grad=self._needs(other),
            _parents=(self, other),
            _backward=backward,
        )

    # -- nonlinearities -----------------------------------------------------------

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if FLOP_HOOK is not None:
            FLOP_HOOK.elementwise("tanh_fwd", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if FLOP_HOOK is not None:
                FLOP_HOOK.elementwise("tanh_bwd", out_data.size)
            self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)
        if FLOP_HOOK is not None:
            FLOP_HOOK.elementwise("relu_fwd", out_data.size)

        def backward(grad: np.ndarray) -> None:
            if FLOP_HOOK is not None:
                FLOP_HOOK.elementwise("relu_bwd", out_data.size)
            self._accumulate(grad * (self.data > 0.0))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``."""
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is zero outside ``[low, high]``."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    # -- reductions --------------------------------------------------------------

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = np.asarray(grad)
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor(
            out_data,
            requires_grad=self.requires_grad,
            _parents=(self,),
            _backward=backward,
        )

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else self.data.shape[axis]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- misc ----------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; the gradient routes to the smaller input
    (split evenly on exact ties)."""
    out_data = np.minimum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_smaller = a.data < b.data
        b_smaller = b.data < a.data
        ties = a.data == b.data
        if a.requires_grad or a._parents:
            a._accumulate(grad * (a_smaller + 0.5 * ties))
        if b.requires_grad or b._parents:
            b._accumulate(grad * (b_smaller + 0.5 * ties))

    return Tensor(
        out_data,
        requires_grad=a.requires_grad or b.requires_grad,
        _parents=(a, b),
        _backward=backward,
    )


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (used by PNN lateral inputs)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            if tensor.requires_grad or tensor._parents:
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor(
        out_data,
        requires_grad=any(t.requires_grad for t in tensors),
        _parents=tuple(tensors),
        _backward=backward,
    )


GAUSSIAN_LOG_NORM = 0.5 * math.log(2.0 * math.pi)


def gaussian_log_prob(x: Tensor, mean: Tensor, log_std: Tensor) -> Tensor:
    """Per-dimension diagonal Gaussian log density, summed over the last axis."""
    std = log_std.exp()
    z = (x - mean) / std
    per_dim = -(z ** 2.0) * 0.5 - log_std - GAUSSIAN_LOG_NORM
    return per_dim.sum(axis=-1)
