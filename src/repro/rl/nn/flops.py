"""FLOP/byte accounting for the numpy NN substrate.

The policy nets are the benchmark's hottest code (200k+ forwards per
bench session), and the planned fused/batched inference work needs the
number that justifies it: achieved MFLOP/s and arithmetic intensity
(FLOPs per byte moved). This module counts floating-point work and
memory traffic of the layers in :mod:`repro.rl.nn.layers` — both the
taped autograd path (forward *and* backward) and the tape-free
``forward_np`` fast path.

Counting is **off by default** and hooked in with a single module-global
truthiness check per op (``autograd.FLOP_HOOK``), so disabled runs pay
one pointer comparison — within noise. When enabled, every op adds to a
process-wide :class:`FlopCounter` and to cached
:mod:`repro.telemetry.metrics` counters (``nn_flops_total{op=...}`` /
``nn_bytes_total{op=...}``), so FLOP totals appear in every metrics
snapshot alongside the span timings.

Conventions (the usual roofline bookkeeping):

* matmul ``[m,k] @ [k,n]`` — ``2*m*k*n`` FLOPs (multiply + add),
  ``8*(m*k + k*n + m*n)`` bytes (read A and B, write C, float64);
* its backward — two matmuls, ``4*m*k*n`` FLOPs;
* elementwise ops (bias add, relu, tanh, ...) — one FLOP per element,
  ``16`` bytes per element (read + write). ``tanh`` is counted as one
  FLOP like everything else; hardware cost differs, but the counter
  tracks *work shape*, not cycles.

Counting never touches an RNG and never changes any computed value, so
the determinism proofs hold with it enabled.
"""

from __future__ import annotations

_ITEMSIZE = 8  # float64 throughout the substrate


class FlopCounter:
    """Process-wide accumulator of NN floating-point work and bytes."""

    __slots__ = ("enabled", "flops", "bytes", "grand_flops", "grand_bytes",
                 "_registry_counters")

    def __init__(self) -> None:
        self.enabled = False
        #: op label -> FLOPs / bytes accumulated while enabled.
        self.flops: dict[str, float] = {}
        self.bytes: dict[str, float] = {}
        #: Running totals, so per-span attribution probes read O(1).
        self.grand_flops = 0.0
        self.grand_bytes = 0.0
        self._registry_counters: dict[str, tuple] = {}

    # -- switches ---------------------------------------------------------------

    def enable(self) -> None:
        """Start counting (installs the autograd hook)."""
        from repro.rl.nn import autograd

        self.enabled = True
        autograd.FLOP_HOOK = self

    def disable(self) -> None:
        from repro.rl.nn import autograd

        self.enabled = False
        if autograd.FLOP_HOOK is self:
            autograd.FLOP_HOOK = None

    def reset(self) -> None:
        self.flops.clear()
        self.bytes.clear()
        self.grand_flops = 0.0
        self.grand_bytes = 0.0

    # -- recording --------------------------------------------------------------

    def _metrics(self, op: str) -> tuple:
        pair = self._registry_counters.get(op)
        if pair is None:
            from repro.telemetry.metrics import get_registry

            registry = get_registry()
            pair = self._registry_counters[op] = (
                registry.counter("nn_flops_total", op=op),
                registry.counter("nn_bytes_total", op=op),
            )
        return pair

    def _record(self, op: str, flops: float, nbytes: float) -> None:
        self.flops[op] = self.flops.get(op, 0.0) + flops
        self.bytes[op] = self.bytes.get(op, 0.0) + nbytes
        self.grand_flops += flops
        self.grand_bytes += nbytes
        flop_counter, byte_counter = self._metrics(op)
        flop_counter.inc(flops)
        byte_counter.inc(nbytes)

    def matmul(self, m: int, k: int, n: int, backward: bool = False) -> None:
        """One ``[m,k] @ [k,n]`` product (or its two backward products)."""
        if backward:
            self._record(
                "matmul_bwd",
                4.0 * m * k * n,
                _ITEMSIZE * (3.0 * m * n + 2.0 * m * k + 2.0 * k * n),
            )
        else:
            self._record(
                "matmul_fwd",
                2.0 * m * k * n,
                _ITEMSIZE * (m * k + k * n + m * n),
            )

    def elementwise(self, op: str, count: int) -> None:
        """``count`` one-FLOP-per-element operations (add, relu, tanh...)."""
        self._record(op, float(count), 2.0 * _ITEMSIZE * count)

    # -- reporting --------------------------------------------------------------

    def total_flops(self) -> float:
        return self.grand_flops

    def total_bytes(self) -> float:
        return self.grand_bytes

    def intensity(self) -> float:
        """Arithmetic intensity: FLOPs per byte moved (0 when idle)."""
        moved = self.total_bytes()
        return self.total_flops() / moved if moved else 0.0

    def snapshot(self) -> dict:
        """JSON-serializable state: per-op and total FLOPs/bytes."""
        return {
            "enabled": self.enabled,
            "flops": {op: self.flops[op] for op in sorted(self.flops)},
            "bytes": {op: self.bytes[op] for op in sorted(self.bytes)},
            "total_flops": self.total_flops(),
            "total_bytes": self.total_bytes(),
            "intensity": round(self.intensity(), 4),
        }


_COUNTER = FlopCounter()


def get_flop_counter() -> FlopCounter:
    """The process-wide FLOP counter (disabled until ``enable()``)."""
    return _COUNTER
