"""Per-update learner health emission shared by the SAC training loops.

Every SAC loop in the repo (attacker refinement, driver refinement,
adversarial fine-tuning) funnels its post-update statistics through a
:class:`HealthEmitter`, which writes schema-checked ``update_health``
records (see :mod:`repro.telemetry.trace`) into the loop's trace writer
every ``health_every`` gradient updates. The records carry everything the
live watchdogs in :mod:`repro.obsv.alerts` evaluate: losses, alpha,
Q-value mean/max, policy entropy, actor/critic gradient norms,
replay-buffer occupancy, and environment steps per second.

Emission is off by default (``health_every = 0``); enable it per-config
(:attr:`repro.rl.sac.SacConfig.health_every`) or process-wide with the
``REPRO_HEALTH_EVERY`` environment variable. Like the rest of the
telemetry layer it is a pure observer — it never touches an RNG or feeds
back into training.
"""

from __future__ import annotations

import os
import time

from repro.telemetry.trace import TraceWriter

#: Learner statistics copied verbatim from ``Sac.update()`` results.
_HEALTH_FIELDS = (
    "critic_loss",
    "actor_loss",
    "alpha_loss",
    "alpha",
    "q_mean",
    "q_max",
    "entropy",
    "actor_grad_norm",
    "critic_grad_norm",
)


def health_interval(configured: int | None = None) -> int:
    """Effective emission interval in updates (0 = disabled).

    An explicit positive ``configured`` value wins; otherwise the
    ``REPRO_HEALTH_EVERY`` environment variable is consulted.
    """
    if configured:
        return max(int(configured), 0)
    raw = os.environ.get("REPRO_HEALTH_EVERY", "")
    try:
        return max(int(raw), 0) if raw.strip() else 0
    except ValueError:
        return 0


class HealthEmitter:
    """Writes one ``update_health`` record every N gradient updates."""

    def __init__(
        self,
        trace: TraceWriter | None,
        loop: str,
        every: int | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.trace = trace
        self.loop = loop
        self.every = health_interval(every)
        self._clock = clock
        self._last_time: float | None = None
        self._last_step = 0
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return self.trace is not None and self.every > 0

    def after_update(self, sac, step: int, stats: dict) -> dict | None:
        """Emit a health record if this update lands on the interval.

        Args:
            sac: the live :class:`~repro.rl.sac.Sac` learner.
            step: the environment-step index of the enclosing loop.
            stats: the dict returned by ``sac.update()``.

        Returns the emitted record, or ``None`` when skipped.
        """
        if not self.enabled or sac.total_updates % self.every != 0:
            return None
        now = self._clock()
        fields = {k: float(stats[k]) for k in _HEALTH_FIELDS if k in stats}
        fields.update(sac.health())
        if self._last_time is not None and now > self._last_time:
            fields["steps_per_s"] = (step - self._last_step) / (
                now - self._last_time
            )
        self._last_time, self._last_step = now, step
        self.emitted += 1
        return self.trace.emit(
            "update_health",
            loop=self.loop,
            step=int(step),
            update=int(sac.total_updates),
            **fields,
        )
