"""Soft actor-critic (Haarnoja et al., 2018).

The DRL algorithm used by the paper for the end-to-end driving agent, the
adversarial attack policies, and adversarial fine-tuning. Twin Q critics
with polyak-averaged targets, a tanh-Gaussian actor, and automatic
entropy-temperature tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import faults
from repro.rl.nn.autograd import Tensor, minimum
from repro.rl.nn.optim import Adam
from repro.rl.policy import QNetwork, SquashedGaussianPolicy
from repro.rl.replay import ReplayBuffer
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import span


@dataclass
class SacConfig:
    """Hyper-parameters of the SAC learner."""

    hidden: tuple[int, ...] = (128, 128)
    gamma: float = 0.99
    tau: float = 0.005
    actor_lr: float = 3e-4
    critic_lr: float = 3e-4
    alpha_lr: float = 3e-4
    #: Initial entropy temperature.
    alpha: float = 0.1
    #: Automatically tune alpha toward ``target_entropy``.
    autotune_alpha: bool = True
    #: Defaults to ``-action_dim`` when None.
    target_entropy: float | None = None
    batch_size: int = 128
    buffer_capacity: int = 100_000
    #: Environment steps of uniform-random exploration before the policy.
    start_steps: int = 1_000
    #: Steps between gradient updates (1 = every step).
    update_every: int = 1
    #: Gradient updates performed per update round.
    updates_per_round: int = 1
    #: Number of initial updates that train the critics only. Warm-started
    #: (behaviour-cloned) actors would otherwise be dragged toward the
    #: randomly initialized critics' argmax and forget the warm start.
    actor_delay: int = 0
    max_grad_norm: float = 10.0
    #: Emit one ``update_health`` trace record every this many gradient
    #: updates (0 = disabled; ``REPRO_HEALTH_EVERY`` overrides 0).
    health_every: int = 0
    #: Snapshot resumable training state every this many environment
    #: steps (0 = disabled; ``REPRO_CHECKPOINT_EVERY`` overrides 0).
    #: Snapshots land at the first episode boundary at or after the
    #: due step, where the loop state is fully serializable.
    checkpoint_every: int = 0
    #: Directory for training snapshots (``REPRO_CHECKPOINT_DIR``
    #: overrides None); the loop label is appended as a subdirectory.
    checkpoint_dir: str | None = None
    #: Keep the newest K periodic snapshots (``REPRO_CHECKPOINT_KEEP``).
    checkpoint_keep: int = 3
    #: Resume from the latest snapshot in the checkpoint directory
    #: (``REPRO_RESUME``). With no snapshot present, train from scratch.
    resume: bool = False
    #: On a critical watchdog alert (``nan_loss``/``q_divergence``),
    #: snapshot and raise ``TrainingHalted`` instead of training on
    #: (``REPRO_HALT_ON_ALERT``).
    halt_on_alert: bool = False


class Sac:
    """The SAC learner: actor, twin critics, targets, and replay."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        config: SacConfig | None = None,
        rng: np.random.Generator | None = None,
        actor: SquashedGaussianPolicy | None = None,
    ) -> None:
        """Build the learner.

        Args:
            actor: optional pre-built policy (e.g. a behaviour-cloned warm
                start or a progressive-network policy); defaults to a fresh
                :class:`SquashedGaussianPolicy`.
        """
        self.config = config or SacConfig()
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.rng = rng or np.random.default_rng(0)
        cfg = self.config

        self.actor = actor or SquashedGaussianPolicy(
            obs_dim, action_dim, cfg.hidden, rng=self.rng
        )
        self.q1 = QNetwork(obs_dim, action_dim, cfg.hidden, rng=self.rng)
        self.q2 = QNetwork(obs_dim, action_dim, cfg.hidden, rng=self.rng)
        self.q1_target = QNetwork(obs_dim, action_dim, cfg.hidden, rng=self.rng)
        self.q2_target = QNetwork(obs_dim, action_dim, cfg.hidden, rng=self.rng)
        self.q1_target.load_state_dict(self.q1.state_dict())
        self.q2_target.load_state_dict(self.q2.state_dict())

        self.log_alpha = Tensor(
            np.array(np.log(cfg.alpha)), requires_grad=cfg.autotune_alpha
        )
        self.target_entropy = (
            cfg.target_entropy
            if cfg.target_entropy is not None
            else -float(action_dim)
        )

        self.actor_opt = Adam(
            self.actor.parameters(), cfg.actor_lr, max_grad_norm=cfg.max_grad_norm
        )
        self.critic_opt = Adam(
            self.q1.parameters() + self.q2.parameters(),
            cfg.critic_lr,
            max_grad_norm=cfg.max_grad_norm,
        )
        self.alpha_opt = Adam([self.log_alpha], cfg.alpha_lr)

        self.replay = ReplayBuffer(cfg.buffer_capacity, obs_dim, action_dim)
        self.total_updates = 0

        # Cached telemetry handles; the gauges track the *latest* SAC
        # instance to update (one learner is live at a time in practice).
        registry = get_registry()
        self._gauge_critic = registry.gauge("sac_critic_loss")
        self._gauge_actor = registry.gauge("sac_actor_loss")
        self._gauge_alpha = registry.gauge("sac_alpha")
        self._gauge_replay = registry.gauge("sac_replay_occupancy")
        self._gauge_entropy = registry.gauge("sac_policy_entropy")
        self._gauge_q_max = registry.gauge("sac_q_max")
        self._counter_updates = registry.counter("sac_updates_total")

    # -- acting -------------------------------------------------------------------

    @property
    def alpha(self) -> float:
        return float(np.exp(self.log_alpha.data))

    def act(self, obs: np.ndarray, deterministic: bool = False) -> np.ndarray:
        """Policy action in ``[-1, 1]^action_dim``."""
        return self.actor.act(obs, deterministic=deterministic, rng=self.rng)

    def random_action(self) -> np.ndarray:
        """Uniform exploration action (used for the first ``start_steps``)."""
        return self.rng.uniform(-1.0, 1.0, size=self.action_dim)

    # -- learning ------------------------------------------------------------------

    def observe(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_obs: np.ndarray,
        done: bool,
    ) -> None:
        """Store one transition in the replay buffer."""
        self.replay.add(obs, action, reward, next_obs, done)

    def update(self) -> dict[str, float]:
        """One SAC gradient update from a replay minibatch."""
        with span("sac.update"):
            stats = self._update()
        self._gauge_critic.set(stats["critic_loss"])
        self._gauge_actor.set(stats["actor_loss"])
        self._gauge_alpha.set(stats["alpha"])
        self._gauge_replay.set(len(self.replay))
        self._gauge_entropy.set(stats["entropy"])
        self._gauge_q_max.set(stats["q_max"])
        self._counter_updates.inc()
        return stats

    def health(self) -> dict[str, int]:
        """Learner-level health fields (merged into ``update_health``)."""
        return {
            "buffer_size": len(self.replay),
            "buffer_capacity": self.replay.capacity,
        }

    @staticmethod
    def _grad_norm(params) -> float:
        """Global L2 norm over a parameter list's current gradients."""
        total = 0.0
        for param in params:
            if param.grad is not None:
                total += float(np.sum(param.grad * param.grad))
        return float(np.sqrt(total))

    def _update(self) -> dict[str, float]:
        cfg = self.config
        batch = self.replay.sample(cfg.batch_size, self.rng)
        obs = batch["obs"]
        actions = batch["actions"]
        rewards = batch["rewards"]
        next_obs = batch["next_obs"]
        dones = batch["dones"]

        # Bellman targets (no gradients needed -> numpy fast path).
        next_actions, next_log_prob = self.actor.sample_np(next_obs, self.rng)
        q_next = np.minimum(
            self.q1_target.forward_np(next_obs, next_actions),
            self.q2_target.forward_np(next_obs, next_actions),
        )
        alpha = self.alpha
        targets = rewards + cfg.gamma * (1.0 - dones) * (
            q_next - alpha * next_log_prob
        )

        # Critic update.
        obs_t = Tensor(obs)
        act_t = Tensor(actions)
        target_t = Tensor(targets)
        q1_pred = self.q1(obs_t, act_t)
        q2_pred = self.q2(obs_t, act_t)
        critic_loss = ((q1_pred - target_t) ** 2.0).mean() + (
            (q2_pred - target_t) ** 2.0
        ).mean()
        self.critic_opt.zero_grad()
        critic_loss.backward()
        plan = faults.active_plan()
        if plan is not None:
            plan.on_gradients("critic", self.critic_opt.params, self.total_updates)
        critic_grad_norm = self._grad_norm(self.critic_opt.params)
        self.critic_opt.step()

        # Actor update (critic gradients are discarded via zero_grad).
        actor_loss_value = 0.0
        actor_grad_norm = 0.0
        log_prob = None
        if self.total_updates >= cfg.actor_delay:
            noise = self.rng.standard_normal((cfg.batch_size, self.action_dim))
            new_actions, log_prob = self.actor.rsample(obs_t, noise)
            q_new = minimum(
                self.q1(obs_t, new_actions), self.q2(obs_t, new_actions)
            )
            actor_loss = (log_prob * alpha - q_new).mean()
            self.actor_opt.zero_grad()
            self.critic_opt.zero_grad()
            actor_loss.backward()
            actor_grad_norm = self._grad_norm(self.actor_opt.params)
            self.actor_opt.step()
            self.critic_opt.zero_grad()
            actor_loss_value = float(actor_loss.data)

        # Temperature update.
        alpha_loss_value = 0.0
        if cfg.autotune_alpha and log_prob is not None:
            entropy_gap = Tensor(log_prob.data + self.target_entropy)
            alpha_loss = -(self.log_alpha * entropy_gap).mean()
            self.alpha_opt.zero_grad()
            alpha_loss.backward()
            self.alpha_opt.step()
            alpha_loss_value = float(alpha_loss.data)

        self._polyak(self.q1, self.q1_target)
        self._polyak(self.q2, self.q2_target)
        self.total_updates += 1
        # Entropy estimate from the freshest log-probs available: the
        # actor's reparameterized batch when the actor trained this round,
        # else the target-sampling batch (critic-only warmup).
        log_probs = log_prob.data if log_prob is not None else next_log_prob
        return {
            "critic_loss": float(critic_loss.data),
            "actor_loss": actor_loss_value,
            "alpha_loss": alpha_loss_value,
            "alpha": self.alpha,
            "q1_mean": float(q1_pred.data.mean()),
            "q_mean": float(q1_pred.data.mean()),
            "q_max": float(
                max(np.abs(q1_pred.data).max(), np.abs(q2_pred.data).max())
            ),
            "entropy": float(-np.mean(log_probs)),
            "actor_grad_norm": actor_grad_norm,
            "critic_grad_norm": critic_grad_norm,
        }

    def _polyak(self, source: QNetwork, target: QNetwork) -> None:
        tau = self.config.tau
        source_params = source.named_parameters()
        for name, param in target.named_parameters().items():
            param.data *= 1.0 - tau
            param.data += tau * source_params[name].data

    # -- checkpoints ------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {}
        for prefix, module in (
            ("actor", self.actor),
            ("q1", self.q1),
            ("q2", self.q2),
            ("q1_target", self.q1_target),
            ("q2_target", self.q2_target),
        ):
            for name, value in module.state_dict().items():
                state[f"{prefix}:{name}"] = value
        state["log_alpha"] = self.log_alpha.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for prefix, module in (
            ("actor", self.actor),
            ("q1", self.q1),
            ("q2", self.q2),
            ("q1_target", self.q1_target),
            ("q2_target", self.q2_target),
        ):
            module.load_state_dict(
                {
                    name[len(prefix) + 1:]: value
                    for name, value in state.items()
                    if name.startswith(f"{prefix}:")
                }
            )
        self.log_alpha.data = np.asarray(state["log_alpha"], dtype=np.float64)
