"""Actor and critic networks for soft actor-critic.

The actor is a tanh-squashed diagonal Gaussian (actions in ``[-1, 1]^n``),
the critic an action-value MLP. Both offer a fast numpy inference path for
rollouts and target computation, and an autodiff path for updates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rl.nn import autograd
from repro.rl.nn.autograd import Tensor, concat, gaussian_log_prob
from repro.rl.nn.layers import Linear, Mlp, Module, relu

LOG_STD_MIN = -5.0
LOG_STD_MAX = 2.0
_LOG2 = math.log(2.0)


class SquashedGaussianPolicy(Module):
    """Stochastic policy ``pi(a | s) = tanh(N(mu(s), sigma(s)))``."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden: tuple[int, ...] = (128, 128),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.hidden = tuple(hidden)
        self.trunk = Mlp(
            (obs_dim, *hidden), activation=relu, output_activation=relu, rng=rng
        )
        self.mean_head = Linear(hidden[-1], action_dim, rng=rng, scale=1e-2)
        self.log_std_head = Linear(hidden[-1], action_dim, rng=rng, scale=1e-2)

    # -- autodiff path ---------------------------------------------------------

    def distribution(self, obs: Tensor) -> tuple[Tensor, Tensor]:
        """Mean and (bounded) log-std of the pre-squash Gaussian."""
        features = self.trunk(obs)
        mean = self.mean_head(features)
        raw = self.log_std_head(features)
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            raw.tanh() + 1.0
        )
        return mean, log_std

    def rsample(
        self, obs: Tensor, noise: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """Reparameterized sample and its log-probability.

        Args:
            obs: batch of observations, shape ``(n, obs_dim)``.
            noise: standard-normal draws, shape ``(n, action_dim)``.

        Returns:
            ``(action, log_prob)`` with the tanh change-of-variables
            correction applied in its numerically stable softplus form.
        """
        mean, log_std = self.distribution(obs)
        std = log_std.exp()
        pre_squash = mean + std * Tensor(noise)
        action = pre_squash.tanh()
        log_prob = gaussian_log_prob(pre_squash, mean, log_std)
        # log(1 - tanh(x)^2) = 2 * (log 2 - x - softplus(-2x))
        correction = ((-pre_squash + _LOG2) - (pre_squash * -2.0).softplus()) * 2.0
        log_prob = log_prob - correction.sum(axis=-1)
        return action, log_prob

    # -- numpy inference path ------------------------------------------------------

    def forward_np(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and log-std without building a graph."""
        hook = autograd.FLOP_HOOK
        if hook is not None:
            batch = 1 if obs.ndim == 1 else obs.shape[0]
            for head in (self.mean_head, self.log_std_head):
                hook.matmul(batch, head.in_dim, head.out_dim)
                hook.elementwise("add_fwd", batch * head.out_dim)
            hook.elementwise("tanh_fwd", batch * self.action_dim)
        features = self.trunk.forward_np(obs)
        mean = features @ self.mean_head.weight.data + self.mean_head.bias.data
        raw = (
            features @ self.log_std_head.weight.data
            + self.log_std_head.bias.data
        )
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            np.tanh(raw) + 1.0
        )
        return mean, log_std

    def act(
        self,
        obs: np.ndarray,
        deterministic: bool = False,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Action for a single observation (or batch), in ``[-1, 1]``."""
        squeeze = obs.ndim == 1
        batch = obs[None, :] if squeeze else obs
        mean, log_std = self.forward_np(batch)
        if deterministic:
            action = np.tanh(mean)
        else:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(mean.shape)
            action = np.tanh(mean + np.exp(log_std) * noise)
        return action[0] if squeeze else action

    def sample_np(
        self, obs: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Numpy-only sample + log-prob (for SAC target computation)."""
        mean, log_std = self.forward_np(obs)
        std = np.exp(log_std)
        noise = rng.standard_normal(mean.shape)
        pre_squash = mean + std * noise
        action = np.tanh(pre_squash)
        z = (pre_squash - mean) / std
        log_prob = np.sum(
            -0.5 * z * z - log_std - 0.5 * math.log(2.0 * math.pi), axis=-1
        )
        correction = 2.0 * (
            _LOG2 - pre_squash - np.logaddexp(0.0, -2.0 * pre_squash)
        )
        log_prob = log_prob - correction.sum(axis=-1)
        return action, log_prob


class QNetwork(Module):
    """Action-value critic ``Q(s, a)``."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden: tuple[int, ...] = (128, 128),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.net = Mlp((obs_dim + action_dim, *hidden, 1), rng=rng)

    def __call__(self, obs: Tensor, action: Tensor) -> Tensor:
        """Q values, shape ``(n,)``."""
        joint = concat([obs, action], axis=-1)
        return self.net(joint).sum(axis=-1)

    def forward_np(self, obs: np.ndarray, action: np.ndarray) -> np.ndarray:
        joint = np.concatenate([obs, action], axis=-1)
        return self.net.forward_np(joint)[:, 0]
