"""Actor and critic networks for soft actor-critic.

The actor is a tanh-squashed diagonal Gaussian (actions in ``[-1, 1]^n``),
the critic an action-value MLP. Both offer a fast numpy inference path for
rollouts and target computation, and an autodiff path for updates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.rl.nn import autograd
from repro.rl.nn.autograd import Tensor, concat, gaussian_log_prob
from repro.rl.nn.layers import InferencePlan, Linear, Mlp, Module, relu

LOG_STD_MIN = -5.0
LOG_STD_MAX = 2.0
_LOG2 = math.log(2.0)


class PolicyInferencePlan:
    """Preallocated buffers for the policy's fused no-grad forward.

    Bundles the trunk's :class:`~repro.rl.nn.layers.InferencePlan` with
    pinned output buffers for the mean/log-std heads and the action, so a
    steady-state ``act_batch`` loop allocates nothing per call.
    """

    def __init__(self, policy: "SquashedGaussianPolicy", max_batch: int) -> None:
        self.max_batch = int(max_batch)
        self.trunk = policy.trunk.inference_plan(max_batch)
        self._mean = np.empty((self.max_batch, policy.action_dim))
        self._log_std = np.empty((self.max_batch, policy.action_dim))
        self._action = np.empty((self.max_batch, policy.action_dim))

    def fits(self, batch: int) -> bool:
        return batch <= self.max_batch

    def mean(self, batch: int) -> np.ndarray:
        return self._mean[:batch]

    def log_std(self, batch: int) -> np.ndarray:
        return self._log_std[:batch]

    def action(self, batch: int) -> np.ndarray:
        return self._action[:batch]


class SquashedGaussianPolicy(Module):
    """Stochastic policy ``pi(a | s) = tanh(N(mu(s), sigma(s)))``."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden: tuple[int, ...] = (128, 128),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.hidden = tuple(hidden)
        self.trunk = Mlp(
            (obs_dim, *hidden), activation=relu, output_activation=relu, rng=rng
        )
        self.mean_head = Linear(hidden[-1], action_dim, rng=rng, scale=1e-2)
        self.log_std_head = Linear(hidden[-1], action_dim, rng=rng, scale=1e-2)

    # -- autodiff path ---------------------------------------------------------

    def distribution(self, obs: Tensor) -> tuple[Tensor, Tensor]:
        """Mean and (bounded) log-std of the pre-squash Gaussian."""
        features = self.trunk(obs)
        mean = self.mean_head(features)
        raw = self.log_std_head(features)
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            raw.tanh() + 1.0
        )
        return mean, log_std

    def rsample(
        self, obs: Tensor, noise: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """Reparameterized sample and its log-probability.

        Args:
            obs: batch of observations, shape ``(n, obs_dim)``.
            noise: standard-normal draws, shape ``(n, action_dim)``.

        Returns:
            ``(action, log_prob)`` with the tanh change-of-variables
            correction applied in its numerically stable softplus form.
        """
        mean, log_std = self.distribution(obs)
        std = log_std.exp()
        pre_squash = mean + std * Tensor(noise)
        action = pre_squash.tanh()
        log_prob = gaussian_log_prob(pre_squash, mean, log_std)
        # log(1 - tanh(x)^2) = 2 * (log 2 - x - softplus(-2x))
        correction = ((-pre_squash + _LOG2) - (pre_squash * -2.0).softplus()) * 2.0
        log_prob = log_prob - correction.sum(axis=-1)
        return action, log_prob

    # -- numpy inference path ------------------------------------------------------

    def inference_plan(self, max_batch: int) -> PolicyInferencePlan:
        """Buffers enabling the fused ``forward_np`` / ``act_batch`` path."""
        return PolicyInferencePlan(self, max_batch)

    def forward_np(
        self,
        obs: np.ndarray,
        plan: PolicyInferencePlan | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean and log-std without building a graph.

        With ``plan``, the trunk and both heads write into preallocated
        buffers (same ops, fused in place); the returned arrays alias the
        plan and stay valid until its next use.
        """
        hook = autograd.FLOP_HOOK
        if hook is not None:
            batch = 1 if obs.ndim == 1 else obs.shape[0]
            for head in (self.mean_head, self.log_std_head):
                hook.matmul(batch, head.in_dim, head.out_dim)
                hook.elementwise("add_fwd", batch * head.out_dim)
            hook.elementwise("tanh_fwd", batch * self.action_dim)
        if plan is not None and obs.ndim == 2 and plan.fits(obs.shape[0]):
            batch = obs.shape[0]
            features = self.trunk.forward_np(obs, plan=plan.trunk)
            mean = plan.mean(batch)
            np.matmul(features, self.mean_head.weight.data, out=mean)
            mean += self.mean_head.bias.data
            log_std = plan.log_std(batch)
            np.matmul(features, self.log_std_head.weight.data, out=log_std)
            log_std += self.log_std_head.bias.data
            # In place: LOG_STD_MIN + 0.5 * (MAX - MIN) * (tanh(raw) + 1).
            np.tanh(log_std, out=log_std)
            log_std += 1.0
            log_std *= 0.5 * (LOG_STD_MAX - LOG_STD_MIN)
            log_std += LOG_STD_MIN
            return mean, log_std
        features = self.trunk.forward_np(obs)
        mean = features @ self.mean_head.weight.data + self.mean_head.bias.data
        raw = (
            features @ self.log_std_head.weight.data
            + self.log_std_head.bias.data
        )
        log_std = LOG_STD_MIN + 0.5 * (LOG_STD_MAX - LOG_STD_MIN) * (
            np.tanh(raw) + 1.0
        )
        return mean, log_std

    def act(
        self,
        obs: np.ndarray,
        deterministic: bool = False,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Action for a single observation (or batch), in ``[-1, 1]``."""
        squeeze = obs.ndim == 1
        batch = obs[None, :] if squeeze else obs
        mean, log_std = self.forward_np(batch)
        if deterministic:
            action = np.tanh(mean)
        else:
            rng = rng or np.random.default_rng()
            noise = rng.standard_normal(mean.shape)
            action = np.tanh(mean + np.exp(log_std) * noise)
        return action[0] if squeeze else action

    def act_batch(
        self,
        obs: np.ndarray,
        deterministic: bool = False,
        rngs: list[np.random.Generator] | None = None,
        plan: PolicyInferencePlan | None = None,
    ) -> np.ndarray:
        """Actions for a ``[batch, obs_dim]`` matrix, in ``[-1, 1]``.

        The batched twin of :meth:`act` for lockstep evaluation: one fused
        forward covers every episode. In sampling mode each row draws its
        noise from its own generator in ``rngs`` (one per episode), so a
        batched episode consumes exactly the stream its scalar counterpart
        would — batch composition never leaks across episodes.
        """
        if obs.ndim != 2:
            raise ValueError("act_batch expects a [batch, obs_dim] matrix")
        batch = obs.shape[0]
        mean, log_std = self.forward_np(obs, plan=plan)
        if deterministic:
            if plan is not None and plan.fits(batch):
                action = plan.action(batch)
                np.tanh(mean, out=action)
                return action
            return np.tanh(mean)
        if rngs is None:
            rngs = [np.random.default_rng() for _ in range(batch)]
        if len(rngs) != batch:
            raise ValueError(
                f"need one rng per row: got {len(rngs)} for batch {batch}"
            )
        noise = np.stack(
            [rng.standard_normal((1, self.action_dim))[0] for rng in rngs]
        )
        return np.tanh(mean + np.exp(log_std) * noise)

    def sample_np(
        self, obs: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Numpy-only sample + log-prob (for SAC target computation)."""
        mean, log_std = self.forward_np(obs)
        std = np.exp(log_std)
        noise = rng.standard_normal(mean.shape)
        pre_squash = mean + std * noise
        action = np.tanh(pre_squash)
        z = (pre_squash - mean) / std
        log_prob = np.sum(
            -0.5 * z * z - log_std - 0.5 * math.log(2.0 * math.pi), axis=-1
        )
        correction = 2.0 * (
            _LOG2 - pre_squash - np.logaddexp(0.0, -2.0 * pre_squash)
        )
        log_prob = log_prob - correction.sum(axis=-1)
        return action, log_prob


class QNetwork(Module):
    """Action-value critic ``Q(s, a)``."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden: tuple[int, ...] = (128, 128),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.net = Mlp((obs_dim + action_dim, *hidden, 1), rng=rng)

    def __call__(self, obs: Tensor, action: Tensor) -> Tensor:
        """Q values, shape ``(n,)``."""
        joint = concat([obs, action], axis=-1)
        return self.net(joint).sum(axis=-1)

    def forward_np(self, obs: np.ndarray, action: np.ndarray) -> np.ndarray:
        joint = np.concatenate([obs, action], axis=-1)
        return self.net.forward_np(joint)[:, 0]
