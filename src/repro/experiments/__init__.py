"""Experiment drivers regenerating every figure of the evaluation.

One module per paper artifact: :mod:`~repro.experiments.fig4` through
:mod:`~repro.experiments.fig8` plus :mod:`~repro.experiments.headline`
(the in-text scalars). Each exposes ``run(...) -> Result`` with a
``table()`` that prints the rows the paper reports.
"""

from repro.experiments import registry

__all__ = ["registry"]
