"""Fig. 5 — resilience of modular vs. end-to-end agents under camera attacks.

Budgets sweep 0 to 1.2 in steps of 0.1, each evaluated for a number of
rounds; every episode contributes a (mean attack effort, trajectory
deviation RMSE, successful?) point. Also derives the Section V-B
time-to-collision comparison against the human reaction-time floor.

Paper shapes to verify: successful attacks start to dominate above effort
~0.6 for the modular agent vs. ~0.5 for the end-to-end agent; the modular
agent keeps smaller tracking error at low attack effort; successful
attacks complete faster than the 1.25 s human reaction time, with the
end-to-end victim collapsing faster than the modular one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.episodes import EpisodeResult, run_episodes
from repro.eval.metrics import (
    TimeToCollisionStats,
    time_to_collision_stats,
)
from repro.experiments import registry
from repro.experiments.common import Table, fmt

#: Budgets 0.0 .. 1.2 in steps of 0.1 (Section V-B).
BUDGETS = tuple(round(0.1 * i, 1) for i in range(13))
VICTIMS = ("modular", "e2e")


@dataclass(frozen=True)
class ScatterPoint:
    """One episode in the deviation-vs-effort scatter."""

    victim: str
    budget: float
    effort: float
    deviation_rmse: float
    successful: bool


@dataclass
class Fig5Result:
    points: list[ScatterPoint]
    episodes: dict[str, list[EpisodeResult]]

    def for_victim(self, victim: str) -> list[ScatterPoint]:
        return [p for p in self.points if p.victim == victim]

    def dominance_threshold(self, victim: str, window: float = 0.2) -> float:
        """Smallest effort-window center where successes are the majority."""
        points = self.for_victim(victim)
        centers = np.arange(window / 2.0, 1.2, window / 2.0)
        for center in centers:
            bucket = [
                p for p in points
                if abs(p.effort - center) <= window / 2.0
            ]
            if len(bucket) >= 3 and (
                sum(p.successful for p in bucket) / len(bucket) > 0.5
            ):
                return float(center)
        return float("inf")

    def low_effort_rmse(self, victim: str, effort_cap: float = 0.3) -> float:
        """Mean deviation RMSE over episodes with effort below the cap."""
        values = [
            p.deviation_rmse
            for p in self.for_victim(victim)
            if p.effort <= effort_cap
        ]
        return float(np.mean(values)) if values else float("nan")

    def time_to_collision(self, victim: str) -> TimeToCollisionStats | None:
        return time_to_collision_stats(self.episodes[victim])

    def table(self) -> Table:
        table = Table(
            "Fig. 5 — deviation vs. attack effort (camera attacker)",
            [
                "victim", "points", "successes", "dominance effort",
                "low-effort RMSE", "ttc mean", "ttc min",
            ],
        )
        for victim in VICTIMS:
            points = self.for_victim(victim)
            ttc = self.time_to_collision(victim)
            table.add(
                victim,
                len(points),
                sum(p.successful for p in points),
                fmt(self.dominance_threshold(victim)),
                fmt(self.low_effort_rmse(victim), 3),
                fmt(ttc.mean, 2) if ttc else "-",
                fmt(ttc.minimum, 2) if ttc else "-",
            )
        return table


def run(
    rounds: int = 10,
    seed: int = 70,
    budgets: tuple[float, ...] = BUDGETS,
) -> Fig5Result:
    """Run the Fig. 5 sweep: ``rounds`` episodes per victim per budget."""
    points: list[ScatterPoint] = []
    episodes: dict[str, list[EpisodeResult]] = {v: [] for v in VICTIMS}
    victims = {
        "modular": registry.modular_victim,
        "e2e": registry.e2e_victim,
    }
    for victim_name, victim_factory in victims.items():
        for budget in budgets:
            attacker_factory = (
                None
                if budget == 0.0
                else lambda b=budget, v=victim_name: registry.camera_attacker(
                    b, victim=v
                )
            )
            results = run_episodes(
                victim_factory,
                attacker_factory,
                n_episodes=rounds,
                seed=seed,
            )
            episodes[victim_name].extend(results)
            for result in results:
                points.append(
                    ScatterPoint(
                        victim=victim_name,
                        budget=budget,
                        effort=result.mean_effort,
                        deviation_rmse=result.deviation_rmse,
                        successful=result.attack_successful,
                    )
                )
    return Fig5Result(points=points, episodes=episodes)
