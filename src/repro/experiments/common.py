"""Shared result structures and table rendering for experiment drivers."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.telemetry.log import get_logger

log = get_logger("experiments")


@dataclass
class Table:
    """A printable experiment table (what the benches emit)."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(str(col)), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        header = "  ".join(
            str(col).ljust(width) for col, width in zip(self.columns, widths)
        )
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        lines.append(rule)
        return "\n".join(lines)

    def show(self) -> None:
        log.info("experiment.table", title=self.title, rows=len(self.rows))
        sys.stdout.write(self.render() + "\n")
        sys.stdout.flush()


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
