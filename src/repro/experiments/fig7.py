"""Fig. 7 — robustness of the enhanced agents (deviation vs. effort).

Same scatter protocol as Fig. 5 (budgets 0 to 1.2 step 0.1) but for the
four enhanced agents. Headline numbers from the paper: average trajectory
tracking errors of 0.038 (rho = 1/11), 0.027 (rho = 1/2), 0.02
(sigma = 0.4) and 0.017 (sigma = 0.2); the PNN agents admit no successful
attack below efforts of 0.4 / 0.6 respectively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.episodes import EpisodeResult, run_episodes
from repro.experiments import registry
from repro.experiments.common import Table, fmt
from repro.experiments.fig5 import BUDGETS, ScatterPoint
from repro.experiments.fig6 import victim_factory_for

#: The four enhanced agents of Section VI.
AGENTS = (
    "finetuned rho=1/11",
    "finetuned rho=1/2",
    "pnn sigma=0.2",
    "pnn sigma=0.4",
)


@dataclass
class Fig7Result:
    points: dict[str, list[ScatterPoint]]
    episodes: dict[str, list[EpisodeResult]]

    def average_tracking_error(self, agent: str) -> float:
        """Mean deviation RMSE across all attack efforts (paper headline)."""
        return float(
            np.mean([p.deviation_rmse for p in self.points[agent]])
        )

    def min_successful_effort(self, agent: str) -> float:
        """Smallest attack effort that produced a successful attack."""
        efforts = [p.effort for p in self.points[agent] if p.successful]
        return float(min(efforts)) if efforts else float("inf")

    def table(self) -> Table:
        table = Table(
            "Fig. 7 — enhanced-agent robustness (camera attacker)",
            ["agent", "avg tracking error", "min successful effort",
             "successes"],
        )
        for agent in self.points:
            table.add(
                agent,
                fmt(self.average_tracking_error(agent), 3),
                fmt(self.min_successful_effort(agent)),
                sum(p.successful for p in self.points[agent]),
            )
        return table


def run(
    rounds: int = 10,
    seed: int = 300,
    budgets: tuple[float, ...] = BUDGETS,
    agents: tuple[str, ...] = AGENTS,
) -> Fig7Result:
    points: dict[str, list[ScatterPoint]] = {agent: [] for agent in agents}
    episodes: dict[str, list[EpisodeResult]] = {agent: [] for agent in agents}
    for agent in agents:
        for budget in budgets:
            attacker_factory = (
                None
                if budget == 0.0
                else lambda b=budget: registry.camera_attacker(b)
            )
            results = run_episodes(
                victim_factory_for(agent, budget),
                attacker_factory,
                n_episodes=rounds,
                seed=seed,
            )
            episodes[agent].extend(results)
            for result in results:
                points[agent].append(
                    ScatterPoint(
                        victim=agent,
                        budget=budget,
                        effort=result.mean_effort,
                        deviation_rmse=result.deviation_rmse,
                        successful=result.attack_successful,
                    )
                )
    return Fig7Result(points=points, episodes=episodes)
