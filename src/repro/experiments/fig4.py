"""Fig. 4 — attack effects under various attack configurations.

Sweeps the attack budget over {0, 0.25, 0.5, 0.75, 1.0} for the camera-
and IMU-based attackers against the end-to-end driving agent, reporting
the distributions of (a) the cumulative nominal driving reward and (b) the
cumulative adversarial reward, plus the attack success rate.

Paper shapes to verify: the camera attack at epsilon = 1 cuts the nominal
reward by roughly 84%; camera beats IMU in mean adversarial reward and has
smaller variance; both rewards transition sharply between epsilon = 0.25
and 0.75.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.episodes import EpisodeResult, run_episodes
from repro.eval.metrics import (
    BoxStats,
    adversarial_reward_stats,
    nominal_reward_stats,
    reward_reduction,
    success_rate,
)
from repro.experiments import registry
from repro.experiments.common import Table, fmt

#: The paper's budget grid for Fig. 4.
BUDGETS = (0.0, 0.25, 0.5, 0.75, 1.0)
ATTACKERS = ("camera", "imu")


@dataclass(frozen=True)
class Fig4Cell:
    """One (attacker, budget) sweep point."""

    attacker: str
    budget: float
    nominal: BoxStats
    adversarial: BoxStats
    success: float
    episodes: list[EpisodeResult]


@dataclass
class Fig4Result:
    cells: list[Fig4Cell]

    def cell(self, attacker: str, budget: float) -> Fig4Cell:
        for candidate in self.cells:
            if candidate.attacker == attacker and candidate.budget == budget:
                return candidate
        raise KeyError((attacker, budget))

    def reward_reduction(self, attacker: str, budget: float = 1.0) -> float:
        """Relative nominal-reward drop vs. the epsilon = 0 baseline."""
        baseline = self.cell("camera", 0.0).episodes
        attacked = self.cell(attacker, budget).episodes
        return reward_reduction(baseline, attacked)

    def table(self) -> Table:
        table = Table(
            "Fig. 4 — attack budget sweep (end-to-end victim)",
            [
                "attacker", "budget", "nominal mean", "nominal med",
                "adv mean", "adv med", "adv IQR", "success",
            ],
        )
        for cell in self.cells:
            table.add(
                cell.attacker,
                fmt(cell.budget),
                fmt(cell.nominal.mean, 1),
                fmt(cell.nominal.median, 1),
                fmt(cell.adversarial.mean, 1),
                fmt(cell.adversarial.median, 1),
                fmt(cell.adversarial.q3 - cell.adversarial.q1, 1),
                fmt(cell.success),
            )
        return table


def run(
    n_episodes: int = 30,
    seed: int = 42,
    budgets: tuple[float, ...] = BUDGETS,
) -> Fig4Result:
    """Run the Fig. 4 sweep with ``n_episodes`` per (attacker, budget)."""
    cells: list[Fig4Cell] = []
    for attacker_kind in ATTACKERS:
        for budget in budgets:
            if budget == 0.0:
                attacker_factory = None
            elif attacker_kind == "camera":
                attacker_factory = (
                    lambda b=budget: registry.camera_attacker(b)
                )
            else:
                attacker_factory = lambda b=budget: registry.imu_attacker(b)
            episodes = run_episodes(
                registry.e2e_victim,
                attacker_factory,
                n_episodes=n_episodes,
                seed=seed,
            )
            cells.append(
                Fig4Cell(
                    attacker=attacker_kind,
                    budget=budget,
                    nominal=nominal_reward_stats(episodes),
                    adversarial=adversarial_reward_stats(episodes),
                    success=success_rate(episodes),
                    episodes=episodes,
                )
            )
    return Fig4Result(cells)
