"""Fig. 8 — attack success rate per attack-effort window.

Windows the Fig. 5 (nominal agent) and Fig. 7 (enhanced agents) episodes
along the attack-effort axis with width 0.2 from 0.0 to 0.8+, and reports
the attack success rate per window for all five agents.

Paper shape to verify: the fine-tuned agents show higher success rates
than the PNN agents across windows, and the nominal agent is worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.episodes import EpisodeResult, run_episodes
from repro.eval.metrics import effort_windows
from repro.experiments import registry
from repro.experiments.common import Table, fmt
from repro.experiments.fig5 import BUDGETS
from repro.experiments.fig6 import victim_factory_for
from repro.experiments.fig7 import AGENTS as ENHANCED_AGENTS
from repro.experiments.fig7 import Fig7Result, run as run_fig7

AGENTS = ("original", *ENHANCED_AGENTS)


@dataclass
class Fig8Result:
    episodes: dict[str, list[EpisodeResult]]
    window: float = 0.2

    def windows(self, agent: str) -> list[tuple[str, float, int]]:
        return effort_windows(
            [e for e in self.episodes[agent] if e.mean_effort > 0.0],
            window=self.window,
        )

    def overall_success(self, agent: str) -> float:
        attacked = [e for e in self.episodes[agent] if e.mean_effort > 0.0]
        if not attacked:
            return 0.0
        return sum(e.attack_successful for e in attacked) / len(attacked)

    def table(self) -> Table:
        labels = [label for label, _, _ in self.windows(AGENTS[0])]
        table = Table(
            "Fig. 8 — attack success rate per attack-effort window",
            ["agent", *labels, "overall"],
        )
        for agent in self.episodes:
            rows = self.windows(agent)
            table.add(
                agent,
                *[fmt(rate) for _, rate, _ in rows],
                fmt(self.overall_success(agent)),
            )
        return table


def run(
    rounds: int = 10,
    seed: int = 300,
    budgets: tuple[float, ...] = BUDGETS,
    fig7: Fig7Result | None = None,
) -> Fig8Result:
    """Run (or reuse) the enhanced-agent sweep and add the nominal agent."""
    episodes: dict[str, list[EpisodeResult]] = {}
    original: list[EpisodeResult] = []
    for budget in budgets:
        if budget == 0.0:
            continue
        original.extend(
            run_episodes(
                victim_factory_for("original", budget),
                lambda b=budget: registry.camera_attacker(b),
                n_episodes=rounds,
                seed=seed,
            )
        )
    episodes["original"] = original
    if fig7 is None:
        fig7 = run_fig7(rounds=rounds, seed=seed, budgets=budgets)
    for agent in ENHANCED_AGENTS:
        episodes[agent] = fig7.episodes[agent]
    return Fig8Result(episodes=episodes)
