"""Fig. 6 — nominal driving rewards of original vs. enhanced agents.

Evaluates pi_ori, the two adversarially fine-tuned agents
(rho = 1/11, 1/2) and the two PNN agents (sigma = 0.2, 0.4) under
camera attacks with budgets {0, 0.25, 0.5, 0.75, 1.0}.

Paper shapes to verify: the enhanced agents noticeably raise the mean
nominal reward under attack; the fine-tuned agents lose nominal
performance at small budgets (catastrophic forgetting) while the PNN
agents do not; the two PNN agents coincide at high budgets (same second
column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.eval.episodes import EpisodeResult, run_episodes
from repro.eval.metrics import BoxStats, nominal_reward_stats, success_rate
from repro.experiments import registry
from repro.experiments.common import Table, fmt

BUDGETS = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Agent labels in presentation order.
AGENTS = (
    "original",
    "finetuned rho=1/11",
    "finetuned rho=1/2",
    "pnn sigma=0.2",
    "pnn sigma=0.4",
)


def victim_factory_for(agent: str, budget: float) -> Callable:
    """Builds the per-episode victim for an agent label.

    The PNN switcher is informed of the episode's attack budget
    (the paper's idealized switcher assumption).
    """
    if agent == "original":
        return registry.e2e_victim
    if agent == "finetuned rho=1/11":
        return registry.finetuned_victim_rho11
    if agent == "finetuned rho=1/2":
        return registry.finetuned_victim_rho2
    if agent == "pnn sigma=0.2":
        return lambda world: registry.pnn_victim(world, 0.2, budget)
    if agent == "pnn sigma=0.4":
        return lambda world: registry.pnn_victim(world, 0.4, budget)
    raise KeyError(agent)


@dataclass(frozen=True)
class Fig6Cell:
    agent: str
    budget: float
    nominal: BoxStats
    success: float
    episodes: list[EpisodeResult]


@dataclass
class Fig6Result:
    cells: list[Fig6Cell]

    def cell(self, agent: str, budget: float) -> Fig6Cell:
        for candidate in self.cells:
            if candidate.agent == agent and candidate.budget == budget:
                return candidate
        raise KeyError((agent, budget))

    def table(self) -> Table:
        table = Table(
            "Fig. 6 — nominal driving reward of original and enhanced agents",
            ["agent", *[f"eps={b}" for b in BUDGETS]],
        )
        for agent in AGENTS:
            cells = [self.cell(agent, budget) for budget in BUDGETS]
            table.add(agent, *[fmt(c.nominal.mean, 1) for c in cells])
        return table


def run(
    n_episodes: int = 10,
    seed: int = 500,
    budgets: tuple[float, ...] = BUDGETS,
    agents: tuple[str, ...] = AGENTS,
) -> Fig6Result:
    cells: list[Fig6Cell] = []
    for agent in agents:
        for budget in budgets:
            attacker_factory = (
                None
                if budget == 0.0
                else lambda b=budget: registry.camera_attacker(b)
            )
            episodes = run_episodes(
                victim_factory_for(agent, budget),
                attacker_factory,
                n_episodes=n_episodes,
                seed=seed,
            )
            cells.append(
                Fig6Cell(
                    agent=agent,
                    budget=budget,
                    nominal=nominal_reward_stats(episodes),
                    success=success_rate(episodes),
                    episodes=episodes,
                )
            )
    return Fig6Result(cells)
