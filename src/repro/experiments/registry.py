"""Shipped-artifact registry.

The benchmark harness evaluates pre-trained checkpoints from the
``artifacts/`` directory (regenerate them with ``examples/train_all.py``).
This module locates that directory and lazily constructs the agents and
attackers each experiment needs.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.agents.base import DrivingAgent
from repro.agents.e2e.agent import EndToEndAgent, load_progressive
from repro.agents.modular.agent import ModularAgent
from repro.core.attackers import LearnedAttacker
from repro.defense.pnn_defense import SimplexSwitchedAgent
from repro.rl.pnn import ProgressivePolicy
from repro.sim.world import World

#: Artifact file names produced by examples/train_all.py.
E2E_DRIVER = "e2e_driver.npz"
CAMERA_ATTACKER_E2E = "camera_attacker.npz"
CAMERA_ATTACKER_MODULAR = "camera_attacker_modular.npz"
IMU_ATTACKER = "imu_attacker.npz"
FINETUNED_RHO_11 = "driver_finetuned_rho11.npz"
FINETUNED_RHO_2 = "driver_finetuned_rho2.npz"
PNN_COLUMN = "driver_pnn.npz"


def artifacts_dir() -> Path:
    """Locate the artifacts directory.

    Order: ``$REPRO_ARTIFACTS``, ``./artifacts`` under the current
    directory, then ``artifacts/`` next to the repository's source tree.
    """
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return Path(env)
    local = Path.cwd() / "artifacts"
    if local.exists():
        return local
    # src/repro/experiments/registry.py -> repository root is parents[3].
    return Path(__file__).resolve().parents[3] / "artifacts"


def artifact_path(name: str) -> Path:
    path = artifacts_dir() / name
    if not path.exists():
        raise FileNotFoundError(
            f"artifact {name!r} not found under {artifacts_dir()} — run "
            "`python examples/train_all.py` to generate the checkpoints"
        )
    return path


def has_artifact(name: str) -> bool:
    try:
        artifact_path(name)
        return True
    except FileNotFoundError:
        return False


#: Every artifact name a full reproduction uses (provenance default).
ALL_ARTIFACTS = (
    E2E_DRIVER,
    CAMERA_ATTACKER_E2E,
    CAMERA_ATTACKER_MODULAR,
    IMU_ATTACKER,
    FINETUNED_RHO_11,
    FINETUNED_RHO_2,
    PNN_COLUMN,
)


def artifact_checksums(names: tuple[str, ...] | None = None) -> dict[str, str]:
    """``{artifact name: "sha256:..."}`` for every present checkpoint.

    Missing artifacts are silently omitted (a nominal-only run has no
    weights to attest). Feed the result to
    :func:`repro.telemetry.provenance.collect` so run provenance pins the
    exact checkpoint bytes an experiment evaluated.
    """
    from repro.telemetry.provenance import checkpoint_checksum

    checksums: dict[str, str] = {}
    for name in names if names is not None else ALL_ARTIFACTS:
        if not has_artifact(name):
            continue
        checksum = checkpoint_checksum(artifacts_dir() / name)
        if checksum is not None:
            checksums[name] = checksum
    return checksums


# -- victims ---------------------------------------------------------------------


def modular_victim(world: World) -> DrivingAgent:
    """A fresh modular-pipeline victim for ``world``."""
    return ModularAgent(world.road)


@lru_cache(maxsize=1)
def _e2e_state() -> tuple:
    agent = EndToEndAgent.load(artifact_path(E2E_DRIVER))
    return (agent.policy,)


def e2e_victim(world: World) -> EndToEndAgent:
    """A fresh end-to-end victim (shared weights, fresh frame stack)."""
    (policy,) = _e2e_state()
    return EndToEndAgent(policy)


@lru_cache(maxsize=1)
def finetuned_victim_rho11_policy():
    return EndToEndAgent.load(artifact_path(FINETUNED_RHO_11)).policy


@lru_cache(maxsize=1)
def finetuned_victim_rho2_policy():
    return EndToEndAgent.load(artifact_path(FINETUNED_RHO_2)).policy


def finetuned_victim_rho11(world: World) -> EndToEndAgent:
    agent = EndToEndAgent(finetuned_victim_rho11_policy())
    agent.name = "adv-finetuned(rho=1/11)"
    return agent


def finetuned_victim_rho2(world: World) -> EndToEndAgent:
    agent = EndToEndAgent(finetuned_victim_rho2_policy())
    agent.name = "adv-finetuned(rho=1/2)"
    return agent


@lru_cache(maxsize=1)
def pnn_column() -> ProgressivePolicy:
    return load_progressive(artifact_path(PNN_COLUMN))


def pnn_victim(world: World, sigma: float, budget: float) -> SimplexSwitchedAgent:
    """The Simplex-switched PNN agent, informed of the attack budget."""
    agent = SimplexSwitchedAgent(
        EndToEndAgent(_e2e_state()[0]), pnn_column(), sigma=sigma
    )
    agent.inform_budget(budget)
    return agent


# -- attackers ---------------------------------------------------------------------


@lru_cache(maxsize=4)
def _attacker_template(name: str) -> LearnedAttacker:
    return LearnedAttacker.load(artifact_path(name), budget=1.0)


def camera_attacker(budget: float = 1.0, victim: str = "e2e") -> LearnedAttacker:
    """The learned camera attacker trained against ``victim``."""
    name = (
        CAMERA_ATTACKER_MODULAR if victim == "modular" else CAMERA_ATTACKER_E2E
    )
    return _attacker_template(name).with_budget(budget)


def imu_attacker(budget: float = 1.0) -> LearnedAttacker:
    """The learned IMU attacker (distilled from the camera teacher)."""
    return _attacker_template(IMU_ATTACKER).with_budget(budget)
