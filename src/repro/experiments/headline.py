"""Section V headline scalars.

* Nominal driving (Section III-C): the end-to-end agent completes all 180
  steps and passes an average of 5.96 / 6 NPC vehicles over 30 episodes
  with no collisions.
* Camera attack at epsilon = 1 (Section V-A): the cumulative nominal
  driving reward drops by approximately 84%.
* Section V-B: successful attacks complete in 0.87 s mean (e2e victim)
  vs. 1.14 s (modular victim), both under the 1.25 s human reaction floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.episodes import run_episodes
from repro.eval.metrics import (
    HUMAN_REACTION_TIME,
    collision_rate,
    reward_reduction,
    time_to_collision_stats,
)
from repro.experiments import registry
from repro.experiments.common import Table, fmt


@dataclass
class HeadlineResult:
    mean_passed: float
    mean_steps: float
    nominal_collision_rate: float
    camera_reward_reduction: float
    ttc_e2e_mean: float | None
    ttc_modular_mean: float | None

    def table(self) -> Table:
        table = Table(
            "Headline scalars (paper Sections III-C, V-A, V-B)",
            ["metric", "paper", "measured"],
        )
        table.add("NPCs passed (nominal, /6)", "5.96", fmt(self.mean_passed, 2))
        table.add("steps completed (nominal)", "180", fmt(self.mean_steps, 1))
        table.add(
            "nominal collision rate", "0.00", fmt(self.nominal_collision_rate)
        )
        table.add(
            "camera eps=1 reward reduction", "~84%",
            fmt(100 * self.camera_reward_reduction, 1) + "%",
        )
        table.add(
            "time-to-collision e2e (s)", "0.87",
            fmt(self.ttc_e2e_mean, 2) if self.ttc_e2e_mean else "-",
        )
        table.add(
            "time-to-collision modular (s)", "1.14",
            fmt(self.ttc_modular_mean, 2) if self.ttc_modular_mean else "-",
        )
        table.add("human reaction floor (s)", "1.25", fmt(HUMAN_REACTION_TIME, 2))
        return table


def run(n_episodes: int = 30, seed: int = 900) -> HeadlineResult:
    nominal = run_episodes(
        registry.e2e_victim, None, n_episodes=n_episodes, seed=seed
    )
    attacked = run_episodes(
        registry.e2e_victim,
        lambda: registry.camera_attacker(1.0),
        n_episodes=n_episodes,
        seed=seed,
    )
    attacked_modular = run_episodes(
        registry.modular_victim,
        lambda: registry.camera_attacker(1.0, victim="modular"),
        n_episodes=n_episodes,
        seed=seed,
    )
    ttc_e2e = time_to_collision_stats(attacked)
    ttc_modular = time_to_collision_stats(attacked_modular)
    return HeadlineResult(
        mean_passed=float(np.mean([r.passed_npcs for r in nominal])),
        mean_steps=float(np.mean([r.steps for r in nominal])),
        nominal_collision_rate=collision_rate(nominal),
        camera_reward_reduction=reward_reduction(nominal, attacked),
        ttc_e2e_mean=ttc_e2e.mean if ttc_e2e else None,
        ttc_modular_mean=ttc_modular.mean if ttc_modular else None,
    )
