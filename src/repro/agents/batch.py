"""Lockstep twins of the driving agents for the batch-episode engine.

Each scalar :class:`~repro.agents.base.DrivingAgent` has a batched actor
exposing ``reset(batch)`` / ``act_batch(batch) -> (steer[N], thrust[N])``.
The actors replicate the scalar control law per row — same planner state
machine, same PID arithmetic, same policy forward — so a batched episode
tracks its scalar counterpart to numerical tolerance (see
:mod:`repro.sim.batch` for the determinism contract).

Use :func:`as_batch_actor` to derive the twin from a configured scalar
agent; unsupported agents raise :class:`TypeError` rather than silently
degrading.
"""

from __future__ import annotations

import math

import numpy as np

from repro.agents.e2e.agent import EndToEndAgent
from repro.agents.e2e.observation import DrivingObservation
from repro.agents.modular.agent import ModularAgent, ModularAgentConfig
from repro.agents.modular.behavior import BatchBehaviorPlanner
from repro.agents.modular.pid import BatchPid
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim.config import EPSILON_MECH


class BatchModularActor:
    """Vectorized plan-then-track pipeline: one update covers N episodes."""

    name = "modular"

    def __init__(
        self,
        road,
        n: int,
        config: ModularAgentConfig | None = None,
        dt: float = 0.1,
    ) -> None:
        self.config = config or ModularAgentConfig()
        self.planner = BatchBehaviorPlanner(road, self.config.behavior)
        self._lateral = BatchPid(self.config.lateral_gains, dt, n)
        self._longitudinal = BatchPid(self.config.longitudinal_gains, dt, n)

    def reset(self, batch) -> None:
        self.planner.reset(batch)
        self._lateral.reset()
        self._longitudinal.reset()

    def act_batch(self, batch) -> tuple[np.ndarray, np.ndarray]:
        plan = self.planner.update(batch)
        ego_s, _, _ = batch.ego_frenet()
        speed = batch.speed[:, 0]

        cfg = self.config
        lookahead = np.clip(
            cfg.lookahead_gain * speed, cfg.lookahead_min, cfg.lookahead_max
        )
        target_s = ego_s + lookahead
        target_d = plan.reference_offset(target_s)
        target_xy, _ = batch.road.to_world_batch(target_s, target_d)
        dx = target_xy[:, 0] - batch.x[:, 0]
        dy = target_xy[:, 1] - batch.y[:, 0]
        bearing = np.arctan2(dy, dx) - batch.yaw[:, 0]
        bearing = (bearing + math.pi) % (2.0 * math.pi) - math.pi
        # Positive steer turns right; a target to the left needs negative.
        steer = self._lateral.step(-bearing)
        thrust = self._longitudinal.step(plan.target_speed - speed)
        return steer, thrust


class BatchPolicyActor:
    """Batched deterministic rollout of an end-to-end driving policy."""

    name = "end-to-end"

    def __init__(self, agent: EndToEndAgent, n: int) -> None:
        if not isinstance(agent.policy, SquashedGaussianPolicy):
            raise TypeError(
                "batched rollout requires a SquashedGaussianPolicy; got "
                f"{type(agent.policy).__name__}"
            )
        if not agent.deterministic:
            raise TypeError(
                "batched rollout supports deterministic driving policies only"
            )
        template = agent.observation
        self.policy = agent.policy
        self.observation = DrivingObservation(
            camera_config=template._stack.inner.config,
            frames=template._stack.k,
            reference_speed=template.reference_speed,
        )
        self.plan = self.policy.inference_plan(n)

    def reset(self, batch) -> None:
        self.observation.reset()

    def act_batch(self, batch) -> tuple[np.ndarray, np.ndarray]:
        obs = self.observation.observe_batch(batch)
        actions = self.policy.act_batch(obs, deterministic=True, plan=self.plan)
        steer = np.clip(actions[:, 0], -EPSILON_MECH, EPSILON_MECH)
        thrust = np.clip(actions[:, 1], -EPSILON_MECH, EPSILON_MECH)
        return steer, thrust


def as_batch_actor(victim, batch):
    """The lockstep twin of a scalar driving agent, sized for ``batch``.

    Raises :class:`TypeError` for agents with no batched path (custom
    agents, stochastic policies, progressive columns).
    """
    if isinstance(victim, ModularAgent):
        return BatchModularActor(
            batch.road, batch.n, config=victim.config, dt=victim._lateral.dt
        )
    if isinstance(victim, EndToEndAgent):
        return BatchPolicyActor(victim, batch.n)
    raise TypeError(
        f"no batched twin for agent type {type(victim).__name__}"
    )
