"""Driving agents: the modular pipeline and the end-to-end DRL policy."""

from repro.agents.base import DrivingAgent

__all__ = ["DrivingAgent"]
