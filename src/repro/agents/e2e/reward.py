"""Shaped driving reward for the end-to-end agent (Section III-C).

Following the paper, the reward aggregates multiple driving goals:

* **trajectory following** — the dot product of the ego velocity with the
  unit vector toward a lookahead point on the privileged planner's
  reference path (the "waypoints vector" of [16]), normalized by the
  reference speed;
* **speed requirement** — a penalty on deviation from the planner's target
  speed;
* **path precision** — a penalty on lateral offset from the reference path;
* **safety** — a terminal collision penalty.

The same function is the "nominal driving reward" reported in Figs. 4(a)
and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.modular.behavior import Plan
from repro.sim.collision import Collision
from repro.sim.world import World
from repro.utils.geometry import unit


@dataclass(frozen=True)
class DrivingRewardConfig:
    """Weights of the shaped reward terms."""

    reference_speed: float = 16.0
    lookahead: float = 8.0
    speed_weight: float = 0.3
    deviation_weight: float = 0.4
    #: Terminal penalty for any collision (vehicle or barrier).
    collision_penalty: float = 10.0
    #: Extra per-step bonus for progress past NPC vehicles is implicit in
    #: the velocity dot product; no separate term is needed.


@dataclass(frozen=True)
class RewardBreakdown:
    """Per-term diagnostics, summed into ``total``."""

    progress: float
    speed: float
    deviation: float
    collision: float

    @property
    def total(self) -> float:
        return self.progress + self.speed + self.deviation + self.collision


class DrivingReward:
    """Computes the shaped per-step reward given the privileged plan."""

    def __init__(self, config: DrivingRewardConfig | None = None) -> None:
        self.config = config or DrivingRewardConfig()

    def step(
        self,
        world: World,
        plan: Plan,
        collision: Collision | None,
    ) -> RewardBreakdown:
        """Reward for the transition that just happened.

        Args:
            world: the world *after* ticking.
            plan: the privileged planner's current plan.
            collision: collision reported by the tick, if any.
        """
        cfg = self.config
        state = world.ego.state
        ego_s, ego_d, _ = world.road.to_frenet(state.position)

        target_s = ego_s + cfg.lookahead
        target_d = plan.reference_offset(target_s)
        target_xy, _ = world.road.to_world(target_s, target_d)
        waypoint_vector = unit(np.asarray(target_xy) - state.position)
        # Saturate at the reference speed: the speed *requirement* rewards
        # reaching 16 m/s along the path, not exceeding it (otherwise SAC
        # exploits the term by speeding, as the paper itself cautions).
        progress = min(
            float(state.velocity @ waypoint_vector) / cfg.reference_speed, 1.0
        )

        speed_error = abs(state.speed - plan.target_speed) / cfg.reference_speed
        speed = -cfg.speed_weight * speed_error

        deviation_m = abs(ego_d - plan.reference_offset(ego_s))
        deviation = -cfg.deviation_weight * (
            deviation_m / world.road.config.lane_width
        )

        collision_term = -cfg.collision_penalty if collision is not None else 0.0
        return RewardBreakdown(
            progress=progress,
            speed=speed,
            deviation=deviation,
            collision=collision_term,
        )

    def step_batch(
        self, batch, plan, collided: np.ndarray
    ) -> np.ndarray:
        """Per-episode reward totals for a batch tick, shape ``[N]``.

        Args:
            batch: the :class:`~repro.sim.batch.BatchWorld` after ticking.
            plan: the privileged :class:`BatchPlan` computed pre-tick.
            collided: boolean mask of episodes that collided this tick.
        """
        cfg = self.config
        ego_s, ego_d, _ = batch.ego_frenet()

        target_s = ego_s + cfg.lookahead
        target_d = plan.reference_offset(target_s)
        target_xy, _ = batch.road.to_world_batch(target_s, target_d)
        waypoint = target_xy - batch.ego_position
        norm = np.sqrt(np.einsum("nj,nj->n", waypoint, waypoint))
        safe = np.where(norm < 1e-12, 1.0, norm)
        unit_wp = np.where(
            (norm < 1e-12)[:, None], 0.0, waypoint / safe[:, None]
        )
        progress = np.minimum(
            np.einsum("nj,nj->n", batch.ego_velocity, unit_wp)
            / cfg.reference_speed,
            1.0,
        )

        speed_error = (
            np.abs(batch.speed[:, 0] - plan.target_speed)
            / cfg.reference_speed
        )
        speed = -cfg.speed_weight * speed_error

        deviation_m = np.abs(ego_d - plan.reference_offset(ego_s))
        deviation = -cfg.deviation_weight * (
            deviation_m / batch.road.config.lane_width
        )

        collision = np.where(collided, -cfg.collision_penalty, 0.0)
        return progress + speed + deviation + collision
