"""End-to-end DRL driving agent: observation, reward, env, agent wrapper."""

from repro.agents.e2e.agent import (
    DRIVER_HIDDEN,
    EndToEndAgent,
    load_progressive,
    save_progressive,
)
from repro.agents.e2e.env import DrivingEnv, SteerInjector
from repro.agents.e2e.observation import POLICY_CAMERA, DrivingObservation
from repro.agents.e2e.reward import (
    DrivingReward,
    DrivingRewardConfig,
    RewardBreakdown,
)

__all__ = [
    "DRIVER_HIDDEN",
    "DrivingEnv",
    "DrivingObservation",
    "DrivingReward",
    "DrivingRewardConfig",
    "EndToEndAgent",
    "POLICY_CAMERA",
    "RewardBreakdown",
    "SteerInjector",
    "load_progressive",
    "save_progressive",
]
