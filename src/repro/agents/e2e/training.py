"""Training pipeline for the end-to-end driving agent.

The paper trains the driver with SAC against a reward shaped by a
privileged planner. On this repository's CPU-only numpy substrate the same
recipe is staged for tractability:

1. **Behaviour cloning** of the modular pipeline (the privileged agent)
   with exploration noise injected during collection (DAgger-style), which
   supplies a driving-competent initialization in seconds.
2. **SAC refinement** on the shaped reward of Section III-C, which is the
   paper's actual objective; the refined checkpoint is kept only when its
   evaluation return improves on the warm start.

Both stages are exercised end-to-end in tests with tiny budgets; the
shipped checkpoints in ``artifacts/`` use the defaults below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.e2e.agent import DRIVER_HIDDEN, EndToEndAgent
from repro.agents.e2e.env import DrivingEnv, SteerInjector
from repro.agents.e2e.observation import DrivingObservation
from repro.agents.modular.agent import ModularAgent
from repro.rl.bc import BcConfig, BehaviorCloner
from repro.rl.checkpoint import SacLoopGuard
from repro.rl.health import HealthEmitter
from repro.rl.policy import SquashedGaussianPolicy
from repro.rl.sac import Sac, SacConfig
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.telemetry.log import get_logger
from repro.telemetry.spans import span
from repro.telemetry.trace import TraceWriter, default_writer

log = get_logger("agents.e2e.training")


@dataclass
class DriverTrainConfig:
    """Budget and hyper-parameters for the two-stage driver training."""

    bc_episodes: int = 40
    #: Std of the exploration noise added to the *executed* action during
    #: collection (labels remain the expert's clean action).
    bc_action_noise: float = 0.15
    bc: BcConfig = field(default_factory=lambda: BcConfig(epochs=25))
    sac_steps: int = 8_000
    sac: SacConfig = field(
        default_factory=lambda: SacConfig(
            hidden=DRIVER_HIDDEN,
            batch_size=128,
            buffer_capacity=60_000,
            start_steps=0,
            actor_lr=1e-4,
            critic_lr=3e-4,
            alpha=0.02,
            autotune_alpha=False,
            update_every=2,
        )
    )
    eval_episodes: int = 5
    seed: int = 0


def collect_expert_dataset(
    n_episodes: int,
    rng: np.random.Generator,
    action_noise: float = 0.15,
    scenario: ScenarioConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Roll out the modular expert, recording (observation, expert action).

    Exploration noise perturbs the executed action so the dataset covers
    slightly off-nominal states the cloned policy will visit.
    """
    scenario = scenario or ScenarioConfig()
    observations: list[np.ndarray] = []
    actions: list[np.ndarray] = []
    encoder = DrivingObservation(reference_speed=scenario.ego_speed)
    for _ in range(n_episodes):
        world = make_world(scenario, rng=rng)
        expert = ModularAgent(world.road)
        expert.reset(world)
        encoder.reset()
        while not world.done:
            obs = encoder.observe(world)
            control = expert.act(world)
            label = np.array([control.steer, control.thrust])
            observations.append(obs)
            actions.append(label)
            executed = np.clip(
                label + rng.normal(0.0, action_noise, size=2), -1.0, 1.0
            )
            world.tick(
                type(control)(steer=float(executed[0]), thrust=float(executed[1]))
            )
    return np.asarray(observations), np.asarray(actions)


def evaluate_driver(
    agent: EndToEndAgent,
    n_episodes: int = 5,
    seed: int = 1_000,
    scenario: ScenarioConfig | None = None,
    injector: SteerInjector | None = None,
) -> dict[str, float]:
    """Mean shaped return / passes / collision rate over fresh episodes."""
    env = DrivingEnv(
        scenario=scenario,
        observation=agent.observation,
        rng=np.random.default_rng(seed),
        injector=injector,
    )
    returns, passes, collisions = [], [], 0
    for _ in range(n_episodes):
        obs = env.reset()
        agent.reset(env.world)
        total = 0.0
        done = False
        while not done:
            control = agent.act(env.world)
            obs, reward, done, info = env.step(
                np.array([control.steer, control.thrust])
            )
            total += reward
        returns.append(total)
        passes.append(info["passed_npcs"])
        collisions += int(info["collision"] is not None)
    return {
        "mean_return": float(np.mean(returns)),
        "mean_passed": float(np.mean(passes)),
        "collision_rate": collisions / n_episodes,
    }


def train_driver(
    config: DriverTrainConfig | None = None,
    progress: bool = False,
) -> tuple[EndToEndAgent, dict[str, float]]:
    """Run the full two-stage pipeline and return (agent, eval metrics)."""
    config = config or DriverTrainConfig()
    rng = np.random.default_rng(config.seed)

    observations, actions = collect_expert_dataset(
        config.bc_episodes, rng, config.bc_action_noise
    )
    encoder = DrivingObservation()
    policy = SquashedGaussianPolicy(
        encoder.observation_dim, 2, DRIVER_HIDDEN, rng=rng
    )
    cloner = BehaviorCloner(policy, config.bc, rng=rng)
    losses = cloner.fit(observations, actions)
    (log.info if progress else log.debug)(
        "bc.fit", dataset=len(observations), final_loss=float(losses[-1])
    )

    agent = EndToEndAgent(policy, observation=encoder)
    metrics = evaluate_driver(agent, config.eval_episodes, seed=10_000)
    (log.info if progress else log.debug)("bc.eval", **metrics)

    if config.sac_steps > 0:
        refined, refined_metrics = refine_driver_sac(
            policy, config, rng, progress=progress
        )
        if refined_metrics["mean_return"] >= metrics["mean_return"]:
            agent = EndToEndAgent(refined, observation=encoder)
            metrics = refined_metrics
    return agent, metrics


def refine_driver_sac(
    policy: SquashedGaussianPolicy,
    config: DriverTrainConfig,
    rng: np.random.Generator,
    injector: SteerInjector | None = None,
    progress: bool = False,
    trace: TraceWriter | None = None,
    loop_label: str = "sac-driver",
    scenario: ScenarioConfig | None = None,
) -> tuple[SquashedGaussianPolicy, dict[str, float]]:
    """SAC refinement of a warm-started policy on the shaped reward.

    Returns the refined policy and its evaluation metrics; the caller
    decides whether to keep it. The ``injector`` hook makes this the same
    primitive adversarial fine-tuning (Section VI-A) builds on.
    ``trace`` (or the ``REPRO_TRACE`` default writer) receives one
    ``train_step`` event per environment step, plus ``update_health``
    records when ``config.sac.health_every`` (or ``REPRO_HEALTH_EVERY``)
    is set.

    Crash-safe: episode boundaries (reset deferred to the next
    iteration) snapshot a resumable
    :class:`~repro.rl.checkpoint.TrainState` when
    ``config.sac.checkpoint_every`` is set, and ``config.sac.resume``
    continues bit-identically from the newest snapshot.
    """
    trace = trace if trace is not None else default_writer()
    env = DrivingEnv(scenario=scenario, rng=rng, injector=injector)
    sac = Sac(
        env.observation_dim, env.action_dim, config.sac, rng=rng, actor=policy
    )
    health = HealthEmitter(trace, loop_label, every=config.sac.health_every)
    guard = SacLoopGuard(sac, loop_label, rng, trace=trace)
    start = guard.start()
    env._episode = guard.env_episode
    obs = None
    episode_return = 0.0
    with span("train.driver_sac"):
        for step in range(start, config.sac_steps):
            guard.on_step(step)
            if obs is None:  # episode boundary: snapshot, then reset
                guard.at_boundary(step, env._episode, env._episode)
                obs = env.reset()
                episode_return = 0.0
            action = sac.act(obs)
            next_obs, reward, done, info = env.step(action)
            sac.observe(
                obs, action, reward, next_obs,
                done and not info["truncated"],
            )
            episode_return += reward
            obs = next_obs
            if trace is not None:
                trace.emit(
                    "train_step", loop=loop_label, step=step,
                    reward=float(reward), done=bool(done),
                )
            if done:
                if env._episode % 10 == 0:
                    (log.info if progress else log.debug)(
                        "sac.episode", loop=loop_label, step=step,
                        episode=env._episode,
                        episode_return=episode_return,
                    )
                obs = None
            if step % config.sac.update_every == 0 and len(sac.replay) >= (
                config.sac.batch_size
            ):
                stats = sac.update()
                health.after_update(sac, step, stats)
                guard.after_update(step, stats)
    guard.finish(config.sac_steps, env._episode, env._episode)
    if trace is not None:
        trace.flush()

    agent = EndToEndAgent(policy, observation=DrivingObservation())
    metrics = evaluate_driver(
        agent, config.eval_episodes, seed=10_000, scenario=scenario
    )
    (log.info if progress else log.debug)(
        "sac.eval", loop=loop_label, **metrics
    )
    return policy, metrics
