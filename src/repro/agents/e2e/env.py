"""Gym-like training environment for the end-to-end driving policy.

Wraps the scenario world, the observation encoder, the privileged planner
(for reward shaping) and the shaped reward into the classic
``reset() -> obs`` / ``step(action) -> (obs, reward, done, info)`` loop.

An optional *steer injector* hook applies an action-space perturbation to
each tick, which is how adversarial training (Section VI) mixes attacks
into driving episodes without the environment knowing attack internals.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.agents.e2e.observation import DrivingObservation
from repro.agents.e2e.reward import DrivingReward, DrivingRewardConfig
from repro.agents.modular.behavior import BehaviorPlanner
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.sim.vehicle import Control
from repro.sim.world import World


class SteerInjector(Protocol):
    """Per-tick action-space perturbation source (an attacker)."""

    def reset(self, world: World) -> None:
        """Prepare for a new episode."""

    def delta(self, world: World, control: Control) -> float:
        """The additive steering perturbation for this tick."""


class DrivingEnv:
    """Episodic driving task: overtake six NPCs within 180 steps."""

    action_dim = 2  # (steer variation, thrust variation)

    def __init__(
        self,
        scenario: ScenarioConfig | None = None,
        reward_config: DrivingRewardConfig | None = None,
        observation: DrivingObservation | None = None,
        rng: np.random.Generator | None = None,
        injector: SteerInjector | None = None,
    ) -> None:
        self.scenario = scenario or ScenarioConfig()
        self.observation = observation or DrivingObservation(
            reference_speed=self.scenario.ego_speed
        )
        self.reward = DrivingReward(reward_config)
        self.rng = rng or np.random.default_rng(0)
        self.injector = injector
        self.world: World | None = None
        self.planner: BehaviorPlanner | None = None
        self._episode = 0

    @property
    def observation_dim(self) -> int:
        return self.observation.observation_dim

    def reset(self) -> np.ndarray:
        """Start a fresh episode and return the first observation."""
        self._episode += 1
        self.world = make_world(self.scenario, rng=self.rng)
        self.planner = BehaviorPlanner(self.world.road)
        self.planner.reset(self.world)
        self.observation.reset()
        if self.injector is not None:
            self.injector.reset(self.world)
        return self.observation.observe(self.world)

    def step(
        self, action: np.ndarray
    ) -> tuple[np.ndarray, float, bool, dict]:
        """Apply the policy action (already in ``[-1, 1]^2``) for one tick."""
        if self.world is None:
            raise RuntimeError("call reset() before step()")
        world = self.world
        control = Control(
            steer=float(action[0]), thrust=float(action[1])
        ).clipped()
        delta = 0.0
        if self.injector is not None:
            delta = float(self.injector.delta(world, control))
        plan = self.planner.update(world)
        result = world.tick(control, steer_delta=delta)
        breakdown = self.reward.step(world, plan, result.collision)
        obs = self.observation.observe(world)
        # Time-limit truncation is not a true terminal for bootstrapping.
        terminal = result.collision is not None
        info = {
            "collision": result.collision,
            "passed_npcs": world.passed_npcs,
            "step": result.step,
            "breakdown": breakdown,
            "steer_delta": delta,
            "applied_steer": result.applied_steer,
            "truncated": result.done and result.collision is None,
        }
        return obs, breakdown.total, result.done, info

    @property
    def done(self) -> bool:
        return self.world is None or self.world.done
