"""The end-to-end driving agent: a learned policy behind the common
:class:`~repro.agents.base.DrivingAgent` interface.

Deployment mirrors the paper: the trained SAC policy is frozen and queried
deterministically (the tanh mean) at every control tick.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.agents.base import DrivingAgent
from repro.agents.e2e.observation import DrivingObservation
from repro.rl.pnn import ProgressivePolicy
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim.vehicle import Control
from repro.sim.world import World
from repro.telemetry.spans import timed
from repro.utils.serialization import load_checkpoint, save_checkpoint

#: Hidden widths used by all shipped driving policies.
DRIVER_HIDDEN = (128, 128)


class EndToEndAgent(DrivingAgent):
    """Wraps a squashed-Gaussian policy (or PNN column) as a driving agent."""

    name = "end-to-end"

    def __init__(
        self,
        policy,
        observation: DrivingObservation | None = None,
        deterministic: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.policy = policy
        self.observation = observation or DrivingObservation()
        self.deterministic = deterministic
        self.rng = rng or np.random.default_rng(0)

    def reset(self, world: World) -> None:
        self.observation.reset()

    @timed("agent.e2e.act")
    def act(self, world: World) -> Control:
        obs = self.observation.observe(world)
        action = self.policy.act(
            obs, deterministic=self.deterministic, rng=self.rng
        )
        return Control(steer=float(action[0]), thrust=float(action[1])).clipped()

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path, extra_meta: dict | None = None) -> Path:
        """Persist the policy weights and architecture metadata."""
        meta = {
            "kind": "e2e-driver",
            "obs_dim": self.policy.obs_dim,
            "action_dim": self.policy.action_dim,
            "hidden": list(self.policy.hidden),
        }
        meta.update(extra_meta or {})
        return save_checkpoint(path, self.policy.state_dict(), meta)

    @classmethod
    def load(cls, path: str | Path, **kwargs) -> "EndToEndAgent":
        """Restore an agent saved by :meth:`save`."""
        arrays, meta = load_checkpoint(path)
        policy = SquashedGaussianPolicy(
            int(meta["obs_dim"]),
            int(meta["action_dim"]),
            tuple(meta.get("hidden", DRIVER_HIDDEN)),
        )
        policy.load_state_dict(arrays)
        return cls(policy, **kwargs)


def save_progressive(
    policy: ProgressivePolicy, path: str | Path, extra_meta: dict | None = None
) -> Path:
    """Persist a two-column progressive policy (both columns)."""
    meta = {
        "kind": "pnn-driver",
        "obs_dim": policy.obs_dim,
        "action_dim": policy.action_dim,
        "hidden": list(policy.hidden),
    }
    meta.update(extra_meta or {})
    return save_checkpoint(path, policy.state_dict(), meta)


def load_progressive(path: str | Path) -> ProgressivePolicy:
    """Restore a progressive policy saved by :func:`save_progressive`."""
    arrays, meta = load_checkpoint(path)
    base = SquashedGaussianPolicy(
        int(meta["obs_dim"]),
        int(meta["action_dim"]),
        tuple(meta.get("hidden", DRIVER_HIDDEN)),
    )
    policy = ProgressivePolicy(base)
    policy.load_state_dict(arrays)
    return policy
