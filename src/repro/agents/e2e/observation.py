"""Observation encoding for the end-to-end driving policy.

The paper's agent consumes stacked semantic-segmentation panoramas. Our
substrate replaces the GPU CNN with an MLP, so the camera is a compact
bird's-eye semantic grid (3 stacked frames) concatenated with normalized
ego measurements (speed, current actuation, lateral position, heading) —
the proprioceptive signals any deployed stack exposes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sensors.base import FrameStack
from repro.sensors.camera import BevCamera, BevCameraConfig
from repro.sim.world import World

#: Camera geometry used by learned policies (driver and camera attacker).
POLICY_CAMERA = BevCameraConfig(
    forward=45.0, backward=5.0, half_width=8.75, rows=15, cols=10
)

_N_EGO_FEATURES = 5


class DrivingObservation:
    """Stateful encoder: camera frame stack + ego measurements."""

    def __init__(
        self,
        camera_config: BevCameraConfig | None = None,
        frames: int = 3,
        reference_speed: float = 16.0,
    ) -> None:
        self._stack = FrameStack(
            BevCamera(camera_config or POLICY_CAMERA), k=frames
        )
        self.reference_speed = float(reference_speed)

    @property
    def observation_dim(self) -> int:
        return self._stack.observation_dim + _N_EGO_FEATURES

    def reset(self) -> None:
        self._stack.reset()

    def observe(self, world: World) -> np.ndarray:
        """The full policy observation for the current tick."""
        frames = self._stack.observe(world)
        state = world.ego.state
        _, d, _ = world.road.to_frenet(state.position)
        ego = np.array(
            [
                state.speed / self.reference_speed,
                state.steer_actuation,
                state.thrust_actuation,
                d / world.road.half_width,
                state.yaw / math.pi,
            ]
        )
        return np.concatenate([frames, ego])

    def observe_batch(self, batch) -> np.ndarray:
        """Policy observations for every episode of a batch, ``[N, dim]``."""
        frames = self._stack.observe_batch(batch)
        _, d, _ = batch.ego_frenet()
        ego = np.stack(
            [
                batch.speed[:, 0] / self.reference_speed,
                batch.steer_act[:, 0],
                batch.thrust_act[:, 0],
                d / batch.road.half_width,
                batch.yaw[:, 0] / math.pi,
            ],
            axis=1,
        )
        return np.concatenate([frames, ego], axis=1)
