"""PID controllers for the modular driving pipeline (Section III-B).

The pipeline uses a longitudinal PID (speed -> thrust variation) and a
lateral PID (bearing to a lookahead point on the reference path -> steering
variation), mirroring CARLA Autopilot's ``VehiclePIDController``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PidGains:
    """Proportional / integral / derivative gains."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0


class Pid:
    """A scalar PID loop with integral clamping and output saturation."""

    def __init__(
        self,
        gains: PidGains,
        dt: float,
        output_limit: float = 1.0,
        integral_limit: float = 1.0,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.gains = gains
        self.dt = dt
        self.output_limit = float(output_limit)
        self.integral_limit = float(integral_limit)
        self._integral = 0.0
        self._last_error: float | None = None

    def step(self, error: float) -> float:
        """Advance the loop by one tick and return the saturated output."""
        self._integral = float(
            np.clip(
                self._integral + error * self.dt,
                -self.integral_limit,
                self.integral_limit,
            )
        )
        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / self.dt
        self._last_error = error
        g = self.gains
        output = g.kp * error + g.ki * self._integral + g.kd * derivative
        return float(np.clip(output, -self.output_limit, self.output_limit))

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None


class BatchPid:
    """N independent :class:`Pid` loops advanced as one array expression.

    Row ``i`` reproduces a scalar ``Pid`` fed episode ``i``'s errors: the
    integral clamp, first-step derivative suppression, and output
    saturation all evaluate per row.
    """

    def __init__(
        self,
        gains: PidGains,
        dt: float,
        n: int,
        output_limit: float = 1.0,
        integral_limit: float = 1.0,
    ) -> None:
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.gains = gains
        self.dt = dt
        self.output_limit = float(output_limit)
        self.integral_limit = float(integral_limit)
        self._integral = np.zeros(n)
        self._last_error = np.zeros(n)
        self._has_last = np.zeros(n, dtype=bool)

    def step(self, error: np.ndarray) -> np.ndarray:
        """Advance all loops one tick; returns the saturated outputs."""
        error = np.asarray(error, dtype=float)
        self._integral = np.clip(
            self._integral + error * self.dt,
            -self.integral_limit,
            self.integral_limit,
        )
        derivative = np.where(
            self._has_last, (error - self._last_error) / self.dt, 0.0
        )
        self._last_error = error.copy()
        self._has_last[:] = True
        g = self.gains
        output = g.kp * error + g.ki * self._integral + g.kd * derivative
        return np.clip(output, -self.output_limit, self.output_limit)

    def reset(self) -> None:
        self._integral[:] = 0.0
        self._last_error[:] = 0.0
        self._has_last[:] = False


#: Default gains tuned for the paper's aggressive freeway configuration.
LATERAL_GAINS = PidGains(kp=1.9, ki=0.05, kd=0.25)
LONGITUDINAL_GAINS = PidGains(kp=0.55, ki=0.08, kd=0.0)
