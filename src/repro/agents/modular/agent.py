"""The modular driving agent: planner hierarchy + PID feedback control.

This is the CARLA-Autopilot substitute of Section III-B, tuned to the
paper's aggressive freeway mode: reference speed 16 m/s, decisive lane
changes, overtaking permitted in all lanes. Steering traces a lookahead
point on the local planner's reference path; both actuation channels
command per-step *variations* bounded by the mechanical limit, which the
vehicle blends per Eq. (1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.agents.base import DrivingAgent
from repro.agents.modular.behavior import BehaviorConfig, BehaviorPlanner, Plan
from repro.agents.modular.pid import (
    LATERAL_GAINS,
    LONGITUDINAL_GAINS,
    Pid,
    PidGains,
)
from repro.sim.road import Road
from repro.sim.vehicle import Control
from repro.sim.world import World
from repro.telemetry.spans import timed
from repro.utils.geometry import normalize_angle


@dataclass(frozen=True)
class ModularAgentConfig:
    """Controller tuning for the modular pipeline."""

    behavior: BehaviorConfig = BehaviorConfig()
    lateral_gains: PidGains = LATERAL_GAINS
    longitudinal_gains: PidGains = LONGITUDINAL_GAINS
    #: Lookahead distance = clip(gain * speed, min, max), meters.
    lookahead_gain: float = 0.45
    lookahead_min: float = 4.0
    lookahead_max: float = 10.0


class ModularAgent(DrivingAgent):
    """Plan-then-track driving agent with local PID feedback."""

    name = "modular"

    def __init__(
        self,
        road: Road,
        config: ModularAgentConfig | None = None,
        dt: float = 0.1,
    ) -> None:
        self.config = config or ModularAgentConfig()
        self.planner = BehaviorPlanner(road, self.config.behavior)
        self._lateral = Pid(self.config.lateral_gains, dt)
        self._longitudinal = Pid(self.config.longitudinal_gains, dt)
        self._plan: Plan | None = None

    def reset(self, world: World) -> None:
        self.planner.reset(world)
        self._lateral.reset()
        self._longitudinal.reset()
        self._plan = None

    @property
    def current_plan(self) -> Plan | None:
        """The last plan computed by :meth:`act` (for metrics/inspection)."""
        return self._plan

    @timed("agent.modular.act")
    def act(self, world: World) -> Control:
        plan = self.planner.update(world)
        self._plan = plan
        state = world.ego.state
        ego_s, _, _ = world.road.to_frenet(state.position)

        # Lateral control: bearing to a lookahead point on the reference path.
        cfg = self.config
        lookahead = float(
            np.clip(
                cfg.lookahead_gain * state.speed,
                cfg.lookahead_min,
                cfg.lookahead_max,
            )
        )
        target_s = ego_s + lookahead
        target_d = plan.reference_offset(target_s)
        target_xy, _ = world.road.to_world(target_s, target_d)
        dx = float(target_xy[0] - state.x)
        dy = float(target_xy[1] - state.y)
        bearing = normalize_angle(math.atan2(dy, dx) - state.yaw)
        # Positive steer turns right (clockwise); a target to the left
        # (positive bearing) therefore needs negative steer.
        steer = self._lateral.step(-bearing)

        thrust = self._longitudinal.step(plan.target_speed - state.speed)
        return Control(steer=steer, thrust=thrust)
