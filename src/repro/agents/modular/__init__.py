"""Modular driving pipeline: route planning, behaviour, local planning, PID."""

from repro.agents.modular.agent import ModularAgent, ModularAgentConfig
from repro.agents.modular.behavior import (
    BehaviorConfig,
    BehaviorPlanner,
    GlobalRoutePlanner,
    LaneTransition,
    Plan,
)
from repro.agents.modular.pid import (
    LATERAL_GAINS,
    LONGITUDINAL_GAINS,
    Pid,
    PidGains,
)

__all__ = [
    "BehaviorConfig",
    "BehaviorPlanner",
    "GlobalRoutePlanner",
    "LaneTransition",
    "LATERAL_GAINS",
    "LONGITUDINAL_GAINS",
    "ModularAgent",
    "ModularAgentConfig",
    "Pid",
    "PidGains",
    "Plan",
]
