"""Behavioural layer and local reference-path planner.

This module implements the decision-making hierarchy of the modular
pipeline (Section III-B): a behavioural layer that decides when to follow,
overtake, or change lanes (tuned to the paper's *aggressive* freeway mode),
and a local planner that turns those decisions into a smooth reference path
``d_ref(s)`` plus a target speed.

The same planner also serves as the *privileged agent* of the end-to-end
reward shaping (Section III-C) and as the predetermined path against which
trajectory deviation is measured in Figs. 5 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.road import Road
from repro.sim.world import World


@dataclass(frozen=True)
class BehaviorConfig:
    """Tuning of the aggressive freeway behaviour (Section III-B)."""

    #: Cruise reference speed, m/s (paper: 16).
    target_speed: float = 16.0
    #: Distance ahead at which a slower leader triggers an overtake attempt.
    overtake_trigger: float = 26.0
    #: Bumper-to-bumper gap the ACC fallback tries to keep.
    min_gap: float = 7.0
    #: Required clear distance ahead in the target lane for a lane change.
    change_front_gap: float = 13.0
    #: Required clear distance behind in the target lane for a lane change.
    change_rear_gap: float = 8.0
    #: Nominal lane-change duration, seconds.
    change_time: float = 1.6
    #: Minimum lane-change length, meters.
    min_change_distance: float = 16.0
    #: ACC proportional gain on (gap - min_gap).
    acc_gain: float = 0.6


@dataclass(frozen=True)
class LaneTransition:
    """A smooth lateral blend between two lane offsets over ``[s0, s1]``."""

    s0: float
    d0: float
    s1: float
    d1: float

    def offset(self, s: float) -> float:
        """Cosine-blended lateral offset at arc-length ``s``."""
        if s <= self.s0:
            return self.d0
        if s >= self.s1:
            return self.d1
        phase = (s - self.s0) / (self.s1 - self.s0)
        return self.d0 + (self.d1 - self.d0) * 0.5 * (1.0 - math.cos(math.pi * phase))


@dataclass(frozen=True)
class Plan:
    """One tick's output of the behavioural layer."""

    target_lane: int
    target_speed: float
    lane_offset: float
    transition: LaneTransition | None

    @property
    def changing(self) -> bool:
        return self.transition is not None

    def reference_offset(self, s: float) -> float:
        """The reference path's lateral offset ``d_ref`` at arc-length ``s``."""
        if self.transition is not None:
            return self.transition.offset(s)
        return self.lane_offset


class BehaviorPlanner:
    """Stateful behaviour + local planning for the overtaking scenario.

    Call :meth:`reset` at episode start and :meth:`update` once per control
    tick. The planner only *observes* the world; it never actuates, so an
    independent instance can shadow any victim agent to provide the
    privileged reference path for rewards and deviation metrics.
    """

    def __init__(self, road: Road, config: BehaviorConfig | None = None) -> None:
        self.road = road
        self.config = config or BehaviorConfig()
        self._target_lane = 0
        self._transition: LaneTransition | None = None

    @property
    def target_lane(self) -> int:
        return self._target_lane

    def reset(self, world: World) -> None:
        """Initialize the plan to the ego's spawn lane."""
        _, d, _ = world.road.to_frenet(world.ego.state.position)
        lane = world.road.lane_at(d)
        self._target_lane = lane if lane is not None else 0
        self._transition = None

    def update(self, world: World) -> Plan:
        """Advance the behavioural state machine and return this tick's plan."""
        cfg = self.config
        ego_s, _, _ = world.road.to_frenet(world.ego.state.position)
        if self._transition is not None and ego_s >= self._transition.s1:
            self._transition = None

        target_speed = cfg.target_speed
        if self._transition is None:
            leader = self._leader(world, self._target_lane, ego_s)
            if leader is not None:
                gap = leader[0] - ego_s
                if gap < cfg.overtake_trigger:
                    started = self._try_lane_change(world, ego_s)
                    if not started:
                        target_speed = self._acc_speed(world, leader, ego_s)
        else:
            leader = self._leader(world, self._target_lane, ego_s)
            if leader is not None and leader[0] - ego_s < cfg.overtake_trigger:
                target_speed = self._acc_speed(world, leader, ego_s)

        return Plan(
            target_lane=self._target_lane,
            target_speed=target_speed,
            lane_offset=self.road.lane_offset(self._target_lane),
            transition=self._transition,
        )

    # -- internals ---------------------------------------------------------

    def _leader(
        self, world: World, lane: int, ego_s: float
    ) -> tuple[float, float] | None:
        """Closest NPC ahead of the ego in ``lane``: ``(s, speed)`` or None."""
        best: tuple[float, float] | None = None
        for npc in world.npcs:
            s, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            npc_lane = world.road.lane_at(d)
            if npc_lane != lane or s <= ego_s:
                continue
            if best is None or s < best[0]:
                best = (s, npc.vehicle.state.speed)
        return best

    def _lane_is_free(self, world: World, lane: int, ego_s: float) -> bool:
        cfg = self.config
        for npc in world.npcs:
            s, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            if world.road.lane_at(d) != lane:
                continue
            if -cfg.change_rear_gap <= s - ego_s <= cfg.change_front_gap:
                return False
        return True

    def _try_lane_change(self, world: World, ego_s: float) -> bool:
        """Attempt an overtake; aggressive mode may use any adjacent lane."""
        cfg = self.config
        candidates = [self._target_lane + 1, self._target_lane - 1]
        for lane in candidates:
            if not 0 <= lane < self.road.n_lanes:
                continue
            if not self._lane_is_free(world, lane, ego_s):
                continue
            speed = max(world.ego.state.speed, 4.0)
            distance = max(speed * cfg.change_time, cfg.min_change_distance)
            _, ego_d, _ = world.road.to_frenet(world.ego.state.position)
            self._transition = LaneTransition(
                s0=ego_s,
                d0=ego_d,
                s1=ego_s + distance,
                d1=self.road.lane_offset(lane),
            )
            self._target_lane = lane
            return True
        return False

    def _acc_speed(
        self, world: World, leader: tuple[float, float], ego_s: float
    ) -> float:
        """Adaptive-cruise fallback speed when boxed in behind a leader."""
        cfg = self.config
        gap = leader[0] - ego_s
        leader_speed = leader[1]
        speed = leader_speed + cfg.acc_gain * (gap - cfg.min_gap)
        return float(np.clip(speed, 0.0, cfg.target_speed))


@dataclass(frozen=True)
class BatchPlan:
    """One tick's plans for every episode of a batch (SoA mirror of
    :class:`Plan`): per-episode target lane/speed arrays plus the active
    lane-change transitions."""

    target_lane: np.ndarray
    target_speed: np.ndarray
    lane_offset: np.ndarray
    #: Cosine-blend transition parameters; rows where ``changing`` is
    #: False hold stale values and are ignored.
    changing: np.ndarray
    s0: np.ndarray
    d0: np.ndarray
    s1: np.ndarray
    d1: np.ndarray

    def reference_offset(self, s: np.ndarray) -> np.ndarray:
        """Vectorized ``d_ref(s)`` per episode, same blend as scalar."""
        span = np.where(self.changing, self.s1 - self.s0, 1.0)
        phase = np.clip((s - self.s0) / span, 0.0, 1.0)
        blend = self.d0 + (self.d1 - self.d0) * 0.5 * (
            1.0 - np.cos(math.pi * phase)
        )
        offset = np.where(s <= self.s0, self.d0, blend)
        offset = np.where(s >= self.s1, self.d1, offset)
        return np.where(self.changing, offset, self.lane_offset)


class BatchBehaviorPlanner:
    """SoA twin of :class:`BehaviorPlanner` for lockstep batch evaluation.

    Runs the identical state machine per episode row — clear finished
    transitions, find the leader in the *current* target lane, attempt a
    lane change (left-adjacent candidate first), fall back to ACC — but as
    whole-batch array expressions. NPC lane membership is re-derived from
    positions every tick (``lane_at``), exactly like the scalar planner.
    """

    def __init__(self, road: Road, config: BehaviorConfig | None = None) -> None:
        self.road = road
        self.config = config or BehaviorConfig()
        self._target_lane: np.ndarray | None = None
        self._changing: np.ndarray | None = None
        self._s0 = self._d0 = self._s1 = self._d1 = None

    def reset(self, batch) -> None:
        """Initialize every episode's plan to its ego's spawn lane."""
        _, d, _ = batch.ego_frenet()
        lane = self._lane_at(d)
        self._target_lane = np.where(lane >= 0, lane, 0)
        self._changing = np.zeros(batch.n, dtype=bool)
        self._s0 = np.zeros(batch.n)
        self._d0 = np.zeros(batch.n)
        self._s1 = np.zeros(batch.n)
        self._d1 = np.zeros(batch.n)

    def _lane_at(self, d: np.ndarray) -> np.ndarray:
        """Vectorized ``Road.lane_at``: lane index, or -1 off-road."""
        road = self.road
        half = road.config.n_lanes * road.config.lane_width / 2.0
        lane = np.minimum(
            ((d + half) / road.config.lane_width).astype(int),
            road.config.n_lanes - 1,
        )
        return np.where(np.abs(d) > half, -1, lane)

    def _lane_offsets(self, lane: np.ndarray) -> np.ndarray:
        centre = (self.road.config.n_lanes - 1) / 2.0
        return (lane - centre) * self.road.config.lane_width

    def update(self, batch) -> BatchPlan:
        """Advance every row's state machine; returns this tick's plans."""
        if self._target_lane is None:
            raise RuntimeError("call reset(batch) before update(batch)")
        cfg = self.config
        n = batch.n
        ego_s, ego_d, _ = batch.ego_frenet()
        ego_speed = batch.speed[:, 0]

        # 1. Clear transitions whose blend interval the ego has passed.
        self._changing &= ego_s < self._s1

        # 2. Leader search in the current target lane (positions decide
        #    lane membership, matching the scalar planner).
        npc_s = batch._npc_s()
        pts = np.stack(
            [batch.x[:, 1:].ravel(), batch.y[:, 1:].ravel()], axis=1
        )
        _, npc_d, _ = self.road.frenet_batch(pts)
        npc_lane = self._lane_at(npc_d.reshape(n, batch.m))
        npc_speed = batch.speed[:, 1:]

        ahead = (npc_lane == self._target_lane[:, None]) & (
            npc_s > ego_s[:, None]
        )
        masked_s = np.where(ahead, npc_s, np.inf)
        leader_s = masked_s.min(axis=1)
        has_leader = np.isfinite(leader_s)
        leader_col = np.argmin(masked_s, axis=1)
        leader_speed = npc_speed[np.arange(n), leader_col]
        gap = leader_s - ego_s
        near = has_leader & (gap < cfg.overtake_trigger)

        # 3. Lane-change attempt for non-transitioning rows with a close
        #    leader; candidate order matches the scalar planner (+1 first).
        attempt = ~self._changing & near
        started = np.zeros(n, dtype=bool)
        new_lane = self._target_lane.copy()
        for delta in (1, -1):
            candidate = self._target_lane + delta
            valid = (
                attempt
                & ~started
                & (candidate >= 0)
                & (candidate < self.road.n_lanes)
            )
            if not valid.any():
                continue
            in_cand = npc_lane == candidate[:, None]
            rel = npc_s - ego_s[:, None]
            blocking = (
                in_cand
                & (rel >= -cfg.change_rear_gap)
                & (rel <= cfg.change_front_gap)
            ).any(axis=1)
            go = valid & ~blocking
            if go.any():
                speed = np.maximum(ego_speed, 4.0)
                distance = np.maximum(
                    speed * cfg.change_time, cfg.min_change_distance
                )
                self._s0[go] = ego_s[go]
                self._d0[go] = ego_d[go]
                self._s1[go] = ego_s[go] + distance[go]
                self._d1[go] = self._lane_offsets(candidate)[go]
                new_lane[go] = candidate[go]
                started |= go
        self._changing |= started
        self._target_lane = new_lane

        # 4. ACC fallback: boxed-in rows (no change started) and
        #    transitioning rows with a close leader track the leader.
        target_speed = np.full(n, cfg.target_speed)
        acc = near & ~started
        if acc.any():
            acc_speed = np.clip(
                leader_speed + cfg.acc_gain * (gap - cfg.min_gap),
                0.0,
                cfg.target_speed,
            )
            target_speed[acc] = acc_speed[acc]

        return BatchPlan(
            target_lane=self._target_lane.copy(),
            target_speed=target_speed,
            lane_offset=self._lane_offsets(self._target_lane),
            changing=self._changing.copy(),
            s0=self._s0.copy(),
            d0=self._d0.copy(),
            s1=self._s1.copy(),
            d1=self._d1.copy(),
        )


class GlobalRoutePlanner:
    """Route planning over the lane-graph (the hierarchy's top layer).

    On a freeway the optimal route is simply "continue to the end of the
    road", but the planner is a real Dijkstra search over the waypoint
    graph so non-trivial maps route correctly.
    """

    def __init__(self, road: Road) -> None:
        self.road = road

    def plan(self, world: World, goal_lane: int | None = None) -> list:
        """Waypoints from the ego's position to the end of the road."""
        ego_s, ego_d, _ = world.road.to_frenet(world.ego.state.position)
        lane = world.road.lane_at(ego_d)
        if lane is None:
            lane = 0
        start = world.road.nearest_waypoint(lane, ego_s)
        target_lane = goal_lane if goal_lane is not None else lane
        goal = world.road.waypoints(target_lane)[-1]
        return self.road.shortest_route(
            (start.lane, start.index), (goal.lane, goal.index)
        )
