"""Behavioural layer and local reference-path planner.

This module implements the decision-making hierarchy of the modular
pipeline (Section III-B): a behavioural layer that decides when to follow,
overtake, or change lanes (tuned to the paper's *aggressive* freeway mode),
and a local planner that turns those decisions into a smooth reference path
``d_ref(s)`` plus a target speed.

The same planner also serves as the *privileged agent* of the end-to-end
reward shaping (Section III-C) and as the predetermined path against which
trajectory deviation is measured in Figs. 5 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.road import Road
from repro.sim.world import World


@dataclass(frozen=True)
class BehaviorConfig:
    """Tuning of the aggressive freeway behaviour (Section III-B)."""

    #: Cruise reference speed, m/s (paper: 16).
    target_speed: float = 16.0
    #: Distance ahead at which a slower leader triggers an overtake attempt.
    overtake_trigger: float = 26.0
    #: Bumper-to-bumper gap the ACC fallback tries to keep.
    min_gap: float = 7.0
    #: Required clear distance ahead in the target lane for a lane change.
    change_front_gap: float = 13.0
    #: Required clear distance behind in the target lane for a lane change.
    change_rear_gap: float = 8.0
    #: Nominal lane-change duration, seconds.
    change_time: float = 1.6
    #: Minimum lane-change length, meters.
    min_change_distance: float = 16.0
    #: ACC proportional gain on (gap - min_gap).
    acc_gain: float = 0.6


@dataclass(frozen=True)
class LaneTransition:
    """A smooth lateral blend between two lane offsets over ``[s0, s1]``."""

    s0: float
    d0: float
    s1: float
    d1: float

    def offset(self, s: float) -> float:
        """Cosine-blended lateral offset at arc-length ``s``."""
        if s <= self.s0:
            return self.d0
        if s >= self.s1:
            return self.d1
        phase = (s - self.s0) / (self.s1 - self.s0)
        return self.d0 + (self.d1 - self.d0) * 0.5 * (1.0 - math.cos(math.pi * phase))


@dataclass(frozen=True)
class Plan:
    """One tick's output of the behavioural layer."""

    target_lane: int
    target_speed: float
    lane_offset: float
    transition: LaneTransition | None

    @property
    def changing(self) -> bool:
        return self.transition is not None

    def reference_offset(self, s: float) -> float:
        """The reference path's lateral offset ``d_ref`` at arc-length ``s``."""
        if self.transition is not None:
            return self.transition.offset(s)
        return self.lane_offset


class BehaviorPlanner:
    """Stateful behaviour + local planning for the overtaking scenario.

    Call :meth:`reset` at episode start and :meth:`update` once per control
    tick. The planner only *observes* the world; it never actuates, so an
    independent instance can shadow any victim agent to provide the
    privileged reference path for rewards and deviation metrics.
    """

    def __init__(self, road: Road, config: BehaviorConfig | None = None) -> None:
        self.road = road
        self.config = config or BehaviorConfig()
        self._target_lane = 0
        self._transition: LaneTransition | None = None

    @property
    def target_lane(self) -> int:
        return self._target_lane

    def reset(self, world: World) -> None:
        """Initialize the plan to the ego's spawn lane."""
        _, d, _ = world.road.to_frenet(world.ego.state.position)
        lane = world.road.lane_at(d)
        self._target_lane = lane if lane is not None else 0
        self._transition = None

    def update(self, world: World) -> Plan:
        """Advance the behavioural state machine and return this tick's plan."""
        cfg = self.config
        ego_s, _, _ = world.road.to_frenet(world.ego.state.position)
        if self._transition is not None and ego_s >= self._transition.s1:
            self._transition = None

        target_speed = cfg.target_speed
        if self._transition is None:
            leader = self._leader(world, self._target_lane, ego_s)
            if leader is not None:
                gap = leader[0] - ego_s
                if gap < cfg.overtake_trigger:
                    started = self._try_lane_change(world, ego_s)
                    if not started:
                        target_speed = self._acc_speed(world, leader, ego_s)
        else:
            leader = self._leader(world, self._target_lane, ego_s)
            if leader is not None and leader[0] - ego_s < cfg.overtake_trigger:
                target_speed = self._acc_speed(world, leader, ego_s)

        return Plan(
            target_lane=self._target_lane,
            target_speed=target_speed,
            lane_offset=self.road.lane_offset(self._target_lane),
            transition=self._transition,
        )

    # -- internals ---------------------------------------------------------

    def _leader(
        self, world: World, lane: int, ego_s: float
    ) -> tuple[float, float] | None:
        """Closest NPC ahead of the ego in ``lane``: ``(s, speed)`` or None."""
        best: tuple[float, float] | None = None
        for npc in world.npcs:
            s, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            npc_lane = world.road.lane_at(d)
            if npc_lane != lane or s <= ego_s:
                continue
            if best is None or s < best[0]:
                best = (s, npc.vehicle.state.speed)
        return best

    def _lane_is_free(self, world: World, lane: int, ego_s: float) -> bool:
        cfg = self.config
        for npc in world.npcs:
            s, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            if world.road.lane_at(d) != lane:
                continue
            if -cfg.change_rear_gap <= s - ego_s <= cfg.change_front_gap:
                return False
        return True

    def _try_lane_change(self, world: World, ego_s: float) -> bool:
        """Attempt an overtake; aggressive mode may use any adjacent lane."""
        cfg = self.config
        candidates = [self._target_lane + 1, self._target_lane - 1]
        for lane in candidates:
            if not 0 <= lane < self.road.n_lanes:
                continue
            if not self._lane_is_free(world, lane, ego_s):
                continue
            speed = max(world.ego.state.speed, 4.0)
            distance = max(speed * cfg.change_time, cfg.min_change_distance)
            _, ego_d, _ = world.road.to_frenet(world.ego.state.position)
            self._transition = LaneTransition(
                s0=ego_s,
                d0=ego_d,
                s1=ego_s + distance,
                d1=self.road.lane_offset(lane),
            )
            self._target_lane = lane
            return True
        return False

    def _acc_speed(
        self, world: World, leader: tuple[float, float], ego_s: float
    ) -> float:
        """Adaptive-cruise fallback speed when boxed in behind a leader."""
        cfg = self.config
        gap = leader[0] - ego_s
        leader_speed = leader[1]
        speed = leader_speed + cfg.acc_gain * (gap - cfg.min_gap)
        return float(np.clip(speed, 0.0, cfg.target_speed))


class GlobalRoutePlanner:
    """Route planning over the lane-graph (the hierarchy's top layer).

    On a freeway the optimal route is simply "continue to the end of the
    road", but the planner is a real Dijkstra search over the waypoint
    graph so non-trivial maps route correctly.
    """

    def __init__(self, road: Road) -> None:
        self.road = road

    def plan(self, world: World, goal_lane: int | None = None) -> list:
        """Waypoints from the ego's position to the end of the road."""
        ego_s, ego_d, _ = world.road.to_frenet(world.ego.state.position)
        lane = world.road.lane_at(ego_d)
        if lane is None:
            lane = 0
        start = world.road.nearest_waypoint(lane, ego_s)
        target_lane = goal_lane if goal_lane is not None else lane
        goal = world.road.waypoints(target_lane)[-1]
        return self.road.shortest_route(
            (start.lane, start.index), (goal.lane, goal.index)
        )
