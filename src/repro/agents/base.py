"""The driving-agent interface shared by the modular and end-to-end agents."""

from __future__ import annotations

import abc

from repro.sim.vehicle import Control
from repro.sim.world import World


class DrivingAgent(abc.ABC):
    """A victim driving policy: maps the world to a control command.

    Both the modular pipeline and the end-to-end policy implement this
    interface, so attacks and evaluation protocols are agent-agnostic.
    """

    #: Human-readable identifier used in experiment reports.
    name: str = "agent"

    @abc.abstractmethod
    def act(self, world: World) -> Control:
        """Compute the steering/thrust variation command for this tick."""

    def reset(self, world: World) -> None:
        """Prepare for a new episode (clear stacks, re-plan routes)."""
