"""Nested wall-clock span timing for hot paths.

Usage::

    with span("world.tick"):
        ...

    @timed("camera.render")
    def render(...): ...

Spans nest: entering ``agent.act`` inside an open ``episode`` span
aggregates under the path ``episode/agent.act``, so the snapshot doubles
as a call-tree profile. Aggregation keeps count/total/min/max plus every
duration in a :class:`~repro.telemetry.metrics.Histogram` for exact
percentiles.

The tracer is **disabled by default**: ``span()`` then returns a shared
no-op context manager and ``@timed`` wrappers fall through with a single
attribute check, so instrumented hot loops stay within noise of the
uninstrumented code. Set ``REPRO_SPANS`` (truthy) to enable at import, or
call ``get_tracer().enable()`` programmatically. Timing uses
``time.perf_counter`` only — no RNG, no simulation state.
"""

from __future__ import annotations

import functools
import os
import threading
import time

from repro.telemetry.metrics import Histogram

#: Cap on retained raw events for the Chrome export (oldest kept).
MAX_RAW_EVENTS = 500_000


class SpanStats:
    """Aggregate timing of one span path."""

    __slots__ = ("count", "total", "min", "max", "durations")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.durations = Histogram()

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        self.durations.observe(duration)

    def summary(self) -> dict[str, float]:
        stats = self.durations.summary()
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "mean_us": round(1e6 * self.total / max(self.count, 1), 3),
            "min_us": round(1e6 * self.min, 3),
            "max_us": round(1e6 * self.max, 3),
            "p50_us": round(1e6 * stats.get("p50", 0.0), 3),
            "p90_us": round(1e6 * stats.get("p90", 0.0), 3),
            "p99_us": round(1e6 * stats.get("p99", 0.0), 3),
        }


class _NullSpan:
    """Shared no-op context manager returned while the tracer is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One active span: pushes its path on enter, aggregates on exit."""

    __slots__ = ("_tracer", "_name", "_path", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        parent = stack[-1] if stack else ""
        self._path = f"{parent}/{self._name}" if parent else self._name
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._stack().pop()
        stats = tracer._stats.get(self._path)
        if stats is None:
            stats = tracer._stats[self._path] = SpanStats()
        stats.add(duration)
        if tracer.record_events and len(tracer.events) < MAX_RAW_EVENTS:
            tracer.events.append((self._path, self._start, duration))
        return False


class Tracer:
    """Span aggregator with an enable/disable switch and thread-local nesting."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: When true, every finished span is also kept as a raw
        #: ``(path, start_s, duration_s)`` event for the Chrome export.
        self.record_events = False
        self.events: list[tuple[str, float, float]] = []
        self._stats: dict[str, SpanStats] = {}
        self._local = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def enable(self, record_events: bool = False) -> None:
        self.enabled = True
        if record_events:
            self.record_events = True

    def disable(self) -> None:
        self.enabled = False

    def span(self, name: str):
        """Context manager timing ``name`` (no-op singleton when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name)

    def reset(self) -> None:
        self._stats.clear()
        self.events.clear()
        self._local = threading.local()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Aggregates per span path, sorted by total time (largest first)."""
        ordered = sorted(
            self._stats.items(), key=lambda item: -item[1].total
        )
        return {path: stats.summary() for path, stats in ordered}


_TRACER = Tracer(
    enabled=os.environ.get("REPRO_SPANS", "").strip().lower()
    not in ("", "0", "false", "no", "off")
)


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def span(name: str):
    """``with span("..."):`` against the default tracer."""
    return _TRACER.span(name)


def timed(name: str):
    """Decorator timing every call under ``name`` (falls through when off)."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with _LiveSpan(_TRACER, name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
