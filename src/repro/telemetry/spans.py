"""Nested wall-clock span timing for hot paths.

Usage::

    with span("world.tick"):
        ...

    @timed("camera.render")
    def render(...): ...

Spans nest: entering ``agent.act`` inside an open ``episode`` span
aggregates under the path ``episode/agent.act``, so the snapshot doubles
as a call-tree profile. Aggregation keeps count/total/min/max plus every
duration in a :class:`~repro.telemetry.metrics.Histogram` for exact
percentiles. Each span also accumulates the wall-clock its *direct
children* spent (``child_total``), so the snapshot reports **self time**
(inclusive minus children) — the number the profiling layer
(:mod:`repro.obsv.prof`) attributes optimisation work against.

The tracer is **disabled by default**: ``span()`` then returns a shared
no-op context manager and ``@timed`` wrappers fall through with a single
attribute check, so instrumented hot loops stay within noise of the
uninstrumented code. Set ``REPRO_SPANS`` (truthy) to enable at import, or
call ``get_tracer().enable()`` programmatically. Timing uses
``time.perf_counter`` only — no RNG, no simulation state.

Probes
    Profiling tools can attach :class:`SpanProbe` objects via
    :meth:`Tracer.add_probe`; each live span then calls ``on_enter`` /
    ``on_exit`` around its body (allocation tracking, FLOP attribution).
    With no probes attached the per-span cost is one truthiness check.
"""

from __future__ import annotations

import functools
import os
import threading
import time

from repro.telemetry.metrics import Histogram

#: Cap on retained raw events for the Chrome export (oldest kept). Spans
#: finishing beyond the cap are counted in ``Tracer.events_dropped`` and
#: the ``spans_dropped_total`` metric instead of vanishing silently.
MAX_RAW_EVENTS = 500_000


class SpanStats:
    """Aggregate timing of one span path."""

    __slots__ = ("count", "total", "min", "max", "durations", "child_total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.durations = Histogram()
        #: Wall-clock spent inside *direct* child spans (self = total -
        #: child_total). Accumulated at child exit, so it is exact even
        #: for span names containing path separators.
        self.child_total = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        self.durations.observe(duration)

    @property
    def self_total(self) -> float:
        """Inclusive total minus direct-children total (never negative)."""
        return max(self.total - self.child_total, 0.0)

    def summary(self) -> dict[str, float]:
        stats = self.durations.summary()
        self_total = self.self_total
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "self_total_s": round(self_total, 6),
            "mean_us": round(1e6 * self.total / max(self.count, 1), 3),
            "self_mean_us": round(1e6 * self_total / max(self.count, 1), 3),
            "min_us": round(1e6 * self.min, 3),
            "max_us": round(1e6 * self.max, 3),
            "p50_us": round(1e6 * stats.get("p50", 0.0), 3),
            "p90_us": round(1e6 * stats.get("p90", 0.0), 3),
            "p99_us": round(1e6 * stats.get("p99", 0.0), 3),
        }


class SpanProbe:
    """Observer attached to the tracer; called around every live span.

    ``on_enter`` may return an arbitrary token (a counter snapshot, a
    memory reading); the same token comes back to ``on_exit`` with the
    span's duration. Probes must never raise and must not touch RNG or
    simulation state — they observe, they do not steer.
    """

    def on_enter(self, path: str):  # pragma: no cover - interface
        return None

    def on_exit(self, path: str, token, duration: float) -> None:
        """Called with the token from ``on_enter`` when the span closes."""


class _NullSpan:
    """Shared no-op context manager returned while the tracer is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One active span: pushes its path on enter, aggregates on exit."""

    __slots__ = ("_tracer", "_name", "_path", "_start", "_tokens")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        parent = stack[-1] if stack else ""
        self._path = f"{parent}/{self._name}" if parent else self._name
        stack.append(self._path)
        probes = self._tracer._probes
        self._tokens = (
            [(probe, probe.on_enter(self._path)) for probe in probes]
            if probes
            else None
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        stack = tracer._stack()
        stack.pop()
        stats = tracer._stats.get(self._path)
        if stats is None:
            stats = tracer._stats[self._path] = SpanStats()
        stats.add(duration)
        if stack:
            # Credit the enclosing span's child_total so its self time
            # (inclusive - children) is exact in the snapshot.
            parent = tracer._stats.get(stack[-1])
            if parent is None:
                parent = tracer._stats[stack[-1]] = SpanStats()
            parent.child_total += duration
        if tracer.record_events:
            if len(tracer.events) < MAX_RAW_EVENTS:
                tracer.events.append((self._path, self._start, duration))
            else:
                tracer._drop_event()
        if self._tokens:
            for probe, token in self._tokens:
                probe.on_exit(self._path, token, duration)
        return False


class Tracer:
    """Span aggregator with an enable/disable switch and thread-local nesting."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: When true, every finished span is also kept as a raw
        #: ``(path, start_s, duration_s)`` event for the Chrome export.
        self.record_events = False
        self.events: list[tuple[str, float, float]] = []
        #: Spans that finished after ``events`` hit :data:`MAX_RAW_EVENTS`
        #: (their aggregate stats are still recorded; only the raw event
        #: for the Chrome export is lost).
        self.events_dropped = 0
        self._stats: dict[str, SpanStats] = {}
        self._local = threading.local()
        self._probes: list[SpanProbe] = []
        self._dropped_counter = None

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _drop_event(self) -> None:
        self.events_dropped += 1
        if self._dropped_counter is None:
            from repro.telemetry.metrics import get_registry

            self._dropped_counter = get_registry().counter(
                "spans_dropped_total"
            )
        self._dropped_counter.inc()

    def enable(self, record_events: bool = False) -> None:
        self.enabled = True
        if record_events:
            self.record_events = True

    def disable(self) -> None:
        self.enabled = False

    def add_probe(self, probe: SpanProbe) -> None:
        """Attach a probe called around every subsequent live span."""
        if probe not in self._probes:
            self._probes.append(probe)

    def remove_probe(self, probe: SpanProbe) -> None:
        if probe in self._probes:
            self._probes.remove(probe)

    def current_path(self) -> str:
        """The innermost open span path on this thread ("" when none).

        Multi-process launchers capture this at spawn time and hand it to
        workers as :attr:`~repro.telemetry.context.TraceContext.parent`,
        so child-process spans nest under the coordinator's span in the
        merged Chrome export.
        """
        stack = self._stack()
        return stack[-1] if stack else ""

    def span(self, name: str):
        """Context manager timing ``name`` (no-op singleton when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name)

    def record(
        self,
        path: str,
        duration: float,
        start: float | None = None,
        parent: str | None = None,
    ) -> None:
        """Record an externally-timed span at an explicit ``path``.

        The batch-episode engine runs N episodes under one
        ``episode_batch`` span; after the fact it attributes each
        episode's share of that wall-clock as a child span here, giving
        batch runs the same per-episode span coverage as the scalar path
        without N redundant timers in the lockstep loop. Mirrors
        ``_LiveSpan.__exit__``: aggregate stats, parent ``child_total``
        credit (so the parent's self time stays exact), and the raw
        event for the Chrome export when ``record_events`` is on. No-op
        while the tracer is disabled.
        """
        if not self.enabled:
            return
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = SpanStats()
        stats.add(duration)
        if parent:
            parent_stats = self._stats.get(parent)
            if parent_stats is None:
                parent_stats = self._stats[parent] = SpanStats()
            parent_stats.child_total += duration
        if self.record_events:
            if len(self.events) < MAX_RAW_EVENTS:
                self.events.append(
                    (
                        path,
                        start if start is not None else time.perf_counter(),
                        duration,
                    )
                )
            else:
                self._drop_event()

    def reset(self) -> None:
        self._stats.clear()
        self.events.clear()
        self.events_dropped = 0
        self._local = threading.local()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Aggregates per span path, sorted by total time (largest first)."""
        ordered = sorted(
            self._stats.items(), key=lambda item: -item[1].total
        )
        return {path: stats.summary() for path, stats in ordered}

    def chrome_trace(self, path=None) -> dict:
        """The recorded raw events as a Chrome ``trace_event`` document.

        Embeds a ``spans_truncated`` marker when :data:`MAX_RAW_EVENTS`
        capped the recording, so a flame graph that silently ends mid-run
        is distinguishable from a run that actually ended there.
        """
        from repro.telemetry.trace import to_chrome_trace

        return to_chrome_trace(
            self.events, path=path, dropped=self.events_dropped
        )


_TRACER = Tracer(
    enabled=os.environ.get("REPRO_SPANS", "").strip().lower()
    not in ("", "0", "false", "no", "off")
)


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def span(name: str):
    """``with span("..."):`` against the default tracer."""
    return _TRACER.span(name)


def timed(name: str):
    """Decorator timing every call under ``name`` (falls through when off)."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with _LiveSpan(_TRACER, name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
