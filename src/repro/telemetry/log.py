"""Structured logging built on the stdlib ``logging`` package.

Every module gets a child of the single ``repro`` root logger via
:func:`get_logger`; log calls name an *event* plus keyword fields, and the
installed formatter renders them either as ``key=value`` text (default) or
as one JSON object per line.

Environment switches (read once, at first use):

* ``REPRO_LOG_LEVEL`` — ``debug`` / ``info`` / ``warning`` / ``error``
  (default ``info``).
* ``REPRO_LOG_JSON`` — any truthy value switches to JSON-lines output.

Disabled levels cost one ``isEnabledFor`` check — field rendering is never
performed for suppressed records.
"""

from __future__ import annotations

import json
import logging
import os
import sys

ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False


def _truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() not in (
        "", "0", "false", "no", "off",
    )


def _render_value(value: object) -> str:
    """One field value as compact text (floats trimmed, strings quoted)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        return json.dumps(value) if (" " in value or "=" in value) else value
    return str(value)


def _json_safe(value: object) -> object:
    """Coerce numpy scalars and other odd types for ``json.dumps``."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class KeyValueFormatter(logging.Formatter):
    """``HH:MM:SS level logger event key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        fields: dict = getattr(record, "fields", None) or {}
        parts = [
            self.formatTime(record, "%H:%M:%S"),
            record.levelname.lower(),
            record.name,
            record.getMessage(),
        ]
        parts.extend(f"{key}={_render_value(val)}" for key, val in fields.items())
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, then fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(getattr(record, "fields", None) or {})
        return json.dumps(payload, default=_json_safe)


def configure(
    level: str | int | None = None,
    json_lines: bool | None = None,
    stream=None,
    force: bool = False,
) -> logging.Logger:
    """Install the repro handler/formatter once (idempotent).

    Explicit arguments override the ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSON``
    environment switches; ``force=True`` replaces an existing handler (used
    by tests to re-point the stream).
    """
    global _configured
    root = logging.getLogger(ROOT_NAME)
    if _configured and not force:
        return root
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "info")
    if isinstance(level, str):
        level = _LEVELS.get(level.strip().lower(), logging.INFO)
    if json_lines is None:
        json_lines = _truthy(os.environ.get("REPRO_LOG_JSON"))
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    _configured = True
    return root


class StructuredLogger:
    """A thin event+fields façade over one stdlib logger."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    def log(self, level: int, event: str, **fields) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """Structured child logger ``repro.<name>`` (configures on first use)."""
    configure()
    return StructuredLogger(logging.getLogger(f"{ROOT_NAME}.{name}"))
