"""Run provenance: which code / config / weights produced this telemetry?

Every scientific claim a trace supports is only as strong as the answer
to "what exactly ran?". This module collects that answer once per
process and stamps it into traces as a ``provenance`` event (see
:data:`repro.telemetry.trace.SCHEMAS`):

* **git SHA + dirty flag** — the commit the source tree was at, and
  whether uncommitted changes were present (``git`` queried once per
  process; ``"unknown"`` when the tree is not a git checkout).
* **config hash** — SHA-256 over the canonical JSON form of the
  :class:`~repro.sim.config.ScenarioConfig` (nested dataclasses
  included), so two runs with silently different physics never compare
  as equals.
* **weights checksums** — the SHA-256 content checksums embedded in
  ``.npz`` checkpoints by :func:`repro.utils.serialization.save_checkpoint`
  (read without loading the arrays; legacy checkpoints fall back to
  recomputing via :func:`~repro.utils.serialization.checksum_arrays`).
* **REPRO_* environment snapshot** — every knob that changes behaviour
  (trace sharding, eval batch width, histogram caps, ...).

Cross-process propagation mirrors :mod:`repro.telemetry.context`: the
coordinator serializes its :class:`Provenance` into the
``REPRO_PROVENANCE`` environment variable (:func:`child_env`), workers
inherit it for free, and :func:`collect` returns the inherited block
verbatim — so every shard of a sweep carries an *identical* stamp and
downstream grouping by (git SHA, config hash) reassembles the run.

Stamping is one event per :class:`~repro.telemetry.trace.TraceWriter`
(:func:`stamp_provenance` is idempotent per writer), emitted before the
first ``episode_start``, so ingestion can hoist it into the store's
``runs`` table without scanning the whole file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable carrying the serialized coordinator provenance.
ENV_PROVENANCE = "REPRO_PROVENANCE"

#: Version of the provenance block itself (bump on field changes).
PROVENANCE_SCHEMA_VERSION = 1

#: REPRO_* variables excluded from the env snapshot: the provenance
#: payload itself, and secrets-shaped values if any ever appear.
_ENV_EXCLUDE = (ENV_PROVENANCE,)


@dataclass(frozen=True)
class Provenance:
    """One immutable answer to "what produced this run?"."""

    git_sha: str = "unknown"
    git_dirty: bool = False
    #: SHA-256 hex over the canonical scenario-config JSON ("" = unknown).
    config_hash: str = ""
    #: Checkpoint name -> ``sha256:...`` content checksum.
    weights: dict = field(default_factory=dict)
    #: ``REPRO_*`` environment snapshot at collection time.
    env: dict = field(default_factory=dict)
    schema: int = PROVENANCE_SCHEMA_VERSION
    python: str = ""
    numpy: str = ""

    def to_json(self) -> dict:
        """Plain JSON-serializable dict (also the trace-event payload)."""
        return {
            "schema": int(self.schema),
            "git_sha": self.git_sha,
            "git_dirty": bool(self.git_dirty),
            "config_hash": self.config_hash,
            "weights": dict(self.weights),
            "env": dict(self.env),
            "python": self.python,
            "numpy": self.numpy,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Provenance":
        return cls(
            git_sha=str(payload.get("git_sha", "unknown")),
            git_dirty=bool(payload.get("git_dirty", False)),
            config_hash=str(payload.get("config_hash", "")),
            weights=dict(payload.get("weights", {})),
            env=dict(payload.get("env", {})),
            schema=int(payload.get("schema", PROVENANCE_SCHEMA_VERSION)),
            python=str(payload.get("python", "")),
            numpy=str(payload.get("numpy", "")),
        )

    def child_env(self) -> dict[str, str]:
        """Environment entries worker processes must inherit."""
        return {ENV_PROVENANCE: json.dumps(self.to_json(), sort_keys=True)}


_GIT_CACHE: tuple[str, bool] | None = None


def _repo_root() -> Path:
    # src/repro/telemetry/provenance.py -> repository root is parents[3].
    return Path(__file__).resolve().parents[3]


def git_revision(root: str | Path | None = None) -> tuple[str, bool]:
    """``(sha, dirty)`` of the source checkout, cached per process.

    ``("unknown", False)`` when ``git`` is unavailable or the tree is not
    a checkout — provenance degrades, it never raises.
    """
    global _GIT_CACHE
    if root is None and _GIT_CACHE is not None:
        return _GIT_CACHE
    cwd = Path(root) if root is not None else _repo_root()
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not sha:
            result = ("unknown", False)
        else:
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=cwd, capture_output=True, text=True, timeout=10,
            ).stdout
            result = (sha, bool(status.strip()))
    except (OSError, subprocess.SubprocessError):
        result = ("unknown", False)
    if root is None:
        _GIT_CACHE = result
    return result


def reset_git_cache() -> None:
    """Forget the cached git revision (tests)."""
    global _GIT_CACHE
    _GIT_CACHE = None


def config_hash(config: object | None) -> str:
    """SHA-256 hex of the canonical JSON form of a (nested) dataclass.

    ``None`` hashes the default :class:`~repro.sim.config.ScenarioConfig`
    — the same convention the episode runners use.
    """
    if config is None:
        from repro.sim.config import ScenarioConfig

        config = ScenarioConfig()
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = {"repr": repr(config)}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def checkpoint_checksum(path: str | Path) -> str | None:
    """The ``sha256:...`` content checksum of a checkpoint file.

    Format-v2 checkpoints (:func:`repro.utils.serialization.save_checkpoint`)
    embed the checksum in their metadata; it is read here without loading
    the weight arrays. Legacy (v1) checkpoints are loaded and checksummed
    with the same :func:`~repro.utils.serialization.checksum_arrays` the
    writer uses. ``None`` when the file is missing or unreadable.
    """
    import numpy as np

    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if "__meta__" in data.files:
                meta = json.loads(
                    bytes(data["__meta__"].tobytes()).decode("utf-8")
                )
                checksum = (
                    meta.get("__format__", {}).get("checksum")
                    if isinstance(meta, dict)
                    else None
                )
                if checksum:
                    return str(checksum)
            from repro.utils.serialization import checksum_arrays

            arrays = {
                name: data[name]
                for name in data.files
                if name != "__meta__"
            }
            return f"sha256:{checksum_arrays(arrays)}"
    except Exception:
        return None


def env_snapshot() -> dict[str, str]:
    """Every ``REPRO_*`` environment variable currently set."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_") and key not in _ENV_EXCLUDE
    }


def collect(
    config: object | None = None,
    weights: dict[str, str | Path | None] | None = None,
) -> Provenance:
    """Build (or inherit) the provenance block for this process.

    When ``REPRO_PROVENANCE`` is set — a coordinator exported it via
    :meth:`Provenance.child_env` — the inherited block is returned
    verbatim so every worker of a sweep stamps identically. Otherwise
    git / config / weights / env are collected fresh.

    ``weights`` maps checkpoint names to paths (or precomputed
    ``sha256:...`` strings); unreadable entries are dropped.
    """
    inherited = os.environ.get(ENV_PROVENANCE, "").strip()
    if inherited:
        try:
            return Provenance.from_json(json.loads(inherited))
        except (ValueError, TypeError):
            pass  # malformed env: fall through to fresh collection
    import numpy as np

    sha, dirty = git_revision()
    checksums: dict[str, str] = {}
    for name, target in (weights or {}).items():
        if target is None:
            continue
        value = str(target)
        if not value.startswith("sha256:"):
            found = checkpoint_checksum(value)
            if found is None:
                continue
            value = found
        checksums[str(name)] = value
    return Provenance(
        git_sha=sha,
        git_dirty=dirty,
        config_hash=config_hash(config),
        weights=checksums,
        env=env_snapshot(),
        python=platform.python_version(),
        numpy=str(np.__version__),
    )


def stamp_provenance(
    writer,
    config: object | None = None,
    weights: dict[str, str | Path | None] | None = None,
) -> dict | None:
    """Emit one ``provenance`` event on ``writer`` (idempotent per writer).

    Returns the emitted record, or ``None`` when this writer was already
    stamped. The episode runners call this before their first
    ``episode_start`` so a trace's provenance sits at the top of the file.
    """
    if getattr(writer, "_provenance_stamped", False):
        return None
    record = writer.emit("provenance", **collect(config, weights).to_json())
    writer._provenance_stamped = True
    return record


def scan_provenance(events) -> dict | None:
    """The first ``provenance`` event payload in a decoded event stream."""
    for event in events:
        if isinstance(event, dict) and event.get("event") == "provenance":
            return event
    return None
