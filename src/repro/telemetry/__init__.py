"""Observability layer: structured logging, metrics, spans, and traces.

The four submodules are intentionally dependency-free (stdlib + numpy) and
deterministic-safe — none of them ever touches an RNG or mutates simulation
state, so instrumented runs are bit-identical to uninstrumented ones.

* :mod:`repro.telemetry.log` — structured key=value / JSON-lines logging
  (``REPRO_LOG_LEVEL``, ``REPRO_LOG_JSON``).
* :mod:`repro.telemetry.metrics` — process-wide registry of counters,
  gauges and numpy-backed histograms with labels and JSON export.
* :mod:`repro.telemetry.spans` — nested wall-clock span tracer with a
  ``span("name")`` context manager and ``@timed`` decorator
  (``REPRO_SPANS`` enables at import time; near-free when disabled).
* :mod:`repro.telemetry.trace` — JSONL event writer for per-tick episode
  traces and per-step training traces, with a schema validator and a
  Chrome ``trace_event`` export (``REPRO_TRACE`` installs a default
  process-wide writer).
* :mod:`repro.telemetry.context` — cross-process trace context
  (run/worker identity, parent span path) inherited through
  ``REPRO_RUN_ID`` / ``REPRO_WORKER_ID``, plus per-worker trace shard
  files (``REPRO_TRACE_SHARD``) and their merge API.
"""

from repro.telemetry.context import (
    TraceContext,
    current_context,
    merge_shards,
    new_run_id,
    shard_path,
    shard_worker,
)
from repro.telemetry.log import configure, get_logger
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.spans import get_tracer, span, timed
from repro.telemetry.trace import (
    TraceWriter,
    default_writer,
    read_trace,
    to_chrome_trace,
    validate_event,
    validate_trace,
)

__all__ = [
    "TraceContext",
    "current_context",
    "merge_shards",
    "new_run_id",
    "shard_path",
    "shard_worker",
    "configure",
    "get_logger",
    "MetricsRegistry",
    "get_registry",
    "get_tracer",
    "span",
    "timed",
    "TraceWriter",
    "default_writer",
    "read_trace",
    "to_chrome_trace",
    "validate_event",
    "validate_trace",
]
