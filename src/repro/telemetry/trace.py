"""JSONL event traces: per-tick episode records and per-step training records.

A :class:`TraceWriter` appends one JSON object per event either to a file
or to an in-memory list (``path=None``). The event vocabulary is small and
schema-checked (:func:`validate_event`), so downstream tooling — and the
tier-1 smoke test — can rely on field names and types:

* ``episode_start``  — episode id, seed, victim/attacker names.
* ``tick``           — per-control-step record: tick index, sim time,
  injected delta, ego pose (x, y, yaw, speed), reward terms.
* ``episode_end``    — steps, duration, collision kind (or ``null``),
  returns, NPCs passed.
* ``train_step``     — per-environment-step training record: loop label,
  step index, reward, done flag (plus optional loss fields).
* ``span``           — one finished wall-clock span (Chrome-exportable).

Setting the ``REPRO_TRACE`` environment variable to a path installs a
process-wide default writer that :func:`default_writer` hands to the
episode runner and the training loops, so any entry point emits a trace
without code changes. :func:`to_chrome_trace` converts events (or the
span tracer's raw events) into the Chrome ``trace_event`` JSON format for
flame-graph viewing in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

_NUMBER = (int, float)

#: required / optional field -> accepted types, per event kind.
SCHEMAS: dict[str, dict[str, dict[str, tuple]]] = {
    "episode_start": {
        "required": {"episode": (int, str), "seed": (int,)},
        "optional": {
            "victim": (str,),
            "attacker": (str,),
            #: Attack budget epsilon the attacker operates under.
            "budget": _NUMBER,
            #: Scenario fingerprint: "default" for the paper's scenario,
            #: "custom" otherwise (custom scenarios are not replayable
            #: from the trace alone).
            "scenario": (str,),
        },
    },
    "tick": {
        "required": {
            "episode": (int, str),
            "tick": (int,),
            "t": _NUMBER,
            "delta": _NUMBER,
            "x": _NUMBER,
            "y": _NUMBER,
            "yaw": _NUMBER,
            "speed": _NUMBER,
        },
        "optional": {
            "reward_nominal": _NUMBER,
            "reward_adversarial": _NUMBER,
            #: Center-to-center distance to the nearest NPC, meters.
            "npc_gap": _NUMBER,
            #: Estimated time-to-collision against the nearest NPC from
            #: the gap closing rate, seconds (omitted when not closing).
            "ttc": _NUMBER,
            #: Lateral deviation from the reference path, normalized by
            #: the lane width.
            "lateral": _NUMBER,
        },
    },
    "episode_end": {
        "required": {
            "episode": (int, str),
            "steps": (int,),
            "duration": _NUMBER,
        },
        "optional": {
            "collision": (str, type(None)),
            #: Name of the actor the ego collided with ("barrier", "npc_3").
            "collision_with": (str, type(None)),
            "nominal_return": _NUMBER,
            "adversarial_return": _NUMBER,
            "passed_npcs": (int,),
        },
    },
    "train_step": {
        "required": {"loop": (str,), "step": (int,)},
        "optional": {
            "reward": _NUMBER,
            "done": (bool,),
            "episode": (int,),
            "episode_return": _NUMBER,
            "critic_loss": _NUMBER,
            "actor_loss": _NUMBER,
            "alpha": _NUMBER,
        },
    },
    "span": {
        "required": {"name": (str,), "start_s": _NUMBER, "duration_s": _NUMBER},
        "optional": {},
    },
    "update_health": {
        #: Per-gradient-update learner health record (emitted every
        #: ``health_every`` updates by the SAC training loops). The live
        #: watchdogs (:mod:`repro.obsv.alerts`) key off these fields.
        "required": {"loop": (str,), "step": (int,), "update": (int,)},
        "optional": {
            "critic_loss": _NUMBER,
            "actor_loss": _NUMBER,
            "alpha_loss": _NUMBER,
            "alpha": _NUMBER,
            #: Mean of the Q1 critic's minibatch predictions, and the max
            #: |Q| across both critics (divergence indicator).
            "q_mean": _NUMBER,
            "q_max": _NUMBER,
            #: Policy entropy estimate, ``-mean(log_prob)`` over the batch.
            "entropy": _NUMBER,
            "actor_grad_norm": _NUMBER,
            "critic_grad_norm": _NUMBER,
            "buffer_size": (int,),
            "buffer_capacity": (int,),
            #: Environment steps per wall-clock second since the previous
            #: health record.
            "steps_per_s": _NUMBER,
        },
    },
    "alert": {
        #: A watchdog rule firing (written by ``repro.obsv watch``).
        "required": {"rule": (str,), "severity": (str,), "message": (str,)},
        "optional": {
            "loop": (str,),
            "step": (int,),
            "update": (int,),
            #: The observed value that tripped the rule and its threshold.
            "value": _NUMBER,
            "threshold": _NUMBER,
        },
    },
    "profile": {
        #: One profiled span path (written by ``repro.obsv profile``):
        #: self-time attribution plus optional allocation / FLOP figures.
        #: Ingesting these into the telemetry store lets ``obsv query``
        #: chart per-span self-time series across runs.
        "required": {
            "name": (str,),
            "calls": (int,),
            "total_s": _NUMBER,
            "self_s": _NUMBER,
        },
        "optional": {
            "mean_us": _NUMBER,
            "self_mean_us": _NUMBER,
            #: Share of the session's total self time, 0..1.
            "self_frac": _NUMBER,
            #: Net bytes allocated / peak traced bytes inside the span
            #: (present only for ``REPRO_PROF_MEM`` opted-in spans).
            "net_alloc_kb": _NUMBER,
            "peak_alloc_kb": _NUMBER,
            #: Floating-point work attributed to the span and the achieved
            #: rate over its inclusive wall-clock.
            "flops": _NUMBER,
            "mflops_per_s": _NUMBER,
            #: FLOPs per byte moved (arithmetic intensity).
            "intensity": _NUMBER,
        },
    },
    "provenance": {
        #: What produced this run (written once per trace, before the
        #: first ``episode_start``): git revision, scenario-config hash,
        #: checkpoint checksums, and the ``REPRO_*`` env snapshot. See
        #: :mod:`repro.telemetry.provenance`.
        "required": {
            "schema": (int,),
            "git_sha": (str,),
            "git_dirty": (bool,),
            "config_hash": (str,),
        },
        "optional": {
            #: Checkpoint name -> ``sha256:...`` content checksum.
            "weights": (dict,),
            #: ``REPRO_*`` environment variables at collection time.
            "env": (dict,),
            "python": (str,),
            "numpy": (str,),
        },
    },
}


#: Cross-process context fields (:mod:`repro.telemetry.context`) accepted
#: — and type-checked — on every event kind.
CONTEXT_FIELDS: dict[str, tuple] = {
    #: Logical run/sweep id shared by all workers of one launch.
    "run": (str,),
    #: Worker index within the run.
    "worker": (int,),
    #: Pid of the emitting process.
    "pid": (int,),
    #: Coordinator span path this worker's spans nest under.
    "parent": (str,),
}
for _schema in SCHEMAS.values():
    _schema["optional"].update(CONTEXT_FIELDS)
del _schema


def validate_event(event: object) -> list[str]:
    """Schema errors for one decoded event (empty list = valid).

    Unknown extra fields are allowed (forward compatibility); unknown
    event kinds, missing required fields, and wrong field types are not.
    """
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    kind = event.get("event")
    if kind not in SCHEMAS:
        return [f"unknown event kind {kind!r}"]
    errors = []
    schema = SCHEMAS[kind]
    for field, types in schema["required"].items():
        if field not in event:
            errors.append(f"{kind}: missing required field {field!r}")
        elif not isinstance(event[field], types) or (
            # bool is an int subclass; reject it where a number is expected.
            isinstance(event[field], bool) and bool not in types
        ):
            errors.append(
                f"{kind}: field {field!r} has type "
                f"{type(event[field]).__name__}, expected one of "
                f"{tuple(t.__name__ for t in types)}"
            )
    for field, types in schema["optional"].items():
        if field in event and (
            not isinstance(event[field], types)
            or (isinstance(event[field], bool) and bool not in types)
        ):
            errors.append(
                f"{kind}: field {field!r} has type "
                f"{type(event[field]).__name__}, expected one of "
                f"{tuple(t.__name__ for t in types)}"
            )
    return errors


def validate_trace(source: str | Path | Iterable[dict]) -> list[str]:
    """Validate a JSONL file (path) or an iterable of decoded events."""
    if isinstance(source, (str, Path)):
        events: Iterable = read_trace(source)
    else:
        events = source
    errors: list[str] = []
    for index, event in enumerate(events):
        for error in validate_event(event):
            errors.append(f"event {index}: {error}")
    return errors


def _json_default(value):
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


class TraceWriter:
    """Appends JSONL events to a file, stream, or in-memory list."""

    def __init__(
        self,
        path: str | Path | IO[str] | None = None,
        validate: bool = False,
        context: "TraceContext | None | bool" = True,
    ) -> None:
        """``path=None`` keeps events in ``self.events`` (tests, tooling);
        ``validate=True`` schema-checks each event at emit time.

        ``context`` controls cross-process stamping: the default inherits
        the process-wide :func:`~repro.telemetry.context.current_context`
        (``None`` outside multi-process runs, so single-process traces
        are unchanged), an explicit :class:`TraceContext` overrides it,
        and ``context=None`` disables stamping.
        """
        from repro.telemetry.context import current_context

        self.validate = validate
        self.context = current_context() if context is True else (
            context or None
        )
        self.events: list[dict] = []
        self._own_handle = False
        self._handle: IO[str] | None = None
        if path is None:
            pass
        elif hasattr(path, "write"):
            self._handle = path  # caller-owned stream
        else:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            self._handle = target.open("a", encoding="utf-8")
            self._own_handle = True
        self.count = 0

    def emit(self, event: str, **fields) -> dict:
        """Write one event; returns the record that was emitted."""
        record = {"event": event, **fields}
        if self.context is not None:
            self.context.stamp(record)
        if self.validate:
            errors = validate_event(json.loads(self._dumps(record)))
            if errors:
                raise ValueError("; ".join(errors))
        if self._handle is not None:
            self._handle.write(self._dumps(record) + "\n")
        else:
            self.events.append(record)
        self.count += 1
        return record

    @staticmethod
    def _dumps(record: dict) -> str:
        return json.dumps(record, separators=(",", ":"), default=_json_default)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._own_handle:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_trace(path: str | Path, strict: bool = False) -> list[dict]:
    """Decode a JSONL trace file into a list of event dicts.

    Undecodable lines — the torn trailing line a crash mid-append leaves
    behind, or any other garbage — are skipped with a warning and counted
    in the ``trace_torn_lines_total`` metric, so post-mortem tooling can
    read the trace of the very crash it is investigating. ``strict=True``
    restores the raise-on-garbage behaviour.
    """
    from repro.telemetry.log import get_logger
    from repro.telemetry.metrics import get_registry

    events = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                if strict:
                    raise
                skipped += 1
                get_logger("telemetry.trace").warning(
                    "trace.torn_line", path=str(path), line=lineno,
                    error=str(error),
                )
    if skipped:
        get_registry().counter("trace_torn_lines_total").inc(skipped)
    return events


def _chrome_lane(event: dict) -> tuple[int, int]:
    """The (pid, tid) lane a context-stamped event renders into.

    Unstamped single-process events keep the historical ``(0, 0)`` lane.
    Stamped events use the real writer pid as the Chrome pid and the
    worker id as the tid, so a merged multi-worker trace fans out into
    one process track per worker instead of collapsing onto one lane.
    """
    worker = event.get("worker")
    pid = event.get("pid")
    if pid is None and worker is None:
        return 0, 0
    if pid is None:
        pid = int(worker)
    return int(pid), int(worker) if worker is not None else 0


def to_chrome_trace(
    events: Iterable, path: str | Path | None = None, dropped: int = 0
) -> dict:
    """Convert events into Chrome ``trace_event`` JSON (flame graphs).

    Accepts either decoded trace events (``span`` events are rendered as
    complete ``"ph": "X"`` slices, everything else as instant events) or
    the raw ``(path, start_s, duration_s)`` tuples collected by
    :class:`~repro.telemetry.spans.Tracer` with ``record_events`` on.

    Context-stamped events (:mod:`repro.telemetry.context`) land in one
    pid/tid lane per worker — real pid as the Chrome pid, worker id as
    the tid — with ``process_name`` / ``thread_name`` metadata events
    labelling each lane, and span names from workers spawned under an
    open coordinator span are prefixed with that parent path so the
    merged export reads as one call tree.

    ``dropped`` is the number of events lost to the recording cap
    (:data:`~repro.telemetry.spans.MAX_RAW_EVENTS`); when nonzero a
    ``spans_truncated`` instant marker is embedded after the last slice
    so viewers see the recording was cut, not the run.
    """
    slices = []
    lanes: dict[tuple[int, int], dict] = {}

    def note_lane(event: dict, pid: int, tid: int) -> None:
        if "worker" not in event and "pid" not in event:
            return
        lanes.setdefault(
            (pid, tid),
            {"worker": event.get("worker"), "run": event.get("run")},
        )

    for event in events:
        if isinstance(event, tuple):
            name, start, duration = event
            slices.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": round(start * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                }
            )
        elif event.get("event") == "span":
            pid, tid = _chrome_lane(event)
            note_lane(event, pid, tid)
            name = event["name"]
            parent = event.get("parent")
            if parent:
                name = f"{parent}/{name}"
            slices.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": round(event["start_s"] * 1e6, 3),
                    "dur": round(event["duration_s"] * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                }
            )
        else:
            pid, tid = _chrome_lane(event)
            note_lane(event, pid, tid)
            slices.append(
                {
                    "name": event.get("event", "event"),
                    "ph": "i",
                    "ts": round(float(event.get("t", 0.0)) * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "s": "g",
                    "args": event,
                }
            )
    metadata = []
    for (pid, tid), info in sorted(lanes.items()):
        worker = info.get("worker")
        label = (
            f"worker {worker} (pid {pid})"
            if worker is not None
            else f"pid {pid}"
        )
        if info.get("run"):
            label += f" — run {info['run']}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {
                    "name": f"worker {worker}" if worker is not None
                    else "main"
                },
            }
        )
    slices = metadata + slices
    if dropped:
        last_ts = max(
            (s["ts"] + s.get("dur", 0.0) for s in slices if "ts" in s),
            default=0.0,
        )
        slices.append(
            {
                "name": "spans_truncated",
                "ph": "i",
                "ts": last_ts,
                "pid": 0,
                "tid": 0,
                "s": "g",
                "args": {"dropped": int(dropped)},
            }
        )
    document = {"traceEvents": slices, "displayTimeUnit": "ms"}
    if path is not None:
        Path(path).write_text(
            json.dumps(document, default=_json_default), encoding="utf-8"
        )
    return document


_DEFAULT_WRITER: TraceWriter | None = None
_DEFAULT_CHECKED = False


def default_writer() -> TraceWriter | None:
    """The process-wide writer installed via ``REPRO_TRACE`` (else None).

    With ``REPRO_TRACE_SHARD`` set (truthy) and a worker id in the
    ambient context, the path is redirected to that worker's shard file
    (``trace.jsonl`` -> ``trace.w<worker>.jsonl``), so every process of
    a pool appends to its own file instead of contending on one.

    The environment variable is read once; call :func:`reset_default_writer`
    to re-read it (tests).
    """
    from repro.telemetry.context import (
        current_context,
        shard_enabled,
        shard_path,
    )

    global _DEFAULT_WRITER, _DEFAULT_CHECKED
    if not _DEFAULT_CHECKED:
        _DEFAULT_CHECKED = True
        target = os.environ.get("REPRO_TRACE")
        if target:
            context = current_context()
            if (
                shard_enabled()
                and context is not None
                and context.worker is not None
            ):
                target = shard_path(target, context.worker)
            _DEFAULT_WRITER = TraceWriter(target)
    return _DEFAULT_WRITER


def reset_default_writer() -> None:
    """Close and forget the env-installed writer (re-reads env next call)."""
    global _DEFAULT_WRITER, _DEFAULT_CHECKED
    if _DEFAULT_WRITER is not None:
        _DEFAULT_WRITER.close()
    _DEFAULT_WRITER = None
    _DEFAULT_CHECKED = False
