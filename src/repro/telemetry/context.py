"""Cross-process trace context: who produced this telemetry record?

A single-process run never had to ask — one trace file, one writer, one
pid. The moment episode evaluation fans out across a worker pool, three
questions need durable answers on every record: which *run* does this
event belong to (so N shard files aggregate into one logical sweep),
which *worker* wrote it (so lanes, tables and alerts can be labelled),
and what was the parent's open span when the worker was spawned (so the
child's spans nest under the sweep in the Chrome export).

:class:`TraceContext` carries exactly those fields plus the writer pid.
It propagates across process boundaries through environment variables —
``REPRO_RUN_ID``, ``REPRO_WORKER_ID``, ``REPRO_SPAN_PATH`` — which child
processes inherit for free, so a worker needs zero plumbing: its
:func:`current_context` reads the environment once and every
:class:`~repro.telemetry.trace.TraceWriter` stamps the context fields
(``run``, ``worker``, ``pid``, ``parent``) onto each emitted record.

Sharding
    ``REPRO_TRACE_SHARD`` (truthy) makes the env-installed default
    writer redirect ``REPRO_TRACE=trace.jsonl`` to a per-worker shard
    file ``trace.w<worker>.jsonl`` (:func:`shard_path`), so N workers
    append to N files and never contend on one. :func:`shard_worker`
    recovers the worker id from a shard filename and
    :func:`merge_shards` interleaves shard files back into one event
    stream ordered by worker — records missing a ``worker`` stamp are
    labelled from their filename on the way through.

Nothing here touches RNG or simulation state; contexts are identity
labels, not behaviour.
"""

from __future__ import annotations

import os
import re
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Environment variables the context survives process boundaries through.
ENV_RUN_ID = "REPRO_RUN_ID"
ENV_WORKER_ID = "REPRO_WORKER_ID"
ENV_SPAN_PATH = "REPRO_SPAN_PATH"
#: Truthy -> the default writer shards ``REPRO_TRACE`` per worker.
ENV_TRACE_SHARD = "REPRO_TRACE_SHARD"

_FALSY = ("", "0", "false", "no", "off")

#: ``trace.w<worker>.jsonl`` — the shard naming convention.
_SHARD_RE = re.compile(r"\.w(\d+)(\.[^.]+)?$")


@dataclass(frozen=True)
class TraceContext:
    """Identity stamped onto every trace record a process emits."""

    #: Logical run/sweep id shared by every worker of one launch.
    run: str
    #: Worker index within the run (None for the coordinator itself).
    worker: int | None = None
    #: Pid of the emitting process (stamped at emit time, informational).
    pid: int | None = None
    #: The coordinator's open span path when this worker was spawned
    #: (e.g. ``"sweep"``); the Chrome export nests worker spans under it.
    parent: str = ""

    def stamp(self, record: dict) -> dict:
        """Add the context fields to ``record`` (existing fields win)."""
        record.setdefault("run", self.run)
        if self.worker is not None:
            record.setdefault("worker", int(self.worker))
        record.setdefault("pid", self.pid if self.pid is not None
                          else os.getpid())
        if self.parent:
            record.setdefault("parent", self.parent)
        return record

    def child_env(self, worker: int) -> dict[str, str]:
        """Environment entries a child worker process must inherit."""
        env = {ENV_RUN_ID: self.run, ENV_WORKER_ID: str(int(worker))}
        if self.parent:
            env[ENV_SPAN_PATH] = self.parent
        return env


def new_run_id() -> str:
    """A fresh, collision-safe run id (identity only — never seeds RNG)."""
    return uuid.uuid4().hex[:12]


_CONTEXT: TraceContext | None = None
_CONTEXT_CHECKED = False


def current_context() -> TraceContext | None:
    """The process-wide context, from env on first call (else ``None``).

    Returns ``None`` when neither ``REPRO_RUN_ID`` nor ``REPRO_WORKER_ID``
    is set and no context was installed programmatically — single-process
    runs keep emitting exactly the records they always did.
    """
    global _CONTEXT, _CONTEXT_CHECKED
    if not _CONTEXT_CHECKED:
        _CONTEXT_CHECKED = True
        run = os.environ.get(ENV_RUN_ID, "").strip()
        raw_worker = os.environ.get(ENV_WORKER_ID, "").strip()
        if run or raw_worker:
            worker: int | None = None
            if raw_worker:
                try:
                    worker = int(raw_worker)
                except ValueError:
                    worker = None
            _CONTEXT = TraceContext(
                run=run or new_run_id(),
                worker=worker,
                pid=os.getpid(),
                parent=os.environ.get(ENV_SPAN_PATH, "").strip(),
            )
    return _CONTEXT


def set_context(context: TraceContext | None) -> None:
    """Install (or clear) the process-wide context programmatically."""
    global _CONTEXT, _CONTEXT_CHECKED
    _CONTEXT = context
    _CONTEXT_CHECKED = True


def reset_context() -> None:
    """Forget the cached context; the next call re-reads the environment."""
    global _CONTEXT, _CONTEXT_CHECKED
    _CONTEXT = None
    _CONTEXT_CHECKED = False


def shard_enabled() -> bool:
    """Is per-worker trace sharding requested (``REPRO_TRACE_SHARD``)?"""
    return os.environ.get(ENV_TRACE_SHARD, "").strip().lower() not in _FALSY


def shard_path(base: str | Path, worker: int) -> Path:
    """Per-worker shard filename: ``trace.jsonl`` -> ``trace.w3.jsonl``."""
    base = Path(base)
    return base.with_name(f"{base.stem}.w{int(worker)}{base.suffix}")


def shard_worker(path: str | Path) -> int | None:
    """The worker id encoded in a shard filename (``None`` if not one)."""
    match = _SHARD_RE.search(Path(path).name)
    return int(match.group(1)) if match else None


def find_shards(
    directory: str | Path, pattern: str = "*.jsonl"
) -> list[Path]:
    """Shard files under ``directory``, ordered by worker id then name."""
    paths = [
        path
        for path in Path(directory).glob(pattern)
        if shard_worker(path) is not None
    ]
    return sorted(paths, key=lambda p: (shard_worker(p), p.name))


def merge_shards(
    source: str | Path | Sequence[str | Path],
    pattern: str = "*.jsonl",
) -> list[dict]:
    """Merge shard files into one event stream (per-shard order kept).

    ``source`` is a directory (shards discovered via :func:`find_shards`)
    or an explicit sequence of paths. Events missing a ``worker`` stamp
    inherit the id from their shard's filename, so even traces written
    before context propagation was wired up merge with correct labels.
    """
    from repro.telemetry.trace import read_trace

    if isinstance(source, (str, Path)) and Path(source).is_dir():
        paths: Iterable[Path] = find_shards(source, pattern)
    elif isinstance(source, (str, Path)):
        paths = [Path(source)]
    else:
        paths = [Path(p) for p in source]
    merged: list[dict] = []
    for path in paths:
        worker = shard_worker(path)
        for event in read_trace(path):
            if worker is not None and "worker" not in event:
                event["worker"] = worker
            merged.append(event)
    return merged
