"""Process-wide metrics: counters, gauges, and numpy-backed histograms.

A :class:`MetricsRegistry` holds metric families keyed by name; each family
holds children keyed by their label set, so e.g. collision counts can be
split by :class:`~repro.sim.collision.CollisionKind`:

    get_registry().counter("collisions_total", kind="SIDE").inc()

``snapshot()`` flattens everything into a plain JSON-serializable dict
(keys rendered as ``name{k=v,...}``) and ``to_json`` exports it.  All
operations are O(1) dict lookups plus scalar arithmetic — cheap enough to
leave permanently enabled — and never touch an RNG.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

_PERCENTILES = (50.0, 90.0, 99.0)


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A scalar that can move both ways (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Exact-value histogram in a growable numpy buffer.

    Stores every observation (float64, doubling growth) so the snapshot
    can report exact percentiles; intended for per-episode / per-update
    cadences, not per-physics-substep firehoses.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, initial_capacity: int = 256) -> None:
        self._data = np.empty(max(int(initial_capacity), 1), dtype=np.float64)
        self._size = 0

    def observe(self, value: float) -> None:
        if self._size == len(self._data):
            grown = np.empty(len(self._data) * 2, dtype=np.float64)
            grown[: self._size] = self._data
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    @property
    def count(self) -> int:
        return self._size

    @property
    def values(self) -> np.ndarray:
        """A copy of the recorded observations, in arrival order."""
        return self._data[: self._size].copy()

    def summary(self) -> dict[str, float]:
        if self._size == 0:
            return {"count": 0}
        data = self._data[: self._size]
        stats = {
            "count": int(self._size),
            "sum": float(data.sum()),
            "mean": float(data.mean()),
            "min": float(data.min()),
            "max": float(data.max()),
        }
        for pct, val in zip(_PERCENTILES, np.percentile(data, _PERCENTILES)):
            stats[f"p{pct:g}"] = float(val)
        return stats


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[tuple, Counter]] = {}
        self._gauges: dict[str, dict[tuple, Gauge]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    def _child(self, table: dict, name: str, labels: dict, factory):
        family = table.get(name)
        if family is None:
            family = table[name] = {}
        key = _label_key(labels)
        child = family.get(key)
        if child is None:
            child = family[key] = factory()
        return child

    def counter(self, name: str, **labels) -> Counter:
        return self._child(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child(self._gauges, name, labels, Gauge)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._child(self._histograms, name, labels, Histogram)

    def reset(self) -> None:
        """Drop every metric (tests and fresh report runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict[str, dict]:
        """Everything as a flat, JSON-serializable dict."""
        counters = {
            _render_key(name, key): child.value
            for name, family in sorted(self._counters.items())
            for key, child in sorted(family.items())
        }
        gauges = {
            _render_key(name, key): child.value
            for name, family in sorted(self._gauges.items())
            for key, child in sorted(family.items())
        }
        histograms = {
            _render_key(name, key): child.summary()
            for name, family in sorted(self._histograms.items())
            for key, child in sorted(family.items())
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """The snapshot as JSON text; also written to ``path`` if given."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
