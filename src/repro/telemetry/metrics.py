"""Process-wide metrics: counters, gauges, and numpy-backed histograms.

A :class:`MetricsRegistry` holds metric families keyed by name; each family
holds children keyed by their label set, so e.g. collision counts can be
split by :class:`~repro.sim.collision.CollisionKind`:

    get_registry().counter("collisions_total", kind="SIDE").inc()

``snapshot()`` flattens everything into a plain JSON-serializable dict
(keys rendered as ``name{k=v,...}``) and ``to_json`` exports it.  All
operations are O(1) dict lookups plus scalar arithmetic — cheap enough to
leave permanently enabled — and never touch an RNG.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

_PERCENTILES = (50.0, 90.0, 99.0)

#: Environment cap on stored histogram samples (0 / unset = unlimited).
_HIST_CAP_ENV = "REPRO_HIST_MAX_SAMPLES"


def _env_hist_cap() -> int:
    raw = os.environ.get(_HIST_CAP_ENV, "")
    try:
        return max(int(raw), 0) if raw.strip() else 0
    except ValueError:
        return 0


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A scalar that can move both ways (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Exact-value histogram in a growable numpy buffer, optionally capped.

    By default every observation is stored (float64, doubling growth) so
    the snapshot can report exact percentiles; intended for per-episode /
    per-update cadences, not per-physics-substep firehoses. Setting
    ``max_samples`` (or the ``REPRO_HIST_MAX_SAMPLES`` environment
    variable) bounds memory: beyond the cap the buffer switches to
    reservoir sampling (Algorithm R) driven by a private fixed-seed LCG,
    so the sample — and therefore every snapshot — stays deterministic
    for a given observation sequence and never touches the global RNG.
    """

    __slots__ = ("_data", "_size", "_seen", "_cap", "_lcg", "_sum", "_min",
                 "_max")

    #: splitmix64 golden-gamma seed for the private reservoir LCG.
    _LCG_SEED = 0x9E3779B97F4A7C15

    def __init__(
        self, initial_capacity: int = 256, max_samples: int | None = None
    ) -> None:
        self._cap = (
            _env_hist_cap() if max_samples is None else max(int(max_samples), 0)
        )
        capacity = max(int(initial_capacity), 1)
        if self._cap:
            capacity = min(capacity, self._cap)
        self._data = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._seen = 0
        self._lcg = self._LCG_SEED
        # Exact running moments, so a capped histogram still reports true
        # count/sum/min/max (only percentiles come from the reservoir).
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self._seen += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._cap and self._size >= self._cap:
            # Deterministic Algorithm R: keep each of the `seen` values
            # with probability cap/seen.
            self._lcg = (
                self._lcg * 6364136223846793005 + 1442695040888963407
            ) & 0xFFFFFFFFFFFFFFFF
            slot = self._lcg % self._seen
            if slot < self._cap:
                self._data[slot] = value
            return
        if self._size == len(self._data):
            grown_len = len(self._data) * 2
            if self._cap:
                grown_len = min(grown_len, self._cap)
            grown = np.empty(grown_len, dtype=np.float64)
            grown[: self._size] = self._data
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    @property
    def count(self) -> int:
        """Total observations seen (not the stored-sample size)."""
        return self._seen

    @property
    def sample_size(self) -> int:
        """Observations currently stored (== ``count`` unless capped)."""
        return self._size

    @property
    def values(self) -> np.ndarray:
        """A copy of the stored observations, in buffer order."""
        return self._data[: self._size].copy()

    def summary(self) -> dict[str, float]:
        if self._seen == 0:
            return {"count": 0}
        data = self._data[: self._size]
        if self._size == self._seen:
            # Uncapped (or under the cap): exact stats from the buffer,
            # bit-identical to the historical unbounded behaviour.
            stats = {
                "count": int(self._size),
                "sum": float(data.sum()),
                "mean": float(data.mean()),
                "min": float(data.min()),
                "max": float(data.max()),
            }
        else:
            stats = {
                "count": int(self._seen),
                "sum": self._sum,
                "mean": self._sum / self._seen,
                "min": self._min,
                "max": self._max,
                #: Reservoir size backing the (estimated) percentiles.
                "samples": int(self._size),
            }
        for pct, val in zip(_PERCENTILES, np.percentile(data, _PERCENTILES)):
            stats[f"p{pct:g}"] = float(val)
        return stats


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[tuple, Counter]] = {}
        self._gauges: dict[str, dict[tuple, Gauge]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    def _child(self, table: dict, name: str, labels: dict, factory):
        family = table.get(name)
        if family is None:
            family = table[name] = {}
        key = _label_key(labels)
        child = family.get(key)
        if child is None:
            child = family[key] = factory()
        return child

    def counter(self, name: str, **labels) -> Counter:
        return self._child(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child(self._gauges, name, labels, Gauge)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._child(self._histograms, name, labels, Histogram)

    def reset(self) -> None:
        """Drop every metric (tests and fresh report runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict[str, dict]:
        """Everything as a flat, JSON-serializable dict."""
        counters = {
            _render_key(name, key): child.value
            for name, family in sorted(self._counters.items())
            for key, child in sorted(family.items())
        }
        gauges = {
            _render_key(name, key): child.value
            for name, family in sorted(self._gauges.items())
            for key, child in sorted(family.items())
        }
        histograms = {
            _render_key(name, key): child.summary()
            for name, family in sorted(self._histograms.items())
            for key, child in sorted(family.items())
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """The snapshot as JSON text; also written to ``path`` if given."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
