"""repro — reproduction of "Susceptibility of Autonomous Driving Agents to
Learning-Based Action-Space Attacks" (DSN 2023).

Subpackages:
    sim: freeway driving simulator (CARLA substitute).
    sensors: semantic-segmentation camera and IMU models.
    agents: modular PID pipeline and end-to-end DRL driving agents.
    rl: numpy DRL substrate (autodiff, SAC, behaviour cloning, PNN).
    core: the paper's contribution — learning-based action-space attacks.
    defense: adversarial fine-tuning and PNN enhancement with a switcher.
    eval: episode runner and metrics.
    experiments: drivers regenerating every figure in the evaluation.
"""

__version__ = "1.0.0"
