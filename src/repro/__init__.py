"""repro — reproduction of "Susceptibility of Autonomous Driving Agents to
Learning-Based Action-Space Attacks" (DSN 2023).

Subpackages:
    sim: freeway driving simulator (CARLA substitute).
    sensors: semantic-segmentation camera and IMU models.
    agents: modular PID pipeline and end-to-end DRL driving agents.
    rl: numpy DRL substrate (autodiff, SAC, behaviour cloning, PNN).
    core: the paper's contribution — learning-based action-space attacks.
    defense: adversarial fine-tuning and PNN enhancement with a switcher.
    eval: episode runner and metrics.
    experiments: drivers regenerating every figure in the evaluation.
"""

import os as _os

__version__ = "1.0.0"

# REPRO_PROF opts the whole process into the profiling layer
# (repro.obsv.prof): span self-time, optional stack sampling and
# allocation tracking, FLOP accounting, with the PROFILE_* report bundle
# written at interpreter exit. One env check when unset — nothing is
# imported and nothing runs.
if _os.environ.get("REPRO_PROF", "").strip().lower() not in (
    "", "0", "false", "no", "off"
):
    from repro.obsv.prof import install_from_env as _install_prof

    _install_prof()

