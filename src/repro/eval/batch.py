"""Lockstep batch-episode runner: N seeds per pass through the tick loop.

The vectorized twin of :func:`repro.eval.episodes.run_episode`. One
:class:`~repro.sim.batch.BatchWorld` advances every episode together;
victims and attackers run through their batched actors
(:func:`repro.agents.batch.as_batch_actor`,
:func:`repro.core.attackers.as_batch_attacker`); rewards, deviations and
attack bookkeeping accumulate as masked array expressions. Finished
episodes freeze in place until the slowest seed ends, so per-episode
results match scalar runs of the same seeds (see :mod:`repro.sim.batch`
for the determinism contract).

Trace records carry the same fields and schema as the scalar runner —
only the interleaving differs (ticks from concurrent episodes alternate,
and all ``episode_end`` records follow the loop). Diff by episode id,
e.g. via ``repro.obsv.replay.diff_ticks``.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.agents.batch import as_batch_actor
from repro.agents.e2e.reward import DrivingReward, DrivingRewardConfig
from repro.agents.modular.behavior import BatchBehaviorPlanner
from repro.core.attackers import as_batch_attacker
from repro.core.injection import ACTIVE_THRESHOLD
from repro.core.rewards import AdversarialReward, AdversarialRewardConfig
from repro.eval.episodes import EpisodeResult, VictimFactory
from repro.sim.batch import KIND_NONE, make_batch_world
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.telemetry.metrics import get_registry
from repro.telemetry.provenance import stamp_provenance
from repro.telemetry.spans import get_tracer, span
from repro.telemetry.trace import TraceWriter, default_writer


def run_episode_batch(
    victim_factory: VictimFactory,
    attacker=None,
    seeds: Sequence[int] = (0,),
    scenario: ScenarioConfig | None = None,
    reward_config: DrivingRewardConfig | None = None,
    adversarial_config: AdversarialRewardConfig | None = None,
    trace: TraceWriter | None = None,
    episode_ids: Sequence[int | str] | None = None,
) -> list[EpisodeResult]:
    """Run one episode per seed in lockstep and measure each.

    Args:
        victim_factory: builds the (scalar) victim; its batched twin
            drives every episode. Raises :class:`TypeError` for agents
            with no batched path.
        attacker: a scalar attacker template (``None`` = nominal); its
            batched twin injects per episode.
        seeds: spawn-jitter seeds, one episode per seed — the same seeds
            passed to :func:`~repro.eval.episodes.run_episode` give the
            same spawns.
        trace: optional JSONL event writer (defaults to the process-wide
            writer); records match the scalar runner's schema.
        episode_ids: ids stamped on trace events (default: the seeds).

    Returns:
        One :class:`~repro.eval.episodes.EpisodeResult` per seed, in
        seed order.
    """
    scenario = scenario or ScenarioConfig()
    seeds = list(seeds)
    if not seeds:
        return []
    batch = make_batch_world(scenario, seeds=seeds)
    n = batch.n

    template = make_world(
        scenario, rng=np.random.default_rng(seeds[0]), road=batch.road
    )
    victim = victim_factory(template)
    actor = as_batch_actor(victim, batch)
    actor.reset(batch)
    battacker = as_batch_attacker(attacker, batch)

    planner = BatchBehaviorPlanner(batch.road)
    planner.reset(batch)
    nominal_reward = DrivingReward(reward_config)
    adversarial_reward = AdversarialReward(adversarial_config)

    trace = trace if trace is not None else default_writer()
    ids = list(episode_ids) if episode_ids is not None else list(seeds)
    if len(ids) != n:
        raise ValueError(f"need one episode id per seed: got {len(ids)}")
    if trace is not None:
        stamp_provenance(trace, scenario)
        for i in range(n):
            trace.emit(
                "episode_start",
                episode=ids[i],
                seed=seeds[i],
                victim=str(getattr(victim, "name", "agent")),
                attacker=str(getattr(battacker, "name", "none")),
                budget=float(getattr(battacker, "budget", 0.0)),
                scenario=(
                    "default" if scenario == ScenarioConfig() else "custom"
                ),
            )

    nominal_total = np.zeros(n)
    adversarial_total = np.zeros(n)
    deviation_sq_sum = np.zeros(n)
    deviation_max = np.zeros(n)
    deviation_ticks = np.zeros(n, dtype=np.int64)
    first_attack_time = np.full(n, np.nan)
    strike_level = max(
        ACTIVE_THRESHOLD, 0.5 * float(getattr(battacker, "budget", 0.0))
    )
    active_ticks = np.zeros(n, dtype=np.int64)
    activations = np.zeros(n, dtype=np.int64)
    previously_active = np.zeros(n, dtype=bool)
    previous_gap = np.full(n, np.nan)
    lane_width = batch.road.config.lane_width

    tracer = get_tracer()
    batch_path = ""
    batch_start = time.perf_counter()
    with span("episode_batch"):
        if tracer.enabled:
            batch_path = tracer.current_path()
        while not batch.all_done:
            live = ~batch.done
            plan = planner.update(batch)
            steer, thrust = actor.act_batch(batch)
            delta = battacker.deltas(batch)
            result = batch.tick(steer, thrust, steer_delta=delta)

            striking = live & (np.abs(delta) >= strike_level)
            stamp = striking & np.isnan(first_attack_time)
            first_attack_time[stamp] = result.time[stamp] - scenario.dt

            collided = result.collision_kind != KIND_NONE
            nominal_step = nominal_reward.step_batch(batch, plan, collided)
            adversarial_step = adversarial_reward.step_batch(
                batch, delta, result.collision_kind
            )
            nominal_total[live] += nominal_step[live]
            adversarial_total[live] += adversarial_step[live]

            ego_s, ego_d, _ = batch.ego_frenet()
            deviation = (
                np.abs(ego_d - plan.reference_offset(ego_s)) / lane_width
            )
            deviation_sq_sum[live] += deviation[live] ** 2
            deviation_max[live] = np.maximum(
                deviation_max[live], deviation[live]
            )
            deviation_ticks[live] += 1

            is_active = live & (np.abs(delta) >= ACTIVE_THRESHOLD)
            active_ticks[is_active] += 1
            activations[is_active & ~previously_active] += 1
            previously_active[live] = is_active[live]

            if trace is not None:
                gap = batch.nearest_npc_gap() if batch.m else None
                for i in np.flatnonzero(live):
                    fields = dict(
                        episode=ids[i],
                        tick=int(result.step[i]),
                        t=float(result.time[i]),
                        delta=float(delta[i]),
                        x=float(batch.x[i, 0]),
                        y=float(batch.y[i, 0]),
                        yaw=float(batch.yaw[i, 0]),
                        speed=float(batch.speed[i, 0]),
                        reward_nominal=float(nominal_step[i]),
                        reward_adversarial=float(adversarial_step[i]),
                        lateral=float(deviation[i]),
                    )
                    if gap is not None:
                        fields["npc_gap"] = float(gap[i])
                        if not np.isnan(previous_gap[i]):
                            closing = (previous_gap[i] - gap[i]) / scenario.dt
                            if closing > 1e-6:
                                fields["ttc"] = float(gap[i] / closing)
                        previous_gap[i] = gap[i]
                    trace.emit("tick", **fields)

    if batch_path:
        # Scalar-path parity: credit each episode its share of the batch
        # wall-clock as a child span, weighted by the steps it ran. The
        # lockstep loop advances all rows together, so per-step cost is
        # the fairest per-episode attribution available without timing
        # each row separately (which the vectorized loop cannot do).
        batch_total = time.perf_counter() - batch_start
        steps = np.maximum(batch.step_count.astype(float), 1.0)
        shares = steps / steps.sum()
        offset = batch_start
        for i in range(n):
            duration = float(batch_total * shares[i])
            # No parent child_total credit: the tick spans inside the
            # batch already credited it, and double-counting would zero
            # out episode_batch's self time in profiles.
            tracer.record(
                f"{batch_path}/episode", duration, start=offset
            )
            offset += duration

    registry = get_registry()
    results: list[EpisodeResult] = []
    for i in range(n):
        registry.counter("episodes_total").inc()
        if activations[i]:
            registry.counter("attack_activations_total").inc(
                int(activations[i])
            )
        if active_ticks[i]:
            registry.counter("attack_active_ticks_total").inc(
                int(active_ticks[i])
            )
        registry.histogram("episode_steps").observe(int(batch.step_count[i]))
        registry.histogram("episode_nominal_return").observe(
            float(nominal_total[i])
        )
        registry.histogram("episode_adversarial_return").observe(
            float(adversarial_total[i])
        )

        collision = batch.collision(i)
        time_to_collision = None
        if collision is not None and not np.isnan(first_attack_time[i]):
            time_to_collision = collision.time - float(first_attack_time[i])

        if trace is not None:
            trace.emit(
                "episode_end",
                episode=ids[i],
                steps=int(batch.step_count[i]),
                duration=float(batch.time[i]),
                collision=(
                    collision.kind.name if collision is not None else None
                ),
                collision_with=(
                    collision.other if collision is not None else None
                ),
                nominal_return=float(nominal_total[i]),
                adversarial_return=float(adversarial_total[i]),
                passed_npcs=int(batch.passed_npcs[i]),
            )

        mean_effort = getattr(battacker, "mean_effort", 0.0)
        if isinstance(mean_effort, np.ndarray):
            mean_effort = float(mean_effort[i])
        results.append(
            EpisodeResult(
                steps=int(batch.step_count[i]),
                duration=float(batch.time[i]),
                collision=collision,
                passed_npcs=int(batch.passed_npcs[i]),
                nominal_return=float(nominal_total[i]),
                adversarial_return=float(adversarial_total[i]),
                mean_effort=float(mean_effort),
                deviation_rmse=float(
                    np.sqrt(deviation_sq_sum[i] / max(deviation_ticks[i], 1))
                ),
                deviation_max=float(deviation_max[i]),
                time_to_collision=time_to_collision,
            )
        )
    if trace is not None:
        trace.flush()
    return results
