"""The canonical episode runner used by training, experiments and benches.

Runs one victim agent (modular or end-to-end) under an optional attacker
and records every metric the paper reports: nominal shaped driving reward,
cumulative adversarial reward, collision outcome, NPCs passed, trajectory
deviation from the privileged reference path, attack effort, and the time
from attack initiation to collision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.agents.base import DrivingAgent
from repro.agents.e2e.reward import DrivingReward, DrivingRewardConfig
from repro.agents.modular.behavior import BehaviorPlanner
from repro.core.attackers import NullAttacker
from repro.core.injection import ACTIVE_THRESHOLD
from repro.core.rewards import AdversarialReward, AdversarialRewardConfig
from repro.sim.collision import Collision, CollisionKind
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import make_world
from repro.sim.world import World
from repro.telemetry.metrics import get_registry
from repro.telemetry.provenance import stamp_provenance
from repro.telemetry.spans import span
from repro.telemetry.trace import TraceWriter, default_writer

VictimFactory = Callable[[World], DrivingAgent]


@dataclass(frozen=True)
class EpisodeResult:
    """Everything measured in one evaluation episode."""

    steps: int
    duration: float
    collision: Collision | None
    passed_npcs: int
    nominal_return: float
    adversarial_return: float
    #: Mean |delta| over active attack steps (Fig. 5 / 7 x-axis).
    mean_effort: float
    #: RMSE of lateral deviation from the reference path, normalized by
    #: the lane width (Fig. 5 / 7 y-axis).
    deviation_rmse: float
    #: Largest instantaneous normalized deviation.
    deviation_max: float
    #: Seconds from the first injected perturbation to the collision
    #: (None when no attack was injected or no collision happened).
    time_to_collision: float | None

    @property
    def side_collision(self) -> bool:
        return (
            self.collision is not None
            and self.collision.kind is CollisionKind.SIDE
        )

    @property
    def attack_successful(self) -> bool:
        """The attacker's definition of success: a side collision."""
        return self.side_collision


def run_episode(
    victim_factory: VictimFactory,
    attacker=None,
    seed: int = 0,
    scenario: ScenarioConfig | None = None,
    reward_config: DrivingRewardConfig | None = None,
    adversarial_config: AdversarialRewardConfig | None = None,
    trace: TraceWriter | None = None,
    episode_id: int | str | None = None,
) -> EpisodeResult:
    """Run one full episode and measure it.

    Args:
        victim_factory: builds the victim for the fresh world.
        attacker: a ``SteerInjector`` (``None`` = nominal driving).
        seed: controls spawn jitter; equal seeds give equal worlds.
        trace: optional JSONL event writer receiving ``episode_start`` /
            per-``tick`` / ``episode_end`` records; defaults to the
            process-wide writer installed via ``REPRO_TRACE`` (usually
            none). Telemetry is read-only: it never changes the episode.
        episode_id: id stamped on trace events (defaults to ``seed``).
    """
    scenario = scenario or ScenarioConfig()
    world = make_world(scenario, rng=np.random.default_rng(seed))
    victim = victim_factory(world)
    victim.reset(world)
    attacker = attacker if attacker is not None else NullAttacker()
    attacker.reset(world)

    planner = BehaviorPlanner(world.road)
    planner.reset(world)
    nominal_reward = DrivingReward(reward_config)
    adversarial_reward = AdversarialReward(adversarial_config)

    trace = trace if trace is not None else default_writer()
    episode_id = episode_id if episode_id is not None else seed
    if trace is not None:
        stamp_provenance(trace, scenario)
        trace.emit(
            "episode_start",
            episode=episode_id,
            seed=seed,
            victim=str(getattr(victim, "name", "agent")),
            attacker=str(getattr(attacker, "name", "none")),
            budget=float(getattr(attacker, "budget", 0.0)),
            scenario=(
                "default" if scenario == ScenarioConfig() else "custom"
            ),
        )

    nominal_total = 0.0
    adversarial_total = 0.0
    deviations: list[float] = []
    first_attack_time: float | None = None
    result = None
    # The attack *strike* begins when the injection reaches half the
    # attacker's budget; smaller values are lurk-phase dithering.
    strike_level = max(
        ACTIVE_THRESHOLD, 0.5 * float(getattr(attacker, "budget", 0.0))
    )
    active_ticks = 0
    activations = 0
    previously_active = False
    previous_gap: float | None = None

    with span("episode"):
        while not world.done:
            plan = planner.update(world)
            control = victim.act(world)
            delta = float(attacker.delta(world, control))
            result = world.tick(control, steer_delta=delta)
            if abs(delta) >= strike_level and first_attack_time is None:
                first_attack_time = result.time - scenario.dt

            nominal_step = nominal_reward.step(
                world, plan, result.collision
            ).total
            adversarial_step = adversarial_reward.step(
                world, delta, result.collision
            ).total
            nominal_total += nominal_step
            adversarial_total += adversarial_step
            ego_s, ego_d, _ = world.road.to_frenet(world.ego.state.position)
            deviation = abs(ego_d - plan.reference_offset(ego_s))
            deviations.append(deviation / world.road.config.lane_width)

            is_active = abs(delta) >= ACTIVE_THRESHOLD
            if is_active:
                active_ticks += 1
                if not previously_active:
                    activations += 1
            previously_active = is_active

            if trace is not None:
                state = world.ego.state
                fields = dict(
                    episode=episode_id,
                    tick=result.step,
                    t=result.time,
                    delta=delta,
                    x=state.x,
                    y=state.y,
                    yaw=state.yaw,
                    speed=state.speed,
                    reward_nominal=nominal_step,
                    reward_adversarial=adversarial_step,
                    lateral=deviations[-1],
                )
                nearest = world.nearest_npc()
                if nearest is not None:
                    gap = float(
                        np.linalg.norm(
                            nearest.vehicle.state.position
                            - world.ego.state.position
                        )
                    )
                    fields["npc_gap"] = gap
                    if previous_gap is not None:
                        closing = (previous_gap - gap) / scenario.dt
                        if closing > 1e-6:
                            fields["ttc"] = gap / closing
                    previous_gap = gap
                trace.emit("tick", **fields)

    time_to_collision = None
    if result.collision is not None and first_attack_time is not None:
        time_to_collision = result.collision.time - first_attack_time

    registry = get_registry()
    registry.counter("episodes_total").inc()
    if activations:
        registry.counter("attack_activations_total").inc(activations)
    if active_ticks:
        registry.counter("attack_active_ticks_total").inc(active_ticks)
    registry.histogram("episode_steps").observe(result.step)
    registry.histogram("episode_nominal_return").observe(nominal_total)
    registry.histogram("episode_adversarial_return").observe(adversarial_total)

    if trace is not None:
        trace.emit(
            "episode_end",
            episode=episode_id,
            steps=result.step,
            duration=result.time,
            collision=(
                result.collision.kind.name
                if result.collision is not None
                else None
            ),
            collision_with=(
                result.collision.other
                if result.collision is not None
                else None
            ),
            nominal_return=nominal_total,
            adversarial_return=adversarial_total,
            passed_npcs=world.passed_npcs,
        )
        trace.flush()

    return EpisodeResult(
        steps=result.step,
        duration=result.time,
        collision=result.collision,
        passed_npcs=world.passed_npcs,
        nominal_return=nominal_total,
        adversarial_return=adversarial_total,
        mean_effort=float(getattr(attacker, "mean_effort", 0.0)),
        deviation_rmse=float(np.sqrt(np.mean(np.square(deviations)))),
        deviation_max=float(np.max(deviations)),
        time_to_collision=time_to_collision,
    )


def run_episodes(
    victim_factory: VictimFactory,
    attacker_factory: Callable[[], object] | None = None,
    n_episodes: int = 10,
    seed: int = 0,
    batch_size: int | None = None,
    **kwargs,
) -> list[EpisodeResult]:
    """Run ``n_episodes`` with consecutive seeds.

    ``attacker_factory`` is called once per episode so attackers with
    internal state (sensors, channels) start fresh each time.

    ``batch_size`` > 1 routes chunks of seeds through the lockstep
    :func:`~repro.eval.batch.run_episode_batch` engine (``None`` reads
    ``REPRO_EVAL_BATCH``, default 1 = the scalar reference path). Agents
    or attackers without a batched twin fall back to the scalar loop.
    """
    if batch_size is None:
        batch_size = int(os.environ.get("REPRO_EVAL_BATCH", "1"))
    seeds = [seed + episode for episode in range(n_episodes)]
    if batch_size > 1:
        from repro.eval.batch import run_episode_batch

        try:
            results = []
            for start in range(0, n_episodes, batch_size):
                chunk = seeds[start : start + batch_size]
                attacker = (
                    attacker_factory()
                    if attacker_factory is not None
                    else None
                )
                results.extend(
                    run_episode_batch(
                        victim_factory,
                        attacker=attacker,
                        seeds=chunk,
                        **kwargs,
                    )
                )
            return results
        except TypeError:
            # No batched twin for this victim/attacker: scalar fallback.
            pass
    results = []
    for episode_seed in seeds:
        attacker = attacker_factory() if attacker_factory is not None else None
        results.append(
            run_episode(
                victim_factory,
                attacker=attacker,
                seed=episode_seed,
                **kwargs,
            )
        )
    return results
