"""Statistical comparisons between agents and attack configurations.

The paper reports distributions (box plots) without significance testing;
this module adds the missing rigor: nonparametric two-sample tests and
bootstrap confidence intervals used by ``EXPERIMENTS.md`` and the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.eval.episodes import EpisodeResult


@dataclass(frozen=True)
class Comparison:
    """Outcome of a two-sample comparison."""

    statistic: float
    p_value: float
    mean_a: float
    mean_b: float

    @property
    def significant(self) -> bool:
        """Conventional 5% level."""
        return self.p_value < 0.05


def mann_whitney(
    a: "list[float] | np.ndarray", b: "list[float] | np.ndarray"
) -> Comparison:
    """Two-sided Mann-Whitney U test (no normality assumption)."""
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if np.all(a == a[0]) and np.all(b == b[0]) and a[0] == b[0]:
        # Identical constant samples: no evidence of difference.
        return Comparison(0.0, 1.0, float(a.mean()), float(b.mean()))
    statistic, p_value = stats.mannwhitneyu(a, b, alternative="two-sided")
    return Comparison(
        float(statistic), float(p_value), float(a.mean()), float(b.mean())
    )


def compare_nominal_rewards(
    a: list[EpisodeResult], b: list[EpisodeResult]
) -> Comparison:
    """Mann-Whitney test on nominal driving rewards of two agents."""
    return mann_whitney(
        [r.nominal_return for r in a], [r.nominal_return for r in b]
    )


def bootstrap_mean_ci(
    values: "list[float] | np.ndarray",
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Bootstrap percentile CI of the mean: ``(mean, low, high)``."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("empty sample")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(
        values, size=(n_resamples, values.size), replace=True
    ).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resamples, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def success_rate_ci(
    results: list[EpisodeResult], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Wilson score interval for the attack success rate."""
    n = len(results)
    if n == 0:
        raise ValueError("no episodes")
    successes = sum(r.attack_successful for r in results)
    rate = successes / n
    z = float(stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    denom = 1.0 + z * z / n
    center = (rate + z * z / (2.0 * n)) / denom
    margin = (
        z
        * np.sqrt(rate * (1.0 - rate) / n + z * z / (4.0 * n * n))
        / denom
    )
    return rate, max(center - margin, 0.0), min(center + margin, 1.0)
