"""Aggregate metrics over evaluation episodes.

These are the quantities the paper's evaluation section reports: attack
success rate, reward distributions (box-plot statistics), windowed success
rates over attack effort (Fig. 8), and time-to-collision summaries compared
against the human-driver reaction-time floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.episodes import EpisodeResult

#: Minimum reaction time of the best human driver in complex real-world
#: conditions, seconds (paper Section V-B, citing [28]).
HUMAN_REACTION_TIME = 1.25


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary (plus mean) matching the paper's box plots."""

    mean: float
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values) -> "BoxStats":
        """Summarize a sample; an empty sample yields all-NaN stats
        (experiment cells can legitimately be empty, e.g. an effort
        window no episode landed in)."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, nan)
        return cls(
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            q1=float(np.percentile(arr, 25)),
            q3=float(np.percentile(arr, 75)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )


def success_rate(results: list[EpisodeResult]) -> float:
    """Fraction of episodes ending in the desired side collision.

    An empty result list reports 0.0 (no episodes, no successes) — the
    same convention :func:`effort_windows` uses for empty windows.
    """
    if not results:
        return 0.0
    return sum(r.attack_successful for r in results) / len(results)


def collision_rate(results: list[EpisodeResult]) -> float:
    """Fraction of episodes ending in any collision (0.0 when empty)."""
    if not results:
        return 0.0
    return sum(r.collision is not None for r in results) / len(results)


def nominal_reward_stats(results: list[EpisodeResult]) -> BoxStats:
    return BoxStats.from_values(r.nominal_return for r in results)


def adversarial_reward_stats(results: list[EpisodeResult]) -> BoxStats:
    return BoxStats.from_values(r.adversarial_return for r in results)


def mean_deviation_rmse(results: list[EpisodeResult]) -> float:
    """Average trajectory tracking error (Fig. 7 headline numbers).

    NaN when there are no episodes — unlike a rate, there is no neutral
    value for an average error, and NaN propagates visibly.
    """
    if not results:
        return float("nan")
    return float(np.mean([r.deviation_rmse for r in results]))


def reward_reduction(
    nominal: list[EpisodeResult], attacked: list[EpisodeResult]
) -> float:
    """Relative drop of the mean nominal driving reward under attack
    (the paper's 'approximately 84%' headline for the camera attack)."""
    base = float(np.mean([r.nominal_return for r in nominal]))
    under = float(np.mean([r.nominal_return for r in attacked]))
    if base == 0.0:
        raise ValueError("nominal baseline reward is zero")
    return (base - under) / abs(base)


@dataclass(frozen=True)
class TimeToCollisionStats:
    """Summary of attack-initiation-to-collision times (Section V-B)."""

    mean: float
    minimum: float
    count: int

    @property
    def beats_human_reaction(self) -> bool:
        """Whether the mean collision time undercuts the best human
        driver's 1.25 s reaction-time floor."""
        return self.mean < HUMAN_REACTION_TIME


def time_to_collision_stats(
    results: list[EpisodeResult],
) -> TimeToCollisionStats | None:
    """Statistics over successful attacks only; None when there are none."""
    times = [
        r.time_to_collision
        for r in results
        if r.attack_successful and r.time_to_collision is not None
    ]
    if not times:
        return None
    return TimeToCollisionStats(
        mean=float(np.mean(times)), minimum=float(np.min(times)), count=len(times)
    )


def effort_windows(
    results: list[EpisodeResult],
    window: float = 0.2,
    upper: float = 0.8,
) -> list[tuple[str, float, int]]:
    """Attack success rate per attack-effort window (Fig. 8).

    Windows the episodes along the mean-effort axis with the given width
    from 0 up to ``upper``; the final window is open-ended (``0.8+``).

    Returns:
        A list of ``(label, success_rate, n_episodes)`` per window; windows
        with no episodes report a rate of 0.0.
    """
    edges = np.arange(0.0, upper + 1e-9, window)
    rows: list[tuple[str, float, int]] = []
    for low in edges:
        high = low + window
        is_last = low >= upper - 1e-9
        if is_last:
            bucket = [r for r in results if r.mean_effort >= low]
            label = f"{low:.1f}+"
        else:
            bucket = [r for r in results if low <= r.mean_effort < high]
            label = f"[{low:.1f},{high:.1f})"
        rate = (
            sum(r.attack_successful for r in bucket) / len(bucket)
            if bucket
            else 0.0
        )
        rows.append((label, rate, len(bucket)))
    return rows
