"""Evaluation: the canonical episode runner and the paper's metrics."""

from repro.eval.batch import run_episode_batch
from repro.eval.episodes import EpisodeResult, run_episode, run_episodes
from repro.eval.recorder import Trajectory, record_episode
from repro.eval.statistics import (
    Comparison,
    bootstrap_mean_ci,
    compare_nominal_rewards,
    mann_whitney,
    success_rate_ci,
)
from repro.eval.metrics import (
    HUMAN_REACTION_TIME,
    BoxStats,
    TimeToCollisionStats,
    adversarial_reward_stats,
    collision_rate,
    effort_windows,
    mean_deviation_rmse,
    nominal_reward_stats,
    reward_reduction,
    success_rate,
    time_to_collision_stats,
)

__all__ = [
    "BoxStats",
    "Comparison",
    "EpisodeResult",
    "Trajectory",
    "bootstrap_mean_ci",
    "compare_nominal_rewards",
    "mann_whitney",
    "record_episode",
    "success_rate_ci",
    "HUMAN_REACTION_TIME",
    "TimeToCollisionStats",
    "adversarial_reward_stats",
    "collision_rate",
    "effort_windows",
    "mean_deviation_rmse",
    "nominal_reward_stats",
    "reward_reduction",
    "run_episode",
    "run_episode_batch",
    "run_episodes",
    "success_rate",
    "time_to_collision_stats",
]
