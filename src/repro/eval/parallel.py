"""Seed-sharded parallel episode evaluation over a process pool.

This is the end-to-end demo (and the reference implementation) of the
multi-process telemetry fabric: a sweep of seeds is partitioned across N
worker processes, each worker installs its own
:class:`~repro.telemetry.context.TraceContext` from the same environment
variables a shell launcher would export (``REPRO_RUN_ID`` /
``REPRO_WORKER_ID`` / ``REPRO_SPAN_PATH`` plus ``REPRO_TRACE`` with
``REPRO_TRACE_SHARD=1``), and appends its episodes to a private shard
file ``trace.w<worker>.jsonl`` — N writers, zero contention. Each shard
also records the worker's span tree as ``span`` events, so the merged
Chrome export (:func:`repro.telemetry.trace.to_chrome_trace` over
:func:`repro.telemetry.context.merge_shards`) shows one labelled lane
per worker with the worker's spans nested under the coordinator's
``sweep`` span.

Episodes are seed-deterministic, so the sweep's per-episode results are
bit-identical whether the same seeds run serially (``workers<=1``, which
runs in-process without touching global state) or across any number of
processes — asserted by ``tests/telemetry/test_determinism.py``.

Run the demo end to end::

    python -m repro.eval.parallel --episodes 8 --workers 4 --out runs/sweep
    python -m repro.obsv ingest runs/sweep
    python -m repro.obsv serve runs/sweep
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.eval.episodes import EpisodeResult, run_episode
from repro.telemetry.context import (
    ENV_RUN_ID,
    ENV_SPAN_PATH,
    ENV_TRACE_SHARD,
    ENV_WORKER_ID,
    TraceContext,
    new_run_id,
    reset_context,
    shard_path,
)
from repro.telemetry.log import get_logger
from repro.telemetry.provenance import ENV_PROVENANCE, collect
from repro.telemetry.spans import get_tracer, span
from repro.telemetry.trace import (
    TraceWriter,
    default_writer,
    reset_default_writer,
)

log = get_logger("eval.parallel")

#: Victim agents constructible by name inside a worker process.
VICTIMS = ("modular", "e2e")
#: Attackers constructible by name inside a worker process.
ATTACKERS = ("none", "oracle")


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs — plain data, cheap to pickle."""

    worker: int
    seeds: tuple[int, ...]
    victim: str = "modular"
    attacker: str = "oracle"
    budget: float = 1.0
    #: Episodes advanced in lockstep per batch-engine call; 1 = scalar
    #: reference loop (see :func:`repro.eval.batch.run_episode_batch`).
    batch: int = 1
    #: Directory for ``trace.w<worker>.jsonl`` (None = no trace files).
    out_dir: str | None = None
    #: Logical run id shared by all shards of the sweep.
    run: str = ""
    #: The coordinator's open span path at dispatch time.
    parent: str = ""
    #: Coordinator provenance as JSON ("" = collect in the worker);
    #: installed as ``REPRO_PROVENANCE`` so every shard stamps the same
    #: git SHA / config hash / weights checksums.
    provenance: str = ""


@dataclass
class ShardOutcome:
    """One worker's report back to the coordinator."""

    worker: int
    pid: int
    trace_path: str | None
    #: ``(seed, result)`` pairs in the order the shard ran them.
    results: list[tuple[int, EpisodeResult]] = field(default_factory=list)


@dataclass
class SweepResult:
    """A completed sweep, reassembled in seed order."""

    run: str
    seeds: list[int]
    #: One result per seed, ordered to match ``seeds``.
    results: list[EpisodeResult]
    shards: list[ShardOutcome]
    out_dir: Path | None

    @property
    def trace_paths(self) -> list[Path]:
        return [
            Path(s.trace_path) for s in self.shards if s.trace_path
        ]


def _victim_factory(name: str):
    if name == "modular":
        from repro.agents.modular import ModularAgent

        return lambda world: ModularAgent(world.road)
    if name == "e2e":
        from repro.experiments import registry

        return registry.e2e_victim
    raise ValueError(f"victim must be one of {VICTIMS}, got {name!r}")


def _make_attacker(name: str, budget: float):
    if name == "none":
        return None
    if name == "oracle":
        from repro.core.attackers import OracleAttacker

        return OracleAttacker(budget=budget)
    raise ValueError(f"attacker must be one of {ATTACKERS}, got {name!r}")


def _execute(
    spec: ShardSpec, writer: TraceWriter | None
) -> list[tuple[int, EpisodeResult]]:
    """Run one shard's episodes (shared by the worker and serial paths).

    ``spec.batch > 1`` stacks process-level sharding with the lockstep
    batch engine: each worker advances chunks of its seeds through
    :func:`~repro.eval.batch.run_episode_batch` instead of looping
    scalar episodes. The two axes multiply on multi-core hosts; measured
    on the modular/oracle demo sweep (768 episodes, 4 workers, batch 32,
    single-core CI container where process scaling is pinned at ~1x),
    batching alone took the sweep from ~51 ms/episode serial-scalar to
    ~3.7 ms/episode — ~14x combined episodes/sec.
    """
    factory = _victim_factory(spec.victim)
    if spec.batch > 1:
        from repro.eval.batch import run_episode_batch

        results = []
        for start in range(0, len(spec.seeds), spec.batch):
            chunk = list(spec.seeds[start : start + spec.batch])
            attacker = _make_attacker(spec.attacker, spec.budget)
            chunk_results = run_episode_batch(
                factory,
                attacker=attacker,
                seeds=chunk,
                trace=writer,
                episode_ids=chunk,
            )
            results.extend(zip(chunk, chunk_results))
        return results
    results = []
    for seed in spec.seeds:
        attacker = _make_attacker(spec.attacker, spec.budget)
        results.append(
            (
                seed,
                run_episode(
                    factory,
                    attacker=attacker,
                    seed=seed,
                    trace=writer,
                    episode_id=seed,
                ),
            )
        )
    return results


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Process-pool entry point: one worker, one shard.

    Installs the context through the environment — exactly the variables
    a shell launcher would export — then lets the fabric do the rest:
    :func:`~repro.telemetry.context.current_context` picks the identity
    up, and the env-installed default writer shards the trace path.
    """
    os.environ[ENV_RUN_ID] = spec.run
    os.environ[ENV_WORKER_ID] = str(spec.worker)
    if spec.parent:
        os.environ[ENV_SPAN_PATH] = spec.parent
    else:
        os.environ.pop(ENV_SPAN_PATH, None)
    if spec.provenance:
        os.environ[ENV_PROVENANCE] = spec.provenance
    else:
        os.environ.pop(ENV_PROVENANCE, None)
    if spec.out_dir is not None:
        os.environ["REPRO_TRACE"] = str(Path(spec.out_dir) / "trace.jsonl")
        os.environ[ENV_TRACE_SHARD] = "1"
    reset_context()
    reset_default_writer()
    tracer = get_tracer()
    tracer.reset()
    tracer.enable(record_events=True)
    writer = default_writer()
    try:
        results = _execute(spec, writer)
        if writer is not None:
            # Persist this worker's span tree into its shard so the
            # merged Chrome export gets real per-worker lanes.
            for name, start, duration in tracer.events:
                writer.emit(
                    "span", name=name, start_s=start, duration_s=duration
                )
            writer.flush()
    finally:
        reset_default_writer()
    trace_path = (
        str(shard_path(Path(spec.out_dir) / "trace.jsonl", spec.worker))
        if spec.out_dir is not None
        else None
    )
    return ShardOutcome(spec.worker, os.getpid(), trace_path, results)


def _run_shard_serial(spec: ShardSpec) -> ShardOutcome:
    """The in-process reference path: same episodes, no global state."""
    writer = None
    if spec.out_dir is not None:
        context = TraceContext(
            run=spec.run, worker=spec.worker, pid=os.getpid(),
            parent=spec.parent,
        )
        writer = TraceWriter(
            shard_path(Path(spec.out_dir) / "trace.jsonl", spec.worker),
            context=context,
        )
        if spec.provenance:
            # Stamp the coordinator's block directly (the serial path
            # must not mutate process environment); the episode runners
            # then see the writer as already stamped.
            writer.emit("provenance", **json.loads(spec.provenance))
            writer._provenance_stamped = True
    try:
        results = _execute(spec, writer)
    finally:
        if writer is not None:
            writer.close()
    return ShardOutcome(
        spec.worker,
        os.getpid(),
        writer and str(
            shard_path(Path(spec.out_dir) / "trace.jsonl", spec.worker)
        ),
        results,
    )


def run_sweep(
    n_episodes: int = 8,
    workers: int = 2,
    victim: str = "modular",
    attacker: str = "oracle",
    budget: float = 1.0,
    seed: int = 0,
    seeds: list[int] | None = None,
    batch: int = 1,
    out_dir: str | Path | None = None,
    run_id: str | None = None,
) -> SweepResult:
    """Evaluate a seed sweep, sharded across ``workers`` processes.

    Seeds are dealt round-robin to workers (worker ``k`` gets
    ``seeds[k::workers]``), each worker writes its own trace shard under
    ``out_dir``, and results come back reassembled in seed order.
    ``workers <= 1`` runs the same shards serially in-process — the
    bit-identical reference the determinism suite compares against.
    ``batch > 1`` additionally runs each worker's seeds through the
    lockstep batch engine, multiplying the two speedups.
    """
    seeds = list(seeds) if seeds is not None else list(
        range(seed, seed + n_episodes)
    )
    run_id = run_id or new_run_id()
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    workers = max(1, min(int(workers), len(seeds))) if seeds else 1

    # Collect provenance once in the coordinator — including checkpoint
    # checksums for weight-backed victims — so every shard stamps an
    # identical block and the store can group the whole sweep as one run.
    weights = None
    if victim == "e2e":
        from repro.experiments import registry

        weights = registry.artifact_checksums((registry.E2E_DRIVER,))
    provenance_json = json.dumps(
        collect(weights=weights).to_json(), sort_keys=True
    )

    shards: list[ShardOutcome] = []
    with span("sweep"):
        parent = get_tracer().current_path()
        specs = [
            ShardSpec(
                worker=k,
                seeds=tuple(seeds[k::workers]),
                victim=victim,
                attacker=attacker,
                budget=budget,
                batch=max(1, int(batch)),
                out_dir=None if out_dir is None else str(out_dir),
                run=run_id,
                parent=parent,
                provenance=provenance_json,
            )
            for k in range(workers)
            if seeds[k::workers]
        ]
        if workers <= 1:
            shards = [_run_shard_serial(spec) for spec in specs]
        else:
            with ProcessPoolExecutor(max_workers=len(specs)) as pool:
                shards = list(pool.map(run_shard, specs))
    by_seed = {
        seed: result
        for shard in shards
        for seed, result in shard.results
    }
    log.info(
        "parallel.sweep_done", run=run_id, episodes=len(seeds),
        workers=len(shards),
        out_dir=None if out_dir is None else str(out_dir),
    )
    return SweepResult(
        run=run_id,
        seeds=seeds,
        results=[by_seed[s] for s in seeds],
        shards=sorted(shards, key=lambda s: s.worker),
        out_dir=out_dir,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.parallel",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--episodes", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--victim", choices=VICTIMS, default="modular")
    parser.add_argument("--attacker", choices=ATTACKERS, default="oracle")
    parser.add_argument("--budget", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch", type=int, default=1,
        help="episodes per lockstep batch within each worker (1 = scalar)",
    )
    parser.add_argument(
        "--out", default=None,
        help="run directory for per-worker trace shards + Chrome export",
    )
    parser.add_argument("--run-id", default=None)
    args = parser.parse_args(argv)

    # Record the coordinator's spans so workers inherit "sweep" as their
    # parent path and the merged Chrome export nests their lanes under it.
    get_tracer().enable(record_events=True)
    sweep = run_sweep(
        n_episodes=args.episodes,
        workers=args.workers,
        victim=args.victim,
        attacker=args.attacker,
        budget=args.budget,
        seed=args.seed,
        batch=args.batch,
        out_dir=args.out,
        run_id=args.run_id,
    )
    collided = sum(r.collision is not None for r in sweep.results)
    side = sum(r.side_collision for r in sweep.results)
    sys.stdout.write(
        f"run {sweep.run}: {len(sweep.results)} episodes across"
        f" {len(sweep.shards)} worker(s) — {collided} collisions"
        f" ({side} side)\n"
    )
    for shard in sweep.shards:
        sys.stdout.write(
            f"  worker {shard.worker} (pid {shard.pid}):"
            f" {len(shard.results)} episode(s)"
            + (f" -> {shard.trace_path}" if shard.trace_path else "")
            + "\n"
        )
    if sweep.out_dir is not None:
        from repro.telemetry.context import merge_shards
        from repro.telemetry.trace import to_chrome_trace

        chrome = sweep.out_dir / "trace.chrome.json"
        to_chrome_trace(merge_shards(sweep.out_dir), path=chrome)
        sys.stdout.write(f"chrome trace -> {chrome}\n")
        sys.stdout.write(
            f"next: python -m repro.obsv ingest {sweep.out_dir}"
            f" && python -m repro.obsv serve {sweep.out_dir}\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
