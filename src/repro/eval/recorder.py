"""Episode trajectory recording and lightweight rendering.

Records per-tick vehicle states during an episode into a
:class:`Trajectory`, exports them as CSV, and renders a top-down ASCII
strip chart (the textual analogue of Fig. 1(b)'s collision snapshot) —
useful for debugging attacks without a display server.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field

import numpy as np

from repro.sim.world import World
from repro.telemetry.trace import TraceWriter, default_writer


@dataclass(frozen=True)
class ActorSample:
    """One actor's pose at one tick."""

    name: str
    x: float
    y: float
    yaw: float
    speed: float


@dataclass
class Trajectory:
    """Time series of every actor's pose plus per-tick attack deltas."""

    times: list[float] = field(default_factory=list)
    samples: list[list[ActorSample]] = field(default_factory=list)
    deltas: list[float] = field(default_factory=list)

    def record(self, world: World, delta: float = 0.0) -> None:
        """Append the current world state."""
        frame = [
            ActorSample(
                "ego",
                world.ego.state.x,
                world.ego.state.y,
                world.ego.state.yaw,
                world.ego.state.speed,
            )
        ]
        for npc in world.npcs:
            state = npc.vehicle.state
            frame.append(
                ActorSample(
                    npc.vehicle.name, state.x, state.y, state.yaw, state.speed
                )
            )
        self.times.append(world.time)
        self.samples.append(frame)
        self.deltas.append(float(delta))

    def __len__(self) -> int:
        return len(self.times)

    def positions(self) -> dict[str, np.ndarray]:
        """Per-actor position arrays, each shape ``(ticks, 2)``.

        Computed in one pass over the recording and cached until another
        tick is recorded (the renderer below used to rescan every frame
        per actor per frame — O(actors x frames^2)).
        """
        cached = getattr(self, "_positions_cache", None)
        if cached is not None and cached[0] == len(self.times):
            return cached[1]
        rows: dict[str, list[tuple[float, float]]] = {}
        for frame in self.samples:
            for sample in frame:
                rows.setdefault(sample.name, []).append((sample.x, sample.y))
        positions = {
            name: np.asarray(values) for name, values in rows.items()
        }
        self._positions_cache = (len(self.times), positions)
        return positions

    def actor(self, name: str) -> np.ndarray:
        """Positions of ``name`` over time, shape ``(ticks, 2)``."""
        positions = self.positions()
        if name not in positions:
            raise KeyError(name)
        return positions[name]

    def to_csv(self) -> str:
        """The full recording as CSV text."""
        buffer = io.StringIO()
        buffer.write("time,actor,x,y,yaw,speed,delta\n")
        for time, frame, delta in zip(self.times, self.samples, self.deltas):
            for sample in frame:
                buffer.write(
                    f"{time:.2f},{sample.name},{sample.x:.3f},"
                    f"{sample.y:.3f},{sample.yaw:.4f},{sample.speed:.3f},"
                    f"{delta:.3f}\n"
                )
        return buffer.getvalue()

    def to_jsonl(self) -> str:
        """The recording as JSONL: one object per tick with nested actors."""
        lines = []
        for time, frame, delta in zip(self.times, self.samples, self.deltas):
            lines.append(
                json.dumps(
                    {
                        "t": time,
                        "delta": delta,
                        "actors": [
                            {
                                "name": s.name,
                                "x": s.x,
                                "y": s.y,
                                "yaw": s.yaw,
                                "speed": s.speed,
                            }
                            for s in frame
                        ],
                    },
                    separators=(",", ":"),
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "Trajectory":
        """Rebuild a trajectory from :meth:`to_jsonl` output."""
        trajectory = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            trajectory.times.append(float(row["t"]))
            trajectory.deltas.append(float(row["delta"]))
            trajectory.samples.append(
                [
                    ActorSample(
                        a["name"], a["x"], a["y"], a["yaw"], a["speed"]
                    )
                    for a in row["actors"]
                ]
            )
        return trajectory

    def render_ascii(
        self, road_half_width: float = 8.0, width: int = 100
    ) -> str:
        """Top-down strip chart: 'E' ego path, digits NPC paths.

        The x axis is compressed to ``width`` columns across the recorded
        longitudinal extent; the y axis spans the road width.
        """
        if not self.samples:
            return "(empty trajectory)"
        positions = self.positions()
        ego = positions["ego"]
        x_min = min(float(positions[s.name][:, 0].min())
                    for s in self.samples[0])
        x_max = max(float(positions[s.name][:, 0].max())
                    for s in self.samples[0])
        span = max(x_max - x_min, 1e-6)
        rows = 17
        grid = [[" "] * width for _ in range(rows)]

        def put(x: float, y: float, char: str) -> None:
            col = int((x - x_min) / span * (width - 1))
            row = int(
                (road_half_width - y) / (2.0 * road_half_width) * (rows - 1)
            )
            if 0 <= row < rows and 0 <= col < width:
                grid[row][col] = char

        for index, frame in enumerate(self.samples[0][1:], start=1):
            for x, y in positions[frame.name]:
                put(x, y, str(index % 10))
        for x, y in ego:
            put(x, y, "E")
        border = "+" + "-" * width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        return f"{border}\n{body}\n{border}"


def record_episode(
    victim_factory,
    attacker=None,
    seed: int = 0,
    scenario=None,
    trace: TraceWriter | None = None,
    episode_id: int | str | None = None,
) -> tuple[Trajectory, World]:
    """Run one episode while recording every tick.

    Returns the trajectory and the final world (for collision inspection).
    ``trace`` (or the ``REPRO_TRACE`` default writer) additionally receives
    ``episode_start`` / ``tick`` / ``episode_end`` events; tracing is
    read-only and never changes the recorded trajectory.
    """
    from repro.agents.modular.behavior import BehaviorPlanner
    from repro.core.attackers import NullAttacker
    from repro.sim.config import ScenarioConfig
    from repro.sim.scenario import make_world

    scenario = scenario or ScenarioConfig()
    world = make_world(scenario, rng=np.random.default_rng(seed))
    victim = victim_factory(world)
    victim.reset(world)
    attacker = attacker if attacker is not None else NullAttacker()
    attacker.reset(world)
    # Pure observer mirroring run_episode's lateral-deviation reference,
    # so the traced `lateral` field means the same thing in both producers.
    planner = BehaviorPlanner(world.road)
    planner.reset(world)

    trace = trace if trace is not None else default_writer()
    episode_id = episode_id if episode_id is not None else seed
    if trace is not None:
        from repro.telemetry.provenance import stamp_provenance

        stamp_provenance(trace, scenario)
        trace.emit(
            "episode_start",
            episode=episode_id,
            seed=seed,
            victim=str(getattr(victim, "name", "agent")),
            attacker=str(getattr(attacker, "name", "none")),
            budget=float(getattr(attacker, "budget", 0.0)),
            scenario=(
                "default" if scenario == ScenarioConfig() else "custom"
            ),
        )

    trajectory = Trajectory()
    trajectory.record(world, 0.0)
    result = None
    while not world.done:
        plan = planner.update(world)
        control = victim.act(world)
        delta = float(attacker.delta(world, control))
        result = world.tick(control, steer_delta=delta)
        trajectory.record(world, delta)
        if trace is not None:
            state = world.ego.state
            fields = dict(
                episode=episode_id,
                tick=result.step,
                t=result.time,
                delta=delta,
                x=state.x,
                y=state.y,
                yaw=state.yaw,
                speed=state.speed,
            )
            nearest = world.nearest_npc()
            if nearest is not None:
                fields["npc_gap"] = float(
                    np.linalg.norm(
                        nearest.vehicle.state.position
                        - world.ego.state.position
                    )
                )
            ego_s, ego_d, _ = world.road.to_frenet(world.ego.state.position)
            deviation = abs(ego_d - plan.reference_offset(ego_s))
            fields["lateral"] = deviation / world.road.config.lane_width
            trace.emit("tick", **fields)
    if trace is not None and result is not None:
        trace.emit(
            "episode_end",
            episode=episode_id,
            steps=result.step,
            duration=result.time,
            collision=(
                result.collision.kind.name
                if result.collision is not None
                else None
            ),
            collision_with=(
                result.collision.other
                if result.collision is not None
                else None
            ),
            passed_npcs=world.passed_npcs,
        )
        trace.flush()
    return trajectory, world
