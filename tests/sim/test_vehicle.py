"""Tests for the kinematic bicycle model and Eq. (1) actuation smoothing."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import VehicleConfig
from repro.sim.vehicle import Control, Vehicle, VehicleState

controls = st.floats(-1.0, 1.0, allow_nan=False)


def make_vehicle(speed=10.0, **config_kwargs):
    return Vehicle(
        "test",
        config=VehicleConfig(**config_kwargs),
        state=VehicleState(speed=speed),
    )


class TestControl:
    def test_clipped(self):
        clipped = Control(steer=2.0, thrust=-3.0).clipped()
        assert clipped.steer == 1.0
        assert clipped.thrust == -1.0

    @given(st.floats(-10, 10), st.floats(-10, 10))
    def test_clip_bounds(self, steer, thrust):
        clipped = Control(steer, thrust).clipped()
        assert -1.0 <= clipped.steer <= 1.0
        assert -1.0 <= clipped.thrust <= 1.0


class TestSmoothing:
    def test_eq1_blend(self):
        vehicle = make_vehicle()
        vehicle.state.steer_actuation = 1.0
        vehicle.state.thrust_actuation = -1.0
        steer, thrust = vehicle.smoothed_actuation(Control(0.0, 0.0))
        assert steer == pytest.approx(vehicle.config.steer_retain)
        assert thrust == pytest.approx(-vehicle.config.thrust_retain)

    def test_converges_to_constant_command(self):
        vehicle = make_vehicle(speed=5.0)
        vehicle.apply_control(Control(steer=0.4, thrust=0.0))
        for _ in range(60):
            vehicle.step(0.1)
            vehicle.apply_control(Control(steer=0.4, thrust=0.0))
        assert vehicle.state.steer_actuation == pytest.approx(0.4, abs=1e-3)

    @given(controls, controls)
    @settings(max_examples=30)
    def test_actuation_bounded(self, steer, thrust):
        vehicle = make_vehicle()
        for _ in range(20):
            vehicle.apply_control(Control(steer, thrust))
            vehicle.step(0.1)
            assert -1.0 <= vehicle.state.steer_actuation <= 1.0
            assert -1.0 <= vehicle.state.thrust_actuation <= 1.0


class TestDynamics:
    def test_straight_line_constant_speed(self):
        vehicle = make_vehicle(speed=10.0, drag=0.0)
        for _ in range(10):
            vehicle.apply_control(Control(0.0, 0.0))
            vehicle.step(0.1)
        assert vehicle.state.x == pytest.approx(10.0, abs=1e-6)
        assert vehicle.state.y == pytest.approx(0.0, abs=1e-9)
        assert vehicle.state.speed == pytest.approx(10.0)

    def test_throttle_accelerates(self):
        vehicle = make_vehicle(speed=5.0)
        vehicle.apply_control(Control(0.0, 1.0))
        vehicle.step(0.1)
        assert vehicle.state.speed > 5.0

    def test_brake_decelerates_and_stops(self):
        vehicle = make_vehicle(speed=2.0)
        for _ in range(50):
            vehicle.apply_control(Control(0.0, -1.0))
            vehicle.step(0.1)
        assert vehicle.state.speed == 0.0

    def test_speed_never_negative(self):
        vehicle = make_vehicle(speed=0.5)
        for _ in range(30):
            vehicle.apply_control(Control(0.0, -1.0))
            vehicle.step(0.1)
            assert vehicle.state.speed >= 0.0

    def test_speed_capped(self):
        vehicle = make_vehicle(speed=29.0, max_speed=30.0)
        for _ in range(100):
            vehicle.apply_control(Control(0.0, 1.0))
            vehicle.step(0.1)
        assert vehicle.state.speed <= 30.0

    def test_positive_steer_turns_right(self):
        """Paper convention: positive steering turns right (y decreases)."""
        vehicle = make_vehicle(speed=10.0)
        for _ in range(10):
            vehicle.apply_control(Control(steer=0.5, thrust=0.0))
            vehicle.step(0.1)
        assert vehicle.state.y < -0.1
        assert vehicle.state.yaw < 0.0

    def test_negative_steer_turns_left(self):
        vehicle = make_vehicle(speed=10.0)
        for _ in range(10):
            vehicle.apply_control(Control(steer=-0.5, thrust=0.0))
            vehicle.step(0.1)
        assert vehicle.state.y > 0.1

    def test_lateral_accel_limited(self):
        vehicle = make_vehicle(speed=16.0, drag=0.0)
        vehicle.state.steer_actuation = 1.0
        vehicle.apply_control(Control(steer=1.0, thrust=0.0))
        vehicle.step(0.1)
        sample = vehicle.imu_trace[-1]
        limit = vehicle.config.max_lateral_accel
        assert abs(sample.yaw_rate * vehicle.state.speed) <= limit + 1e-6

    def test_drag_slows_coasting(self):
        vehicle = make_vehicle(speed=16.0, drag=0.01)
        vehicle.apply_control(Control(0.0, 0.0))
        vehicle.step(0.1)
        assert vehicle.state.speed < 16.0

    @given(controls, controls)
    @settings(max_examples=25)
    def test_yaw_stays_normalized(self, steer, thrust):
        vehicle = make_vehicle(speed=12.0)
        for _ in range(40):
            vehicle.apply_control(Control(steer, thrust))
            vehicle.step(0.1)
            assert -math.pi <= vehicle.state.yaw < math.pi


class TestSubsteps:
    def test_imu_trace_length(self):
        vehicle = make_vehicle()
        vehicle.step(0.1, substeps=2)
        assert len(vehicle.imu_trace) == 2

    def test_trace_reset_each_step(self):
        vehicle = make_vehicle()
        vehicle.step(0.1, substeps=2)
        vehicle.step(0.1, substeps=2)
        assert len(vehicle.imu_trace) == 2

    def test_substeps_match_single_step_straight(self):
        coarse = make_vehicle(speed=10.0)
        fine = make_vehicle(speed=10.0)
        for _ in range(5):
            coarse.apply_control(Control(0.0, 0.3))
            fine.apply_control(Control(0.0, 0.3))
            coarse.step(0.1, substeps=1)
            fine.step(0.1, substeps=4)
        assert coarse.state.x == pytest.approx(fine.state.x, rel=1e-3)
        assert coarse.state.speed == pytest.approx(fine.state.speed, rel=1e-3)

    def test_invalid_args(self):
        vehicle = make_vehicle()
        with pytest.raises(ValueError):
            vehicle.step(0.0)
        with pytest.raises(ValueError):
            vehicle.step(0.1, substeps=0)


class TestImuSamples:
    def test_longitudinal_accel_sign(self):
        vehicle = make_vehicle(speed=5.0, drag=0.0)
        vehicle.apply_control(Control(0.0, 1.0))
        vehicle.step(0.1)
        assert vehicle.imu_trace[-1].accel_long > 0.0

    def test_yaw_rate_sign_matches_turn(self):
        vehicle = make_vehicle(speed=10.0)
        vehicle.apply_control(Control(steer=1.0, thrust=0.0))
        vehicle.step(0.1)
        assert vehicle.imu_trace[-1].yaw_rate < 0.0  # right turn = clockwise


class TestFootprintAndTeleport:
    def test_footprint_dimensions(self):
        vehicle = make_vehicle()
        box = vehicle.footprint()
        assert box.length == vehicle.config.length
        assert box.width == vehicle.config.width

    def test_teleport_resets(self):
        vehicle = make_vehicle()
        vehicle.apply_control(Control(1.0, 1.0))
        vehicle.step(0.1)
        vehicle.teleport(5.0, 6.0, yaw=0.2, speed=3.0)
        assert vehicle.state.x == 5.0
        assert vehicle.state.steer_actuation == 0.0
        assert vehicle.pending_control.steer == 0.0
        assert vehicle.imu_trace == []
