"""Tests for scenario presets and the curved-road variant."""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.sim import PRESETS, Control, curved_world, make_world
from repro.sim.presets import (
    dense_traffic,
    fast_npcs,
    light_traffic,
    paper_scenario,
    two_lane,
)


class TestPresets:
    def test_registry_complete(self):
        assert set(PRESETS) == {
            "paper", "dense", "light", "two-lane", "fast-npcs",
        }

    def test_paper_matches_default(self):
        config = paper_scenario()
        assert config.n_npcs == 6
        assert config.ego_speed == 16.0
        assert config.npc_speed == 6.0
        assert config.max_steps == 180

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_build_and_tick(self, name):
        world = make_world(PRESETS[name](), rng=np.random.default_rng(0))
        assert len(world.npcs) == world.config.n_npcs
        result = world.tick(Control(thrust=-0.5))
        assert result.step == 1

    def test_dense_has_more_npcs(self):
        assert dense_traffic().n_npcs > paper_scenario().n_npcs

    def test_light_has_fewer_npcs(self):
        assert light_traffic().n_npcs < paper_scenario().n_npcs

    def test_two_lane_road(self):
        world = make_world(two_lane(), rng=None)
        assert world.road.n_lanes == 2

    def test_fast_npcs_speed(self):
        world = make_world(fast_npcs(), rng=None)
        assert world.npcs[0].vehicle.state.speed == pytest.approx(10.0)

    def test_modular_agent_survives_dense_traffic(self):
        world = make_world(dense_traffic(), rng=np.random.default_rng(4))
        agent = ModularAgent(world.road)
        agent.reset(world)
        result = None
        while not world.done:
            result = world.tick(agent.act(world))
        assert result.collision is None
        assert world.passed_npcs >= 4


class TestCurvedWorld:
    def test_builds_with_npcs_on_lanes(self):
        world = curved_world(rng=np.random.default_rng(0))
        for npc in world.npcs:
            _, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            assert world.road.lane_at(d) == npc.driver.lane

    def test_npcs_keep_lane_on_curve(self):
        world = curved_world(rng=None)
        for _ in range(50):
            if world.done:
                break
            world.tick(Control(thrust=-0.3))
        for npc in world.npcs:
            _, d, _ = world.road.to_frenet(npc.vehicle.state.position)
            deviation = world.road.lateral_deviation(d, npc.driver.lane)
            assert abs(deviation) < 0.6

    def test_modular_agent_drives_curved_road(self):
        world = curved_world(rng=np.random.default_rng(2))
        agent = ModularAgent(world.road)
        agent.reset(world)
        result = None
        while not world.done:
            result = world.tick(agent.act(world))
        assert result.collision is None
        assert world.passed_npcs >= 4
