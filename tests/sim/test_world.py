"""Tests for world ticking, NPC behaviour and the scenario builder."""

import numpy as np
import pytest

from repro.sim import (
    Control,
    CollisionKind,
    ScenarioConfig,
    make_world,
)


class TestScenarioBuilder:
    def test_spawn_counts(self, world):
        assert len(world.npcs) == 6
        assert world.ego.name == "ego"

    def test_ego_initial_speed(self, world, scenario_config):
        assert world.ego.state.speed == scenario_config.ego_speed

    def test_npcs_ahead_of_ego(self, world):
        ego_s, _, _ = world.road.to_frenet(world.ego.state.position)
        for npc in world.npcs:
            s, _, _ = world.road.to_frenet(npc.vehicle.state.position)
            assert s > ego_s

    def test_npcs_spaced_apart(self, world):
        positions = sorted(
            world.road.to_frenet(npc.vehicle.state.position)[0]
            for npc in world.npcs
        )
        gaps = np.diff(positions)
        assert np.all(gaps > 5.0)

    def test_jitter_is_reproducible(self):
        a = make_world(rng=np.random.default_rng(5))
        b = make_world(rng=np.random.default_rng(5))
        for npc_a, npc_b in zip(a.npcs, b.npcs):
            assert npc_a.vehicle.state.x == npc_b.vehicle.state.x

    def test_jitter_varies_with_seed(self):
        a = make_world(rng=np.random.default_rng(5))
        b = make_world(rng=np.random.default_rng(6))
        xs_a = [npc.vehicle.state.x for npc in a.npcs]
        xs_b = [npc.vehicle.state.x for npc in b.npcs]
        assert xs_a != xs_b

    def test_no_rng_no_jitter(self, quiet_world, scenario_config):
        first_s, _, _ = quiet_world.road.to_frenet(
            quiet_world.npcs[0].vehicle.state.position
        )
        assert first_s == pytest.approx(10.0 + scenario_config.first_npc_gap)


class TestTicking:
    def test_step_counter_and_time(self, world, scenario_config):
        result = world.tick(Control())
        assert result.step == 1
        assert result.time == pytest.approx(scenario_config.dt)

    def test_horizon_termination(self):
        config = ScenarioConfig(max_steps=5)
        world = make_world(config, rng=None)
        result = None
        for _ in range(5):
            result = world.tick(Control(thrust=-1.0))
        assert result.done
        assert world.done

    def test_tick_after_done_raises(self):
        config = ScenarioConfig(max_steps=1)
        world = make_world(config, rng=None)
        world.tick(Control(thrust=-1.0))
        with pytest.raises(RuntimeError):
            world.tick(Control())

    def test_front_collision_detected(self, quiet_world):
        """Coasting straight rams the first NPC head-on."""
        result = None
        while not quiet_world.done:
            result = quiet_world.tick(Control())
        assert result.collision is not None
        assert result.collision.kind is CollisionKind.FRONT
        assert result.collision.other == "npc_0"

    def test_barrier_collision(self, quiet_world):
        """Hard left steer runs the ego off the road into the barrier."""
        result = None
        while not quiet_world.done:
            result = quiet_world.tick(Control(steer=-1.0, thrust=0.0))
        assert result.collision is not None
        assert result.collision.kind in (
            CollisionKind.BARRIER,
            CollisionKind.SIDE,
        )

    def test_steer_delta_is_applied(self, quiet_world):
        result = quiet_world.tick(Control(steer=0.2), steer_delta=0.3)
        assert result.applied_steer == pytest.approx(0.5)

    def test_steer_delta_clamped_to_mechanical_limit(self, quiet_world):
        result = quiet_world.tick(Control(steer=0.8), steer_delta=0.8)
        assert result.applied_steer == 1.0

    def test_thrust_channel_untouched_by_attack(self, quiet_world):
        """Per the attack model, only steering is perturbable."""
        quiet_world.tick(Control(steer=0.0, thrust=0.5), steer_delta=1.0)
        assert quiet_world.ego.state.thrust_actuation == pytest.approx(
            0.5 * (1 - quiet_world.ego.config.thrust_retain)
        )


class TestProgressMetrics:
    def test_passed_npcs_starts_zero(self, world):
        assert world.passed_npcs == 0

    def test_nearest_npc(self, quiet_world):
        nearest = quiet_world.nearest_npc()
        assert nearest.vehicle.name == "npc_0"

    def test_ego_frenet(self, quiet_world):
        s, d, yaw = quiet_world.ego_frenet()
        assert s == pytest.approx(10.0)
        assert d == pytest.approx(quiet_world.road.lane_offset(1))


class TestNpcBehaviour:
    def test_npcs_hold_lane_and_speed(self, quiet_world):
        for _ in range(60):
            if quiet_world.done:
                break
            quiet_world.tick(Control(thrust=-0.2))
        for npc in quiet_world.npcs:
            _, d, _ = quiet_world.road.to_frenet(npc.vehicle.state.position)
            deviation = quiet_world.road.lateral_deviation(d, npc.driver.lane)
            assert abs(deviation) < 0.2
            assert npc.vehicle.state.speed == pytest.approx(
                quiet_world.config.npc_speed, abs=1.0
            )

    def test_lane_keeping_recovers_from_offset(self, road):
        from repro.sim.npc import LaneKeepingDriver
        from repro.sim.vehicle import Vehicle, VehicleState

        position, yaw = road.lane_center(2, 50.0)
        vehicle = Vehicle(
            "npc",
            state=VehicleState(
                x=position[0], y=position[1] + 1.0, yaw=yaw, speed=6.0
            ),
        )
        driver = LaneKeepingDriver(road, 2, 6.0)
        for _ in range(100):
            vehicle.apply_control(driver.control(vehicle))
            vehicle.step(0.1)
        _, d, _ = road.to_frenet(vehicle.state.position)
        assert road.lateral_deviation(d, 2) == pytest.approx(0.0, abs=0.15)

    def test_invalid_lane_rejected(self, road):
        from repro.sim.npc import LaneKeepingDriver

        with pytest.raises(ValueError):
            LaneKeepingDriver(road, 99, 6.0)
