"""The SoA batch world against the scalar reference simulator."""

import numpy as np
import pytest

from repro.sim import ScenarioConfig, make_batch_world
from repro.sim.batch import KIND_NONE, BatchWorld
from repro.sim.scenario import make_world
from repro.sim.vehicle import Control

pytestmark = pytest.mark.batch

SEEDS = [0, 11, 29, 47]


def _scripted_controls(seed: int, ticks: int):
    rng = np.random.default_rng(1000 + seed)
    return rng.uniform(-1.0, 1.0, size=(ticks, 3))  # steer, thrust, delta


class TestSpawnParity:
    def test_spawns_match_scalar_bitwise(self):
        cfg = ScenarioConfig()
        batch = make_batch_world(cfg, seeds=SEEDS)
        for i, seed in enumerate(SEEDS):
            world = make_world(cfg, rng=np.random.default_rng(seed))
            vehicles = [world.ego] + [npc.vehicle for npc in world.npcs]
            for col, vehicle in enumerate(vehicles):
                s = vehicle.state
                assert batch.x[i, col] == s.x
                assert batch.y[i, col] == s.y
                assert batch.yaw[i, col] == s.yaw
                assert batch.speed[i, col] == s.speed

    def test_n_and_m_shapes(self):
        cfg = ScenarioConfig()
        batch = make_batch_world(cfg, seeds=SEEDS)
        assert batch.n == len(SEEDS)
        assert batch.m == cfg.n_npcs
        assert batch.x.shape == (len(SEEDS), 1 + cfg.n_npcs)


class TestTickParity:
    def test_scripted_rollout_matches_scalar(self):
        """Full trajectory, collisions and bookkeeping match per row."""
        cfg = ScenarioConfig()
        batch = make_batch_world(cfg, seeds=SEEDS)
        worlds = [
            make_world(cfg, rng=np.random.default_rng(s)) for s in SEEDS
        ]
        scripts = [_scripted_controls(s, 200) for s in SEEDS]

        for t in range(200):
            if batch.all_done:
                break
            for i, world in enumerate(worlds):
                if world.done:
                    continue
                steer, thrust, delta = scripts[i][t]
                world.tick(Control(steer, thrust), steer_delta=delta)
            controls = np.array(
                [scripts[i][t] for i in range(len(SEEDS))]
            )
            batch.tick(
                controls[:, 0], controls[:, 1], steer_delta=controls[:, 2]
            )

        for i, world in enumerate(worlds):
            state = world.ego.state
            assert batch.x[i, 0] == state.x
            assert batch.y[i, 0] == state.y
            assert batch.yaw[i, 0] == state.yaw
            assert batch.speed[i, 0] == state.speed
            assert batch.step_count[i] == world.step_count
            assert batch.done[i] == world.done
            assert batch.passed_npcs[i] == world.passed_npcs
            collision = batch.collision(i)
            if world.collisions:
                assert collision is not None
                assert collision.kind is world.collisions[0].kind
                assert collision.other == world.collisions[0].other
                assert collision.step == world.collisions[0].step
            else:
                assert collision is None

    def test_done_rows_freeze(self):
        cfg = ScenarioConfig(max_steps=5)
        batch = make_batch_world(cfg, seeds=[1, 2])
        for _ in range(5):
            batch.tick(np.zeros(2), np.zeros(2))
        assert batch.all_done
        frozen = batch.x.copy()
        with pytest.raises(RuntimeError):
            batch.tick(np.ones(2), np.ones(2))
        assert np.array_equal(batch.x, frozen)

    def test_tick_result_reports_this_tick_only(self):
        cfg = ScenarioConfig(max_steps=30)
        batch = make_batch_world(cfg, seeds=SEEDS)
        saw_collision = np.zeros(batch.n, dtype=bool)
        while not batch.all_done:
            result = batch.tick(
                np.full(batch.n, 0.3), np.full(batch.n, 1.0)
            )
            new = result.collision_kind != KIND_NONE
            # A collision is reported exactly once, on its tick.
            assert not np.any(new & saw_collision)
            saw_collision |= new


class TestQueries:
    def test_frenet_and_gap_match_scalar(self):
        cfg = ScenarioConfig()
        batch = make_batch_world(cfg, seeds=SEEDS)
        worlds = [
            make_world(cfg, rng=np.random.default_rng(s)) for s in SEEDS
        ]
        s_arr, d_arr, _ = batch.ego_frenet()
        gaps = batch.nearest_npc_gap()
        for i, world in enumerate(worlds):
            s, d, _ = world.road.to_frenet(world.ego.state.position)
            assert s_arr[i] == pytest.approx(s, abs=1e-12)
            assert d_arr[i] == pytest.approx(d, abs=1e-12)
            nearest = world.nearest_npc()
            gap = float(
                np.linalg.norm(
                    nearest.vehicle.state.position - world.ego.state.position
                )
            )
            assert gaps[i] == pytest.approx(gap, abs=1e-9)

    def test_explicit_state_constructor(self):
        cfg = ScenarioConfig()
        road = make_world(cfg).road
        n, m = 2, 1
        batch = BatchWorld(
            road,
            cfg,
            x=np.full((n, 1 + m), 30.0),
            y=np.zeros((n, 1 + m)),
            yaw=np.zeros((n, 1 + m)),
            speed=np.full((n, 1 + m), 5.0),
            npc_lane=np.zeros((n, m), dtype=np.int64),
            npc_target_speed=np.full((n, m), 6.0),
        )
        assert batch.n == n and batch.m == m
        assert not batch.all_done
