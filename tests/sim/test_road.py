"""Tests for road geometry, Frenet frames and the routing graph."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import RoadConfig
from repro.sim.road import Road, default_road


class TestConstruction:
    def test_straight_length(self, road):
        assert road.length == pytest.approx(road.config.length)

    def test_rejects_bad_centerline(self):
        with pytest.raises(ValueError):
            Road(RoadConfig(), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            Road(RoadConfig(), np.zeros((5, 3)))

    def test_curved_has_lateral_extent(self):
        curved = Road.curved(RoadConfig(length=220.0), amplitude=5.0)
        ys = curved.centerline[:, 1]
        assert ys.max() > 4.0 and ys.min() < -4.0

    def test_default_road_cached(self):
        assert default_road() is default_road()


class TestLanes:
    def test_lane_offsets_symmetric(self, road):
        offsets = [road.lane_offset(i) for i in range(road.n_lanes)]
        assert offsets == sorted(offsets)
        assert sum(offsets) == pytest.approx(0.0)

    def test_lane_offset_spacing(self, road):
        assert road.lane_offset(1) - road.lane_offset(0) == pytest.approx(
            road.config.lane_width
        )

    def test_invalid_lane_raises(self, road):
        with pytest.raises(ValueError):
            road.lane_offset(-1)
        with pytest.raises(ValueError):
            road.lane_offset(road.n_lanes)

    def test_lane_at_centers(self, road):
        for lane in range(road.n_lanes):
            assert road.lane_at(road.lane_offset(lane)) == lane

    def test_lane_at_off_road(self, road):
        assert road.lane_at(road.half_width + 1.0) is None
        assert road.lane_at(-road.half_width - 1.0) is None

    def test_off_road_boundaries(self, road):
        assert not road.off_road(0.0)
        assert not road.off_road(road.half_width + road.config.shoulder * 0.5)
        assert road.off_road(road.barrier_offset + 0.01)

    def test_lateral_deviation(self, road):
        assert road.lateral_deviation(road.lane_offset(2), 2) == pytest.approx(0.0)
        assert road.lateral_deviation(road.lane_offset(2) + 0.5, 2) == (
            pytest.approx(0.5)
        )


class TestFrenet:
    def test_roundtrip_straight(self, road):
        position, yaw = road.to_world(100.0, 2.0)
        s, d, tangent = road.to_frenet(position)
        assert s == pytest.approx(100.0, abs=1e-6)
        assert d == pytest.approx(2.0, abs=1e-9)
        assert tangent == pytest.approx(yaw, abs=1e-9)

    @given(st.floats(5.0, 440.0), st.floats(-6.0, 6.0))
    @settings(max_examples=40)
    def test_roundtrip_property(self, s, d):
        road = default_road()
        position, _ = road.to_world(s, d)
        s2, d2, _ = road.to_frenet(position)
        assert s2 == pytest.approx(s, abs=1e-6)
        assert d2 == pytest.approx(d, abs=1e-6)

    def test_roundtrip_curved(self):
        road = Road.curved(RoadConfig(length=200.0))
        position, _ = road.to_world(80.0, -3.0)
        s, d, _ = road.to_frenet(position)
        assert s == pytest.approx(80.0, abs=0.3)
        assert d == pytest.approx(-3.0, abs=0.05)

    def test_lane_center_positions(self, road):
        position, yaw = road.lane_center(0, 50.0)
        assert position[0] == pytest.approx(50.0)
        assert position[1] == pytest.approx(road.lane_offset(0))
        assert yaw == pytest.approx(0.0)


class TestWaypoints:
    def test_waypoints_ordered(self, road):
        points = road.waypoints(0)
        ss = [w.s for w in points]
        assert ss == sorted(ss)
        assert points[0].s == 0.0

    def test_waypoint_spacing(self, road):
        points = road.waypoints(1)
        assert points[1].s - points[0].s == pytest.approx(
            road.config.waypoint_spacing
        )

    def test_nearest_waypoint(self, road):
        wp = road.nearest_waypoint(2, 33.0)
        assert wp.lane == 2
        assert abs(wp.s - 33.0) <= road.config.waypoint_spacing / 2.0 + 1e-9

    def test_nearest_waypoint_clamped(self, road):
        assert road.nearest_waypoint(0, -10.0).index == 0
        last = road.nearest_waypoint(0, 1e9)
        assert last.index == len(road.waypoints(0)) - 1


class TestRoutingGraph:
    def test_graph_is_dag_along_road(self, road):
        assert nx.is_directed_acyclic_graph(road.graph)

    def test_same_lane_route(self, road):
        route = road.shortest_route((0, 0), (0, 10))
        assert [w.lane for w in route] == [0] * 11

    def test_lane_change_route(self, road):
        route = road.shortest_route((0, 0), (2, 40))
        lanes = {w.lane for w in route}
        assert lanes >= {0, 1, 2}
        # Monotone progress along the road.
        ss = [w.s for w in route]
        assert ss == sorted(ss)

    def test_no_backward_route(self, road):
        with pytest.raises(nx.NetworkXNoPath):
            road.shortest_route((0, 10), (0, 0))
