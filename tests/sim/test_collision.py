"""Tests for collision detection and side/front/rear classification."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.collision import (
    CollisionKind,
    check_barrier,
    check_vehicle_pair,
    classify_vehicle_collision,
)
from repro.sim.config import VehicleConfig
from repro.sim.vehicle import Vehicle, VehicleState


def vehicle_at(x, y, yaw=0.0, name="v"):
    return Vehicle(name, VehicleConfig(), VehicleState(x=x, y=y, yaw=yaw))


class TestClassification:
    def test_side_left(self):
        ego = vehicle_at(0.0, 0.0)
        other = vehicle_at(0.0, 2.0)
        assert classify_vehicle_collision(ego, other) is CollisionKind.SIDE

    def test_side_right(self):
        ego = vehicle_at(0.0, 0.0)
        other = vehicle_at(0.5, -2.0)
        assert classify_vehicle_collision(ego, other) is CollisionKind.SIDE

    def test_front(self):
        ego = vehicle_at(0.0, 0.0)
        other = vehicle_at(4.5, 0.2)
        assert classify_vehicle_collision(ego, other) is CollisionKind.FRONT

    def test_rear(self):
        ego = vehicle_at(0.0, 0.0)
        other = vehicle_at(-4.5, 0.2)
        assert classify_vehicle_collision(ego, other) is CollisionKind.REAR

    def test_respects_ego_heading(self):
        """A vehicle straight ahead in world frame is a side hit if the ego
        has yawed 90 degrees."""
        ego = vehicle_at(0.0, 0.0, yaw=math.pi / 2.0)
        other = vehicle_at(3.0, 0.0)
        assert classify_vehicle_collision(ego, other) is CollisionKind.SIDE

    @given(st.floats(0.5, 2 * math.pi))
    @settings(max_examples=30)
    def test_classification_total(self, bearing):
        ego = vehicle_at(0.0, 0.0)
        other = vehicle_at(3.0 * math.cos(bearing), 3.0 * math.sin(bearing))
        kind = classify_vehicle_collision(ego, other)
        assert kind in {CollisionKind.SIDE, CollisionKind.FRONT, CollisionKind.REAR}


class TestPairCheck:
    def test_no_contact_returns_none(self):
        assert check_vehicle_pair(vehicle_at(0, 0), vehicle_at(20, 0)) is None

    def test_contact_classified(self):
        kind = check_vehicle_pair(vehicle_at(0, 0), vehicle_at(1.0, 1.9))
        assert kind is CollisionKind.SIDE

    def test_adjacent_lane_no_contact(self):
        # Two 2.0 m wide vehicles centered 3.5 m apart do not touch.
        assert check_vehicle_pair(vehicle_at(0, 0), vehicle_at(0, 3.5)) is None


class TestBarrier:
    def test_on_road_no_barrier(self, road):
        position, yaw = road.lane_center(0, 100.0)
        vehicle = vehicle_at(position[0], position[1], yaw)
        assert not check_barrier(vehicle, road)

    def test_off_road_hits_barrier(self, road):
        vehicle = vehicle_at(100.0, road.barrier_offset + 2.0)
        assert check_barrier(vehicle, road)

    def test_corner_crossing_counts(self, road):
        # Center still inside, but a corner pokes past the barrier.
        edge = road.barrier_offset
        vehicle = vehicle_at(100.0, edge - 0.5, yaw=0.4)
        assert check_barrier(vehicle, road)
