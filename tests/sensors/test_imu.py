"""Tests for the IMU sensor and frame stacking."""

import numpy as np
import pytest

from repro.sensors import FrameStack, GaussianNoise, Imu, ImuConfig
from repro.sensors.camera import BevCamera, BevCameraConfig
from repro.sim import Control


class TestImu:
    def test_observation_dim_default(self):
        assert Imu().observation_dim == 128  # 64 samples x 2 channels

    def test_observation_dim_with_lateral(self):
        assert Imu(ImuConfig(include_lateral=True)).observation_dim == 192

    def test_initial_observation_zero_padded(self, quiet_world):
        imu = Imu()
        obs = imu.observe(quiet_world)
        assert obs.shape == (128,)
        np.testing.assert_array_equal(obs, np.zeros(128))

    def test_samples_accumulate_per_substep(self, quiet_world):
        imu = Imu()
        quiet_world.tick(Control(thrust=1.0))
        obs = imu.observe(quiet_world)
        # Two substeps produce two non-zero trailing samples per channel.
        accel = obs[:64]
        assert np.count_nonzero(accel) == 2
        assert accel[-1] > 0.0  # throttling: positive longitudinal accel

    def test_yaw_rate_channel_reflects_steering(self, quiet_world):
        imu = Imu()
        for _ in range(5):
            quiet_world.tick(Control(steer=0.8))
            obs = imu.observe(quiet_world)
        yaw_rate = obs[64:]
        assert yaw_rate[-1] < 0.0  # right turn = clockwise

    def test_window_rolls(self, quiet_world):
        imu = Imu(ImuConfig(window=4))
        for _ in range(10):
            if quiet_world.done:
                break
            quiet_world.tick(Control(thrust=0.3))
            obs = imu.observe(quiet_world)
        assert obs.shape == (8,)
        assert np.count_nonzero(obs[:4]) == 4

    def test_reset_clears_buffers(self, quiet_world):
        imu = Imu()
        quiet_world.tick(Control(thrust=1.0))
        imu.observe(quiet_world)
        imu.reset()
        fresh = Imu()
        np.testing.assert_array_equal(
            imu._padded(imu._accel_long), fresh._padded(fresh._accel_long)
        )

    def test_noise_changes_observation(self, quiet_world):
        clean = Imu()
        noisy = Imu(noise=GaussianNoise(std=0.5, rng=np.random.default_rng(1)))
        quiet_world.tick(Control(thrust=1.0))
        a = clean.observe(quiet_world)
        # Note: observe consumes the same trace; both sensors read it.
        b = noisy.observe(quiet_world)
        assert not np.allclose(a, b)

    def test_gaussian_noise_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(std=-1.0)


class TestFrameStack:
    def test_dim_multiplied(self):
        camera = BevCamera(BevCameraConfig(rows=4, cols=4))
        stack = FrameStack(camera, k=3)
        assert stack.observation_dim == 48

    def test_first_observation_repeats_frame(self, quiet_world):
        camera = BevCamera(BevCameraConfig(rows=4, cols=4))
        stack = FrameStack(camera, k=3)
        obs = stack.observe(quiet_world)
        np.testing.assert_array_equal(obs[:16], obs[16:32])
        np.testing.assert_array_equal(obs[16:32], obs[32:])

    def test_frames_shift(self, quiet_world):
        camera = BevCamera(BevCameraConfig(rows=8, cols=8))
        stack = FrameStack(camera, k=2)
        first = stack.observe(quiet_world)
        for _ in range(10):
            quiet_world.tick(Control())
        second = stack.observe(quiet_world)
        # Oldest half of the new stack equals newest half of the old stack.
        np.testing.assert_array_equal(second[:64], first[64:])

    def test_reset_clears(self, quiet_world):
        camera = BevCamera(BevCameraConfig(rows=4, cols=4))
        stack = FrameStack(camera, k=2)
        stack.observe(quiet_world)
        stack.reset()
        assert stack._frames == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FrameStack(BevCamera(), k=0)
