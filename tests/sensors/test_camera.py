"""Tests for the semantic segmentation cameras."""

import numpy as np
import pytest

from repro.sensors.camera import (
    BevCamera,
    BevCameraConfig,
    PanoramaCamera,
    PanoramaCameraConfig,
    SemanticClass,
)
from repro.sim import Control, make_world


class TestBevCamera:
    def test_observation_dim(self):
        camera = BevCamera(BevCameraConfig(rows=10, cols=6))
        assert camera.observation_dim == 60

    def test_observe_normalized(self, quiet_world):
        camera = BevCamera()
        obs = camera.observe(quiet_world)
        assert obs.shape == (camera.observation_dim,)
        assert obs.min() >= 0.0 and obs.max() <= 1.0

    def test_sees_road_under_ego(self, quiet_world):
        camera = BevCamera()
        grid = camera.render(quiet_world)
        road_like = {
            int(SemanticClass.ROAD),
            int(SemanticClass.LANE_MARKING),
            int(SemanticClass.VEHICLE),
        }
        # The center of the grid sits on the roadway.
        assert int(grid[grid.shape[0] // 2, grid.shape[1] // 2]) in road_like

    def test_sees_off_road_at_edges(self, quiet_world):
        camera = BevCamera(BevCameraConfig(half_width=20.0, cols=21))
        grid = camera.render(quiet_world)
        assert int(grid[0, 0]) == int(SemanticClass.OFF_ROAD)
        assert int(grid[0, -1]) == int(SemanticClass.OFF_ROAD)

    def test_sees_npc_ahead(self, quiet_world):
        camera = BevCamera()
        grid = camera.render(quiet_world)
        assert np.any(grid == int(SemanticClass.VEHICLE))

    def test_npc_pixels_move_closer_as_ego_approaches(self, quiet_world):
        camera = BevCamera()
        before = camera.render(quiet_world)
        rows_before = np.where(before == int(SemanticClass.VEHICLE))[0]
        for _ in range(15):
            quiet_world.tick(Control())
        after = camera.render(quiet_world)
        rows_after = np.where(after == int(SemanticClass.VEHICLE))[0]
        assert rows_before.size and rows_after.size
        # Row index grows toward the ego's forward direction; the nearest
        # vehicle pixel appears at a smaller forward distance after closing in.
        assert rows_after.min() <= rows_before.min()

    def test_view_rotates_with_ego(self, quiet_world):
        camera = BevCamera(BevCameraConfig(half_width=20.0, cols=21))
        quiet_world.ego.state.yaw = np.pi / 2.0  # face across the road
        grid = camera.render(quiet_world)
        # Looking across the road, far forward cells are off-road.
        assert int(grid[-1, grid.shape[1] // 2]) == int(SemanticClass.OFF_ROAD)

    def test_lane_markings_present_at_high_resolution(self, quiet_world):
        camera = BevCamera(BevCameraConfig(rows=40, cols=120, half_width=9.0))
        grid = camera.render(quiet_world)
        assert np.any(grid == int(SemanticClass.LANE_MARKING))

    def test_reset_is_noop(self, quiet_world):
        camera = BevCamera()
        first = camera.observe(quiet_world)
        camera.reset()
        np.testing.assert_array_equal(first, camera.observe(quiet_world))


@pytest.mark.batch
class TestBevCameraBatch:
    def test_render_batch_matches_scalar_grids(self):
        from repro.sim import ScenarioConfig, make_batch_world
        from repro.sim.scenario import make_world as make_scalar

        cfg = ScenarioConfig()
        seeds = [0, 5, 9]
        batch = make_batch_world(cfg, seeds=seeds)
        camera = BevCamera(BevCameraConfig(rows=12, cols=8))
        grids = camera.render_batch(batch)
        assert grids.shape == (len(seeds), 12, 8)
        for i, seed in enumerate(seeds):
            world = make_scalar(cfg, rng=np.random.default_rng(seed))
            np.testing.assert_array_equal(grids[i], camera.render(world))

    def test_observe_batch_matches_scalar_after_ticks(self):
        from repro.sim import ScenarioConfig, make_batch_world
        from repro.sim.scenario import make_world as make_scalar

        cfg = ScenarioConfig()
        seeds = [3, 7]
        batch = make_batch_world(cfg, seeds=seeds)
        worlds = [
            make_scalar(cfg, rng=np.random.default_rng(s)) for s in seeds
        ]
        for _ in range(5):
            for world in worlds:
                world.tick(Control(steer=0.2, thrust=0.5))
            batch.tick(np.full(2, 0.2), np.full(2, 0.5))
        camera = BevCamera()
        obs = camera.observe_batch(batch)
        for i, world in enumerate(worlds):
            np.testing.assert_array_equal(obs[i], camera.observe(world))


class TestPanoramaCamera:
    def test_paper_resolution(self):
        camera = PanoramaCamera()
        assert camera.config.height == 84
        assert camera.config.width == 420
        assert camera.observation_dim == 84 * 420

    def test_render_shape_and_classes(self, quiet_world):
        camera = PanoramaCamera(PanoramaCameraConfig(height=21, width=60))
        image = camera.render(quiet_world)
        assert image.shape == (21, 60)
        assert set(np.unique(image)) <= {0, 1, 2, 3}

    def test_sees_vehicle_ahead(self, quiet_world):
        camera = PanoramaCamera(PanoramaCameraConfig(height=42, width=210))
        image = camera.render(quiet_world)
        assert np.any(image == int(SemanticClass.VEHICLE))

    def test_forward_column_is_road(self, quiet_world):
        camera = PanoramaCamera(PanoramaCameraConfig(height=21, width=61))
        image = camera.render(quiet_world)
        center = image[:, image.shape[1] // 2]
        assert int(SemanticClass.ROAD) in set(center.tolist()) | {
            int(SemanticClass.VEHICLE)
        }
