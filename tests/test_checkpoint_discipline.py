"""Library code must write checkpoints through ``repro.utils.serialization``.

:func:`repro.utils.serialization.save_checkpoint` is the only writer
that guarantees atomic replace, fsync durability, and an embedded
content checksum. A stray ``np.savez`` or ``open(..., "wb")`` elsewhere
in ``src/repro`` would reintroduce the torn-checkpoint failure mode this
module exists to close, so this guard keeps the write path singular.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The one sanctioned checkpoint writer.
ALLOWED: frozenset[str] = frozenset({"utils/serialization.py"})

_RAW_WRITE = re.compile(
    r"np\.savez(_compressed)?\s*\(|open\([^)]*[\"']wb[\"']"
)


def test_checkpoints_only_written_via_serialization_module():
    assert SRC.is_dir(), SRC
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _RAW_WRITE.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "raw binary/npz write in library code — route it through "
        "repro.utils.serialization.save_checkpoint (atomic, checksummed):\n"
        + "\n".join(offenders)
    )
