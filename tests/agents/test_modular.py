"""Tests for the modular pipeline: PID, behaviour layer, and full agent."""

import numpy as np
import pytest

from repro.agents.modular import (
    BehaviorConfig,
    BehaviorPlanner,
    GlobalRoutePlanner,
    LaneTransition,
    ModularAgent,
    Pid,
    PidGains,
)
from repro.sim import Control, make_world


class TestPid:
    def test_proportional_only(self):
        pid = Pid(PidGains(kp=2.0), dt=0.1)
        assert pid.step(0.3) == pytest.approx(0.6)

    def test_output_saturates(self):
        pid = Pid(PidGains(kp=10.0), dt=0.1, output_limit=1.0)
        assert pid.step(5.0) == 1.0
        assert pid.step(-5.0) == -1.0

    def test_integral_accumulates(self):
        pid = Pid(PidGains(kp=0.0, ki=1.0), dt=0.1)
        first = pid.step(1.0)
        second = pid.step(1.0)
        assert second > first

    def test_integral_clamped(self):
        pid = Pid(PidGains(kp=0.0, ki=1.0), dt=0.1, integral_limit=0.2)
        for _ in range(100):
            out = pid.step(10.0)
        assert out == pytest.approx(0.2)

    def test_derivative_on_change(self):
        pid = Pid(PidGains(kp=0.0, kd=1.0), dt=0.1)
        assert pid.step(0.0) == 0.0  # no previous error yet
        assert pid.step(0.1) == pytest.approx(1.0)

    def test_reset(self):
        pid = Pid(PidGains(kp=1.0, ki=1.0, kd=1.0), dt=0.1)
        pid.step(1.0)
        pid.reset()
        assert pid.step(0.5) == pytest.approx(0.5 + 0.05)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            Pid(PidGains(kp=1.0), dt=0.0)


class TestLaneTransition:
    def test_endpoints(self):
        tr = LaneTransition(s0=10.0, d0=0.0, s1=30.0, d1=3.5)
        assert tr.offset(5.0) == 0.0
        assert tr.offset(10.0) == 0.0
        assert tr.offset(30.0) == 3.5
        assert tr.offset(40.0) == 3.5

    def test_midpoint_halfway(self):
        tr = LaneTransition(s0=0.0, d0=0.0, s1=20.0, d1=3.5)
        assert tr.offset(10.0) == pytest.approx(1.75)

    def test_monotone(self):
        tr = LaneTransition(s0=0.0, d0=-1.75, s1=20.0, d1=1.75)
        ss = np.linspace(0.0, 20.0, 50)
        ds = [tr.offset(s) for s in ss]
        assert all(b >= a - 1e-12 for a, b in zip(ds, ds[1:]))


class TestBehaviorPlanner:
    def test_reset_adopts_ego_lane(self, quiet_world):
        planner = BehaviorPlanner(quiet_world.road)
        planner.reset(quiet_world)
        assert planner.target_lane == 1

    def test_triggers_lane_change_near_leader(self, quiet_world):
        planner = BehaviorPlanner(quiet_world.road)
        planner.reset(quiet_world)
        changed = False
        for _ in range(60):
            if quiet_world.done:
                break
            plan = planner.update(quiet_world)
            changed = changed or plan.changing
            quiet_world.tick(Control(thrust=0.0))
        assert changed

    def test_cruises_at_target_speed_when_clear(self, quiet_world):
        # Remove all NPCs: plan should hold cruise speed with no transition.
        quiet_world.npcs.clear()
        planner = BehaviorPlanner(quiet_world.road)
        planner.reset(quiet_world)
        plan = planner.update(quiet_world)
        assert plan.target_speed == planner.config.target_speed
        assert not plan.changing

    def test_acc_slows_when_boxed_in(self, quiet_world):
        # Occupy every lane just ahead of the ego so no change is legal.
        road = quiet_world.road
        for lane, npc in enumerate(quiet_world.npcs[:4]):
            position, yaw = road.lane_center(lane, 50.0 + 2.0 * lane)
            npc.vehicle.teleport(
                position[0], position[1], yaw, quiet_world.config.npc_speed
            )
            npc.driver.lane = lane
        # A huge required front gap makes every occupied lane illegal.
        planner = BehaviorPlanner(road, BehaviorConfig(change_front_gap=1e9))
        planner.reset(quiet_world)
        plan = None
        for _ in range(40):
            if quiet_world.done:
                break
            plan = planner.update(quiet_world)
            quiet_world.tick(Control())
        assert plan.target_speed < planner.config.target_speed
        assert not plan.changing

    def test_reference_offset_continuous_across_change(self, quiet_world):
        planner = BehaviorPlanner(quiet_world.road)
        planner.reset(quiet_world)
        previous = None
        for _ in range(80):
            if quiet_world.done:
                break
            plan = planner.update(quiet_world)
            s, _, _ = quiet_world.road.to_frenet(quiet_world.ego.state.position)
            value = plan.reference_offset(s)
            if previous is not None:
                assert abs(value - previous) < 0.6
            previous = value
            quiet_world.tick(Control())


class TestGlobalRoutePlanner:
    def test_route_reaches_road_end(self, quiet_world):
        planner = GlobalRoutePlanner(quiet_world.road)
        route = planner.plan(quiet_world)
        assert route[-1].index == len(quiet_world.road.waypoints(1)) - 1

    def test_route_to_other_lane(self, quiet_world):
        planner = GlobalRoutePlanner(quiet_world.road)
        route = planner.plan(quiet_world, goal_lane=3)
        assert route[-1].lane == 3


class TestModularAgent:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_clean_overtaking_episode(self, seed):
        """Paper Section III-B: passes all NPCs, no collisions, 180 steps."""
        world = make_world(rng=np.random.default_rng(seed))
        agent = ModularAgent(world.road)
        agent.reset(world)
        result = None
        while not world.done:
            result = world.tick(agent.act(world))
        assert result.collision is None
        assert world.passed_npcs == 6
        assert result.step == world.config.max_steps

    def test_tracking_error_small(self):
        world = make_world(rng=np.random.default_rng(3))
        agent = ModularAgent(world.road)
        agent.reset(world)
        deviations = []
        while not world.done:
            world.tick(agent.act(world))
            s, d, _ = world.road.to_frenet(world.ego.state.position)
            deviations.append(abs(d - agent.current_plan.reference_offset(s)))
        rmse = float(np.sqrt(np.mean(np.square(deviations))))
        assert rmse < 0.15  # meters; centimeter-level tracking

    def test_controls_within_mechanical_limits(self, quiet_world):
        agent = ModularAgent(quiet_world.road)
        agent.reset(quiet_world)
        for _ in range(60):
            if quiet_world.done:
                break
            control = agent.act(quiet_world)
            assert -1.0 <= control.steer <= 1.0
            assert -1.0 <= control.thrust <= 1.0
            quiet_world.tick(control)

    def test_reset_clears_plan(self, quiet_world):
        agent = ModularAgent(quiet_world.road)
        agent.reset(quiet_world)
        agent.act(quiet_world)
        assert agent.current_plan is not None
        agent.reset(quiet_world)
        assert agent.current_plan is None

    def test_recovers_from_injected_deviation(self, quiet_world):
        """PID feedback pulls the ego back after a transient perturbation
        (the mechanism behind the modular agent's resilience, Sec. V-B)."""
        agent = ModularAgent(quiet_world.road)
        agent.reset(quiet_world)
        quiet_world.npcs.clear()
        for _ in range(10):
            quiet_world.tick(agent.act(quiet_world))
        for _ in range(4):  # adversarial nudge to the left
            quiet_world.tick(agent.act(quiet_world), steer_delta=-1.0)
        deviations = []
        for _ in range(60):
            if quiet_world.done:
                break
            quiet_world.tick(agent.act(quiet_world))
            s, d, _ = quiet_world.road.to_frenet(quiet_world.ego.state.position)
            deviations.append(abs(d - agent.current_plan.reference_offset(s)))
        assert deviations[-1] < 0.3
