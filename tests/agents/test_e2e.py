"""Tests for the end-to-end agent: observation, reward, env, training."""

import numpy as np
import pytest

from repro.agents.e2e import (
    DrivingEnv,
    DrivingObservation,
    DrivingReward,
    DrivingRewardConfig,
    EndToEndAgent,
)
from repro.agents.e2e.observation import POLICY_CAMERA
from repro.agents.e2e.training import (
    DriverTrainConfig,
    collect_expert_dataset,
    evaluate_driver,
    train_driver,
)
from repro.agents.modular import ModularAgent
from repro.agents.modular.behavior import BehaviorPlanner
from repro.rl.bc import BcConfig
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim import Control
from repro.sim.collision import Collision, CollisionKind


class TestDrivingObservation:
    def test_dimension(self):
        encoder = DrivingObservation()
        expected = 3 * POLICY_CAMERA.rows * POLICY_CAMERA.cols + 5
        assert encoder.observation_dim == expected

    def test_observation_bounded(self, quiet_world):
        encoder = DrivingObservation()
        obs = encoder.observe(quiet_world)
        assert obs.shape == (encoder.observation_dim,)
        assert np.all(np.abs(obs) <= 2.0)

    def test_speed_feature_normalized(self, quiet_world):
        encoder = DrivingObservation(reference_speed=16.0)
        obs = encoder.observe(quiet_world)
        assert obs[-5] == pytest.approx(1.0)  # ego spawns at 16 m/s

    def test_reset_clears_stack(self, quiet_world):
        encoder = DrivingObservation()
        first = encoder.observe(quiet_world)
        quiet_world.tick(Control(thrust=-1.0))
        encoder.observe(quiet_world)
        encoder.reset()
        fresh = encoder.observe(quiet_world)
        assert fresh.shape == first.shape


class TestDrivingReward:
    def make_plan(self, world):
        planner = BehaviorPlanner(world.road)
        planner.reset(world)
        return planner.update(world)

    def test_on_path_at_speed_near_one(self, quiet_world):
        plan = self.make_plan(quiet_world)
        out = DrivingReward().step(quiet_world, plan, None)
        assert out.progress == pytest.approx(1.0, abs=0.05)
        assert out.total == pytest.approx(1.0, abs=0.15)

    def test_progress_saturates_at_reference_speed(self, quiet_world):
        plan = self.make_plan(quiet_world)
        quiet_world.ego.state.speed = 30.0
        out = DrivingReward().step(quiet_world, plan, None)
        assert out.progress <= 1.0

    def test_slow_driving_penalized(self, quiet_world):
        plan = self.make_plan(quiet_world)
        quiet_world.ego.state.speed = 4.0
        out = DrivingReward().step(quiet_world, plan, None)
        assert out.total < 0.5

    def test_deviation_penalized(self, quiet_world):
        plan = self.make_plan(quiet_world)
        on_path = DrivingReward().step(quiet_world, plan, None)
        quiet_world.ego.state.y += 1.5
        off_path = DrivingReward().step(quiet_world, plan, None)
        assert off_path.deviation < on_path.deviation

    def test_collision_penalty(self, quiet_world):
        plan = self.make_plan(quiet_world)
        collision = Collision(
            kind=CollisionKind.SIDE, ego="ego", other="npc_0", step=1, time=0.1
        )
        out = DrivingReward().step(quiet_world, plan, collision)
        assert out.collision == pytest.approx(-10.0)

    def test_custom_weights(self, quiet_world):
        plan = self.make_plan(quiet_world)
        config = DrivingRewardConfig(collision_penalty=3.0)
        collision = Collision(
            kind=CollisionKind.REAR, ego="ego", other="npc_0", step=1, time=0.1
        )
        out = DrivingReward(config).step(quiet_world, plan, collision)
        assert out.collision == pytest.approx(-3.0)


class TestDrivingEnv:
    def test_reset_step_contract(self):
        env = DrivingEnv(rng=np.random.default_rng(0))
        obs = env.reset()
        assert obs.shape == (env.observation_dim,)
        obs2, reward, done, info = env.step(np.array([0.0, 0.0]))
        assert obs2.shape == obs.shape
        assert np.isfinite(reward)
        assert not done
        assert info["step"] == 1

    def test_step_before_reset_raises(self):
        env = DrivingEnv(rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            env.step(np.zeros(2))

    def test_actions_clipped(self):
        env = DrivingEnv(rng=np.random.default_rng(0))
        env.reset()
        env.step(np.array([5.0, -5.0]))
        assert -1.0 <= env.world.ego.state.steer_actuation <= 1.0

    def test_truncation_flag_at_horizon(self):
        from repro.sim import ScenarioConfig

        env = DrivingEnv(
            scenario=ScenarioConfig(max_steps=3), rng=np.random.default_rng(0)
        )
        env.reset()
        done = False
        while not done:
            _, _, done, info = env.step(np.array([0.0, -1.0]))
        assert info["truncated"]

    def test_injector_hook_called(self):
        class ConstantInjector:
            def __init__(self):
                self.calls = 0

            def reset(self, world):
                pass

            def delta(self, world, control):
                self.calls += 1
                return 0.2

        injector = ConstantInjector()
        env = DrivingEnv(rng=np.random.default_rng(0), injector=injector)
        env.reset()
        _, _, _, info = env.step(np.array([0.0, 0.0]))
        assert injector.calls == 1
        assert info["steer_delta"] == pytest.approx(0.2)

    def test_expert_scores_high(self):
        env = DrivingEnv(rng=np.random.default_rng(3))
        env.reset()
        agent = ModularAgent(env.world.road)
        agent.reset(env.world)
        total = 0.0
        done = False
        while not done:
            control = agent.act(env.world)
            _, reward, done, info = env.step(
                np.array([control.steer, control.thrust])
            )
            total += reward
        assert total > 120.0
        assert info["passed_npcs"] == 6


class TestEndToEndAgent:
    def make_agent(self):
        encoder = DrivingObservation()
        policy = SquashedGaussianPolicy(
            encoder.observation_dim, 2, (16,), np.random.default_rng(0)
        )
        return EndToEndAgent(policy, observation=encoder)

    def test_act_returns_clipped_control(self, quiet_world):
        agent = self.make_agent()
        agent.reset(quiet_world)
        control = agent.act(quiet_world)
        assert -1.0 <= control.steer <= 1.0
        assert -1.0 <= control.thrust <= 1.0

    def test_deterministic_by_default(self, quiet_world):
        agent = self.make_agent()
        agent.reset(quiet_world)
        a = agent.act(quiet_world)
        agent.reset(quiet_world)
        b = agent.act(quiet_world)
        assert a.steer == pytest.approx(b.steer)

    def test_save_load_roundtrip(self, tmp_path, quiet_world):
        agent = self.make_agent()
        path = agent.save(tmp_path / "driver", {"note": "test"})
        loaded = EndToEndAgent.load(path)
        agent.reset(quiet_world)
        loaded.reset(quiet_world)
        a = agent.act(quiet_world)
        b = loaded.act(quiet_world)
        assert a.steer == pytest.approx(b.steer)
        assert a.thrust == pytest.approx(b.thrust)


class TestTrainingPipeline:
    def test_collect_expert_dataset(self):
        obs, actions = collect_expert_dataset(
            1, np.random.default_rng(0), action_noise=0.1
        )
        assert len(obs) == len(actions)
        assert actions.shape[1] == 2
        assert np.all(np.abs(actions) <= 1.0)

    def test_train_driver_smoke(self):
        config = DriverTrainConfig(
            bc_episodes=2,
            bc=BcConfig(epochs=2),
            sac_steps=0,
            eval_episodes=1,
        )
        agent, metrics = train_driver(config)
        assert isinstance(agent, EndToEndAgent)
        assert "mean_return" in metrics

    def test_evaluate_driver_keys(self):
        agent = TestEndToEndAgent().make_agent()
        metrics = evaluate_driver(agent, n_episodes=1)
        assert set(metrics) == {
            "mean_return",
            "mean_passed",
            "collision_rate",
        }
