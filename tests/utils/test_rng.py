"""Tests for deterministic RNG streams."""

import numpy as np

from repro.utils.rng import RngStreams, seed_everything


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).get("traffic").normal(size=5)
        b = RngStreams(42).get("traffic").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(42)
        a = streams.get("traffic").normal(size=5)
        b = streams.get("policy").normal(size=5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("traffic").normal(size=5)
        b = RngStreams(2).get("traffic").normal(size=5)
        assert not np.allclose(a, b)

    def test_get_is_cached(self):
        streams = RngStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_spawn_indexed(self):
        streams = RngStreams(7)
        a = streams.spawn("episode", 0).normal(size=3)
        b = streams.spawn("episode", 1).normal(size=3)
        c = RngStreams(7).spawn("episode", 0).normal(size=3)
        assert not np.allclose(a, b)
        np.testing.assert_array_equal(a, c)

    def test_spawn_does_not_disturb_named_stream(self):
        baseline = RngStreams(9).get("env").normal(size=4)
        streams = RngStreams(9)
        streams.spawn("episode", 5)
        np.testing.assert_array_equal(streams.get("env").normal(size=4), baseline)


class TestSeedEverything:
    def test_returns_streams(self):
        streams = seed_everything(13)
        assert isinstance(streams, RngStreams)
        assert streams.seed == 13

    def test_seeds_legacy_numpy(self):
        seed_everything(13)
        a = np.random.rand(3)
        seed_everything(13)
        b = np.random.rand(3)
        np.testing.assert_array_equal(a, b)
