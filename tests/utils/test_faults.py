"""Tests for the deterministic fault-injection plans (non-chaos).

These cover spec parsing and the in-process hooks (``raise``,
``nan_grads``, ``enospc``); the real-crash flavours (SIGKILL a training
subprocess, truncate its checkpoint) live in the chaos suite.
"""

import numpy as np
import pytest

from repro import faults
from repro.faults import (
    Fault,
    FaultInjected,
    FaultSpecError,
    parse_plan,
    seeded_step,
    truncate_tail,
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_active_plan()
    yield
    faults.reset_active_plan()


class TestParsePlan:
    def test_kill_spec(self):
        plan = parse_plan("kill@step=120")
        assert plan.faults == (Fault(kind="kill", at=120),)

    def test_loop_scoping_and_multiple_faults(self):
        plan = parse_plan("raise@step=5,loop=sac-driver;enospc@save=2,count=3")
        assert plan.faults[0] == Fault(kind="raise", at=5, loop="sac-driver")
        assert plan.faults[1] == Fault(kind="enospc", at=2, count=3)

    def test_empty_spec_is_empty_plan(self):
        assert parse_plan("  ;  ").faults == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "explode@step=1",          # unknown kind
            "kill@frame=1",            # missing step=
            "kill@step=abc",           # non-integer
            "kill@step=1,extra=2",     # unknown field
            "kill@step",               # not key=value
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_plan(spec)


class TestHooks:
    def test_raise_fires_once_at_exact_step(self):
        plan = parse_plan("raise@step=3")
        for step in range(3):
            plan.on_train_step("any", step)
        with pytest.raises(FaultInjected):
            plan.on_train_step("any", 3)
        plan.on_train_step("any", 3)  # already fired: no re-raise

    def test_raise_respects_loop_filter(self):
        plan = parse_plan("raise@step=1,loop=sac-driver")
        plan.on_train_step("sac-attack", 1)  # other loop: untouched
        with pytest.raises(FaultInjected):
            plan.on_train_step("sac-driver", 1)

    def test_nan_grads_poisons_parameters(self):
        class Param:
            def __init__(self):
                self.grad = np.ones(3)

        plan = parse_plan("nan_grads@update=2")
        params = [Param(), Param()]
        plan.on_gradients("critic", params, 1)
        assert np.isfinite(params[0].grad).all()
        plan.on_gradients("critic", params, 2)
        assert np.isnan(params[0].grad).all()
        assert np.isnan(params[1].grad).all()

    def test_enospc_window(self, tmp_path):
        plan = parse_plan("enospc@save=1,count=2")
        plan.on_checkpoint_write(tmp_path / "a.npz")  # save 0: fine
        for _ in range(2):  # saves 1 and 2: full disk
            with pytest.raises(OSError, match="space"):
                plan.on_checkpoint_write(tmp_path / "b.npz")
        plan.on_checkpoint_write(tmp_path / "c.npz")  # save 3: fine again


class TestActivePlan:
    def test_no_env_means_no_plan(self):
        assert faults.active_plan() is None

    def test_env_arms_and_reset_disarms(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@step=0")
        faults.reset_active_plan()
        plan = faults.active_plan()
        assert plan is not None
        assert faults.active_plan() is plan  # cached
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_active_plan()
        assert faults.active_plan() is None

    def test_env_change_reparses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@step=0")
        faults.reset_active_plan()
        first = faults.active_plan()
        monkeypatch.setenv("REPRO_FAULTS", "raise@step=9")
        second = faults.active_plan()
        assert second is not first
        assert second.faults[0].at == 9


class TestHelpers:
    def test_truncate_tail(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(b"x" * 1000)
        truncate_tail(target, drop_bytes=300)
        assert target.stat().st_size == 700
        truncate_tail(target, drop_bytes=10_000)
        assert target.stat().st_size == 0

    def test_seeded_step_deterministic_and_in_range(self):
        a = seeded_step(7, 10, 50)
        assert a == seeded_step(7, 10, 50)
        assert 10 <= a < 50
        with pytest.raises(ValueError):
            seeded_step(0, 5, 5)
