"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.utils.serialization import load_checkpoint, save_checkpoint


class TestCheckpointRoundtrip:
    def test_arrays_roundtrip(self, tmp_path):
        arrays = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = save_checkpoint(tmp_path / "model", arrays)
        loaded, meta = load_checkpoint(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        assert meta == {}

    def test_meta_roundtrip(self, tmp_path):
        meta = {"obs_dim": 12, "kind": "sac", "nested": {"lr": 3e-4}}
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(2)}, meta)
        _, loaded_meta = load_checkpoint(path)
        assert loaded_meta == meta

    def test_suffix_forced(self, tmp_path):
        path = save_checkpoint(tmp_path / "model.ckpt", {"w": np.ones(1)})
        assert path.suffix == ".npz"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "m", {"__meta__": np.ones(1)})

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(tmp_path / "a" / "b" / "m", {"w": np.ones(1)})
        assert path.exists()

    def test_dtype_preserved(self, tmp_path):
        arrays = {"f32": np.ones(3, dtype=np.float32)}
        path = save_checkpoint(tmp_path / "m", arrays)
        loaded, _ = load_checkpoint(path)
        assert loaded["f32"].dtype == np.float32
