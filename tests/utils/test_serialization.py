"""Tests for checkpoint save/load, integrity checking, and atomicity."""

import json
import zipfile

import numpy as np
import pytest

from repro import faults
from repro.utils.serialization import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)


class TestCheckpointRoundtrip:
    def test_arrays_roundtrip(self, tmp_path):
        arrays = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = save_checkpoint(tmp_path / "model", arrays)
        loaded, meta = load_checkpoint(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        assert meta == {}

    def test_meta_roundtrip(self, tmp_path):
        meta = {"obs_dim": 12, "kind": "sac", "nested": {"lr": 3e-4}}
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(2)}, meta)
        _, loaded_meta = load_checkpoint(path)
        assert loaded_meta == meta

    def test_suffix_forced(self, tmp_path):
        path = save_checkpoint(tmp_path / "model.ckpt", {"w": np.ones(1)})
        assert path.suffix == ".npz"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "m", {"__meta__": np.ones(1)})

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(tmp_path / "a" / "b" / "m", {"w": np.ones(1)})
        assert path.exists()

    def test_dtype_preserved(self, tmp_path):
        arrays = {"f32": np.ones(3, dtype=np.float32)}
        path = save_checkpoint(tmp_path / "m", arrays)
        loaded, _ = load_checkpoint(path)
        assert loaded["f32"].dtype == np.float32


def _write_legacy(path, arrays, meta=None):
    """A pre-checksum (format v1) checkpoint, as the seed code wrote it."""
    payload = dict(arrays)
    payload["__meta__"] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez(handle, **payload)


class TestCheckpointIntegrity:
    def test_truncated_file_raises_actionable_error(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(1000)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_checkpoint(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "verify-artifacts" in message

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", {"w": np.arange(64.0)})
        # Corrupt one payload byte while keeping the zip structure valid:
        # rewrite the archive with one array value changed, then splice
        # the original (stale) checksum metadata back in.
        arrays, _ = load_checkpoint(path)
        original_meta = _read_raw_meta(path)
        arrays["w"][3] += 1.0
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(
            original_meta.encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_reserved_format_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="__format__"):
            save_checkpoint(
                tmp_path / "m", {"w": np.ones(1)}, {"__format__": {}}
            )

    def test_legacy_checkpoint_loads_with_warning(self, tmp_path):
        import io

        from repro.telemetry.log import configure

        _write_legacy(tmp_path / "old.npz", {"w": np.arange(3.0)}, {"k": 1})
        stream = io.StringIO()
        configure(level="warning", stream=stream, force=True)
        try:
            arrays, meta = load_checkpoint(tmp_path / "old.npz")
        finally:
            configure(force=True)
        np.testing.assert_array_equal(arrays["w"], np.arange(3.0))
        assert meta == {"k": 1}
        assert "checkpoint.legacy_format" in stream.getvalue()

    def test_format_metadata_hidden_from_caller(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(2)}, {"a": 1})
        _, meta = load_checkpoint(path)
        assert meta == {"a": 1}

    def test_failed_write_leaves_previous_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        path = save_checkpoint(tmp_path / "m", {"w": np.zeros(4)})
        original = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk exploded mid-write")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            save_checkpoint(tmp_path / "m", {"w": np.ones(4)})
        assert path.read_bytes() == original
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up

    def test_enospc_fault_hook_fires_before_touching_the_file(
        self, tmp_path, monkeypatch
    ):
        path = save_checkpoint(tmp_path / "m", {"w": np.zeros(4)})
        original = path.read_bytes()
        monkeypatch.setenv("REPRO_FAULTS", "enospc@save=0")
        faults.reset_active_plan()
        try:
            with pytest.raises(OSError) as excinfo:
                save_checkpoint(tmp_path / "m", {"w": np.ones(4)})
            assert "space" in str(excinfo.value)
            assert path.read_bytes() == original
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            faults.reset_active_plan()


def _read_raw_meta(path) -> str:
    with np.load(path, allow_pickle=False) as data:
        return bytes(data["__meta__"].tobytes()).decode("utf-8")


class TestVerifyCheckpoint:
    def test_good_checkpoint(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(5)})
        report = verify_checkpoint(path)
        assert report.ok and not report.legacy
        assert report.status == "ok"
        assert report.arrays == 1

    def test_legacy_checkpoint(self, tmp_path):
        _write_legacy(tmp_path / "old.npz", {"w": np.ones(2)})
        report = verify_checkpoint(tmp_path / "old.npz")
        assert report.ok and report.legacy
        assert report.status == "legacy"

    def test_truncated_checkpoint(self, tmp_path):
        path = save_checkpoint(tmp_path / "m", {"w": np.ones(500)})
        path.write_bytes(path.read_bytes()[:100])
        report = verify_checkpoint(path)
        assert not report.ok
        assert report.status == "CORRUPT"
        assert report.reason

    def test_missing_checkpoint(self, tmp_path):
        report = verify_checkpoint(tmp_path / "nope.npz")
        assert not report.ok
        assert report.reason == "missing"

    def test_not_a_zip(self, tmp_path):
        target = tmp_path / "junk.npz"
        target.write_bytes(b"this is not an npz archive")
        report = verify_checkpoint(target)
        assert not report.ok

    def test_zip_without_meta_is_legacy(self, tmp_path):
        target = tmp_path / "plain.npz"
        with open(target, "wb") as handle:
            np.savez(handle, w=np.ones(3))
        assert zipfile.is_zipfile(target)
        report = verify_checkpoint(target)
        assert report.ok and report.legacy
