"""Unit and property tests for geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.geometry import (
    OrientedBox,
    angle_diff,
    heading_vector,
    interpolate_polyline,
    normalize_angle,
    polyline_arclength,
    project_to_polyline,
    rotate,
    unit,
)

angles = st.floats(-50.0, 50.0, allow_nan=False)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)

    def test_wraps_positive(self):
        assert normalize_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wraps_negative(self):
        assert normalize_angle(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    @given(angles)
    def test_always_in_range(self, angle):
        wrapped = normalize_angle(angle)
        assert -math.pi <= wrapped < math.pi

    @given(angles)
    def test_preserves_direction(self, angle):
        wrapped = normalize_angle(angle)
        assert math.cos(wrapped) == pytest.approx(math.cos(angle), abs=1e-9)
        assert math.sin(wrapped) == pytest.approx(math.sin(angle), abs=1e-9)


class TestAngleDiff:
    def test_simple(self):
        assert angle_diff(0.3, 0.1) == pytest.approx(0.2)

    def test_wrap(self):
        assert angle_diff(math.pi - 0.05, -math.pi + 0.05) == pytest.approx(-0.1)

    @given(angles, angles)
    def test_antisymmetric_mod_2pi(self, a, b):
        forward = angle_diff(a, b)
        backward = angle_diff(b, a)
        assert math.isclose(
            math.sin(forward), -math.sin(backward), abs_tol=1e-9
        )


class TestRotate:
    def test_quarter_turn(self):
        out = rotate(np.array([[1.0, 0.0]]), math.pi / 2.0)
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    @given(angles)
    def test_preserves_norm(self, yaw):
        pts = np.array([[3.0, -4.0], [0.5, 0.25]])
        out = rotate(pts, yaw)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(pts, axis=1), atol=1e-9
        )

    @given(angles)
    def test_inverse(self, yaw):
        pts = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(rotate(rotate(pts, yaw), -yaw), pts, atol=1e-9)


class TestUnit:
    def test_scales(self):
        np.testing.assert_allclose(unit(np.array([3.0, 4.0])), [0.6, 0.8])

    def test_zero_vector(self):
        np.testing.assert_array_equal(unit(np.zeros(2)), np.zeros(2))


class TestHeadingVector:
    @given(angles)
    def test_unit_norm(self, yaw):
        assert np.linalg.norm(heading_vector(yaw)) == pytest.approx(1.0)


class TestOrientedBox:
    def test_corners_axis_aligned(self):
        box = OrientedBox(center=(0.0, 0.0), yaw=0.0, length=4.0, width=2.0)
        corners = box.corners()
        assert corners.shape == (4, 2)
        np.testing.assert_allclose(
            sorted(map(tuple, corners.tolist())),
            [(-2.0, -1.0), (-2.0, 1.0), (2.0, -1.0), (2.0, 1.0)],
        )

    def test_contains_center_and_outside(self):
        box = OrientedBox(center=(1.0, 1.0), yaw=0.3, length=4.0, width=2.0)
        assert box.contains(np.array([1.0, 1.0]))
        assert not box.contains(np.array([10.0, 10.0]))

    def test_intersects_overlapping(self):
        a = OrientedBox(center=(0.0, 0.0), yaw=0.0, length=4.0, width=2.0)
        b = OrientedBox(center=(3.0, 0.0), yaw=0.5, length=4.0, width=2.0)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint(self):
        a = OrientedBox(center=(0.0, 0.0), yaw=0.0, length=4.0, width=2.0)
        b = OrientedBox(center=(10.0, 0.0), yaw=0.0, length=4.0, width=2.0)
        assert not a.intersects(b)

    def test_rotated_near_miss(self):
        # Diagonal box whose AABB overlaps but the OBB does not.
        a = OrientedBox(center=(0.0, 0.0), yaw=0.0, length=2.0, width=2.0)
        b = OrientedBox(
            center=(2.0, 2.0), yaw=3.0 * math.pi / 4.0, length=4.0, width=0.5
        )
        assert not a.intersects(b)

    @given(angles, st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=50)
    def test_intersection_symmetric(self, yaw, cx, cy):
        a = OrientedBox(center=(0.0, 0.0), yaw=0.0, length=4.7, width=2.0)
        b = OrientedBox(center=(cx, cy), yaw=yaw, length=4.7, width=2.0)
        assert a.intersects(b) == b.intersects(a)

    @given(angles)
    def test_self_intersection(self, yaw):
        box = OrientedBox(center=(1.0, -2.0), yaw=yaw, length=4.0, width=2.0)
        assert box.intersects(box)

    def test_to_local_roundtrip(self):
        box = OrientedBox(center=(5.0, 2.0), yaw=0.7, length=4.0, width=2.0)
        local = box.to_local(np.array([5.0, 2.0]))
        np.testing.assert_allclose(local, [0.0, 0.0], atol=1e-12)


class TestPolyline:
    def setup_method(self):
        xs = np.linspace(0.0, 100.0, 51)
        self.points = np.stack([xs, np.zeros_like(xs)], axis=1)
        self.arclength = polyline_arclength(self.points)

    def test_arclength_total(self):
        assert self.arclength[-1] == pytest.approx(100.0)

    def test_arclength_monotone(self):
        assert np.all(np.diff(self.arclength) > 0)

    def test_project_on_line(self):
        s, d, yaw = project_to_polyline(
            np.array([37.0, 2.5]), self.points, self.arclength
        )
        assert s == pytest.approx(37.0)
        assert d == pytest.approx(2.5)
        assert yaw == pytest.approx(0.0)

    def test_project_negative_offset(self):
        _, d, _ = project_to_polyline(
            np.array([10.0, -1.0]), self.points, self.arclength
        )
        assert d == pytest.approx(-1.0)

    def test_project_clamps_before_start(self):
        s, _, _ = project_to_polyline(
            np.array([-5.0, 0.0]), self.points, self.arclength
        )
        assert s == pytest.approx(0.0)

    def test_interpolate_roundtrip(self):
        position, yaw = interpolate_polyline(42.0, self.points, self.arclength)
        np.testing.assert_allclose(position, [42.0, 0.0], atol=1e-9)
        assert yaw == pytest.approx(0.0)

    def test_interpolate_clamps(self):
        position, _ = interpolate_polyline(1e9, self.points, self.arclength)
        np.testing.assert_allclose(position, [100.0, 0.0])

    @given(st.floats(0.0, 100.0))
    @settings(max_examples=50)
    def test_project_interpolate_consistency(self, s):
        position, _ = interpolate_polyline(s, self.points, self.arclength)
        s2, d2, _ = project_to_polyline(position, self.points, self.arclength)
        assert s2 == pytest.approx(s, abs=1e-6)
        assert d2 == pytest.approx(0.0, abs=1e-9)
