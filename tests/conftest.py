"""Shared pytest fixtures."""

import numpy as np
import pytest

from repro.sim import Road, RoadConfig, ScenarioConfig, make_world


@pytest.fixture(scope="session")
def road() -> Road:
    return Road.straight(RoadConfig())


@pytest.fixture()
def world():
    return make_world(rng=np.random.default_rng(1234))


@pytest.fixture()
def quiet_world():
    """World without spawn jitter for exactly repeatable trajectories."""
    return make_world(rng=None)


@pytest.fixture(scope="session")
def scenario_config() -> ScenarioConfig:
    return ScenarioConfig()
