"""Shared pytest fixtures and the chaos-suite gate."""

import os

import numpy as np
import pytest

from repro.sim import Road, RoadConfig, ScenarioConfig, make_world


def pytest_collection_modifyitems(config, items):
    """Keep chaos tests out of the default (tier-1) run.

    They spawn subprocesses, SIGKILL them, and corrupt files on purpose
    — opt in with ``REPRO_CHAOS=1`` or an explicit ``-m chaos``.
    """
    if os.environ.get("REPRO_CHAOS", "").strip().lower() in (
        "1", "true", "yes", "on"
    ):
        return
    if "chaos" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(
        reason="chaos suite (set REPRO_CHAOS=1 or pass -m chaos)"
    )
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def road() -> Road:
    return Road.straight(RoadConfig())


@pytest.fixture()
def world():
    return make_world(rng=np.random.default_rng(1234))


@pytest.fixture()
def quiet_world():
    """World without spawn jitter for exactly repeatable trajectories."""
    return make_world(rng=None)


@pytest.fixture(scope="session")
def scenario_config() -> ScenarioConfig:
    return ScenarioConfig()
