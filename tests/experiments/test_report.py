"""Test for the EXPERIMENTS.md report generator (tiny protocol)."""

import pytest

from repro.experiments import registry

REQUIRED = [
    registry.E2E_DRIVER,
    registry.CAMERA_ATTACKER_E2E,
    registry.CAMERA_ATTACKER_MODULAR,
    registry.IMU_ATTACKER,
    registry.FINETUNED_RHO_11,
    registry.FINETUNED_RHO_2,
    registry.PNN_COLUMN,
]

needs_artifacts = pytest.mark.skipif(
    not all(registry.has_artifact(name) for name in REQUIRED),
    reason="shipped artifacts missing; run examples/train_all.py",
)


@needs_artifacts
def test_report_generation_tiny(tmp_path):
    from repro.experiments.report import generate

    path = generate(tmp_path / "EXPERIMENTS.md", episodes=2, rounds=1)
    text = path.read_text()
    assert "# EXPERIMENTS" in text
    assert "Fig. 4" in text
    assert "Fig. 8" in text
    assert "| paper claim | measured | status |" in text
    # Every section rendered a table.
    assert text.count("```") >= 10
