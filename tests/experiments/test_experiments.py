"""Tests for experiment drivers (tiny protocols over shipped artifacts)."""

import numpy as np
import pytest

from repro.experiments import registry
from repro.experiments.common import Table, fmt

REQUIRED = [
    registry.E2E_DRIVER,
    registry.CAMERA_ATTACKER_E2E,
    registry.CAMERA_ATTACKER_MODULAR,
    registry.IMU_ATTACKER,
    registry.FINETUNED_RHO_11,
    registry.FINETUNED_RHO_2,
    registry.PNN_COLUMN,
]

needs_artifacts = pytest.mark.skipif(
    not all(registry.has_artifact(name) for name in REQUIRED),
    reason="shipped artifacts missing; run examples/train_all.py",
)


class TestTable:
    def test_render_contains_cells(self):
        table = Table("t", ["a", "b"])
        table.add("x", 1)
        text = table.render()
        assert "x" in text and "1" in text and "t" in text

    def test_fmt(self):
        assert fmt(1.234, 1) == "1.2"
        assert fmt(1.0) == "1.00"


class TestRegistry:
    def test_artifacts_dir_exists(self):
        assert registry.artifacts_dir().name == "artifacts"

    def test_missing_artifact_raises(self):
        with pytest.raises(FileNotFoundError):
            registry.artifact_path("nope_does_not_exist.npz")

    def test_has_artifact_false_for_missing(self):
        assert not registry.has_artifact("nope_does_not_exist.npz")

    @needs_artifacts
    def test_victims_constructible(self, quiet_world):
        assert registry.modular_victim(quiet_world) is not None
        assert registry.e2e_victim(quiet_world) is not None
        assert registry.finetuned_victim_rho11(quiet_world) is not None
        assert registry.finetuned_victim_rho2(quiet_world) is not None
        pnn = registry.pnn_victim(quiet_world, sigma=0.2, budget=0.5)
        assert pnn.believed_budget == 0.5

    @needs_artifacts
    def test_e2e_victims_share_weights(self, quiet_world):
        a = registry.e2e_victim(quiet_world)
        b = registry.e2e_victim(quiet_world)
        assert a.policy is b.policy
        assert a is not b

    @needs_artifacts
    def test_attackers_budget_scaling(self):
        attacker = registry.camera_attacker(0.3)
        assert attacker.budget == 0.3
        assert registry.imu_attacker(0.7).budget == 0.7

    @needs_artifacts
    def test_attacker_per_victim(self):
        a = registry.camera_attacker(1.0, victim="e2e")
        b = registry.camera_attacker(1.0, victim="modular")
        assert a.policy is not b.policy


@needs_artifacts
class TestExperimentDrivers:
    def test_fig4_tiny(self):
        from repro.experiments import fig4

        result = fig4.run(n_episodes=2, budgets=(0.0, 1.0))
        assert len(result.cells) == 4  # 2 attackers x 2 budgets
        cell = result.cell("camera", 1.0)
        assert 0.0 <= cell.success <= 1.0
        assert result.table().render()

    def test_fig4_reward_reduction_positive(self):
        from repro.experiments import fig4

        result = fig4.run(n_episodes=3, budgets=(0.0, 1.0))
        assert result.reward_reduction("camera") > 0.3

    def test_fig5_tiny(self):
        from repro.experiments import fig5

        result = fig5.run(rounds=2, budgets=(0.0, 1.0))
        assert len(result.points) == 8
        assert result.table().render()
        assert result.low_effort_rmse("modular") < 0.1

    def test_fig6_tiny(self):
        from repro.experiments import fig6

        result = fig6.run(
            n_episodes=2,
            budgets=(0.0, 1.0),
            agents=("original", "pnn sigma=0.2"),
        )
        clean_orig = result.cell("original", 0.0).nominal.mean
        clean_pnn = result.cell("pnn sigma=0.2", 0.0).nominal.mean
        # The switcher routes to the original below sigma: identical runs.
        assert clean_pnn == pytest.approx(clean_orig)

    def test_fig7_tiny(self):
        from repro.experiments import fig7

        result = fig7.run(
            rounds=1, budgets=(0.5,), agents=("finetuned rho=1/2",)
        )
        assert result.average_tracking_error("finetuned rho=1/2") >= 0.0
        assert result.table().render()

    def test_fig8_reuses_fig7(self):
        from repro.experiments import fig7, fig8

        f7 = fig7.run(rounds=1, budgets=(1.0,))
        f8 = fig8.run(rounds=1, budgets=(1.0,), fig7=f7)
        assert set(f8.episodes) == {
            "original",
            "finetuned rho=1/11",
            "finetuned rho=1/2",
            "pnn sigma=0.2",
            "pnn sigma=0.4",
        }
        assert f8.table().render()

    def test_headline_tiny(self):
        from repro.experiments import headline

        result = headline.run(n_episodes=2)
        assert result.mean_passed > 5.0
        assert result.camera_reward_reduction > 0.3
        assert result.table().render()

    def test_unknown_agent_rejected(self):
        from repro.experiments.fig6 import victim_factory_for

        with pytest.raises(KeyError):
            victim_factory_for("unknown", 0.0)
