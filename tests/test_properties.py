"""Cross-module property tests on simulator and attack invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.modular import BehaviorPlanner, ModularAgent
from repro.core import InjectionChannel, InjectionChannelConfig, OracleAttacker
from repro.sim import Control, make_world

controls = st.lists(
    st.tuples(st.floats(-1, 1), st.floats(-1, 1)), min_size=5, max_size=40
)


class TestWorldInvariants:
    @given(controls)
    @settings(max_examples=15, deadline=None)
    def test_physics_bounds_hold_for_any_controls(self, sequence):
        world = make_world(rng=None)
        config = world.ego.config
        previous = world.ego.state.position
        for steer, thrust in sequence:
            if world.done:
                break
            world.tick(Control(steer=steer, thrust=thrust))
            state = world.ego.state
            assert 0.0 <= state.speed <= config.max_speed
            # Position advances at most v_max * dt (plus epsilon).
            step = float(np.linalg.norm(state.position - previous))
            assert step <= config.max_speed * world.config.dt + 1e-6
            previous = state.position

    @given(controls)
    @settings(max_examples=10, deadline=None)
    def test_world_stops_at_first_collision(self, sequence):
        world = make_world(rng=None)
        for steer, thrust in sequence:
            if world.done:
                break
            result = world.tick(Control(steer=steer, thrust=thrust))
            if result.collision is not None:
                assert result.done
        assert len(world.collisions) <= 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_episode_metrics_deterministic_per_seed(self, seed):
        def run(seed):
            world = make_world(rng=np.random.default_rng(seed))
            agent = ModularAgent(world.road)
            agent.reset(world)
            while not world.done:
                world.tick(agent.act(world))
            return (world.step_count, world.passed_npcs, world.ego.state.x)

        assert run(seed) == run(seed)

    @given(controls)
    @settings(max_examples=10, deadline=None)
    def test_time_advances_with_steps(self, sequence):
        world = make_world(rng=None)
        for steer, thrust in sequence:
            if world.done:
                break
            result = world.tick(Control(steer=steer, thrust=thrust))
            assert result.time == pytest.approx(
                result.step * world.config.dt
            )


class TestPlannerInvariants:
    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_reference_path_stays_on_road(self, seed):
        world = make_world(rng=np.random.default_rng(seed))
        planner = BehaviorPlanner(world.road)
        planner.reset(world)
        agent = ModularAgent(world.road)
        agent.reset(world)
        while not world.done:
            plan = planner.update(world)
            ego_s, _, _ = world.road.to_frenet(world.ego.state.position)
            for offset in (0.0, 10.0, 25.0):
                d_ref = plan.reference_offset(ego_s + offset)
                assert abs(d_ref) <= world.road.half_width
            world.tick(agent.act(world))


class TestAttackInvariants:
    @given(
        st.lists(st.floats(-3, 3), min_size=1, max_size=50),
        st.floats(0.05, 1.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_channel_effort_never_exceeds_budget(self, actions, budget):
        channel = InjectionChannel(InjectionChannelConfig(budget=budget))
        for action in actions:
            channel.inject(action)
        assert channel.mean_effort <= budget + 1e-9
        assert channel.total_effort <= budget * len(actions) + 1e-9

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_oracle_delta_bounded_by_budget(self, budget):
        world = make_world(rng=None)
        attacker = OracleAttacker(budget=budget)
        attacker.reset(world)
        npc = world.npcs[0].vehicle
        world.ego.teleport(npc.state.x, npc.state.y - 3.5, 0.0, 16.0)
        delta = attacker.delta(world, Control())
        assert abs(delta) <= budget + 1e-12

    @given(st.floats(0.1, 1.0), st.integers(0, 1_000))
    @settings(max_examples=8, deadline=None)
    def test_attack_never_helps_the_victim(self, budget, seed):
        """An attacked episode never earns more driving reward than the
        same-seed nominal episode by more than noise."""
        from repro.eval import run_episode

        nominal = run_episode(
            lambda w: ModularAgent(w.road), seed=seed
        )
        attacked = run_episode(
            lambda w: ModularAgent(w.road),
            attacker=OracleAttacker(budget=budget),
            seed=seed,
        )
        assert attacked.nominal_return <= nominal.nominal_return + 5.0
