"""Span tracer: nesting, aggregation, the @timed decorator, enable/disable."""

import pytest

from repro.telemetry.spans import Tracer, _NULL_SPAN, get_tracer, timed

pytestmark = pytest.mark.telemetry


def test_disabled_tracer_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    assert tracer.span("x") is tracer.span("y") is _NULL_SPAN
    with tracer.span("x"):
        pass
    assert tracer.snapshot() == {}


def test_span_aggregation_counts_and_totals():
    tracer = Tracer(enabled=True)
    for _ in range(5):
        with tracer.span("tick"):
            pass
    snapshot = tracer.snapshot()
    assert snapshot["tick"]["count"] == 5
    assert snapshot["tick"]["total_s"] >= 0.0
    assert snapshot["tick"]["p50_us"] <= snapshot["tick"]["p99_us"]


def test_nested_spans_aggregate_under_slash_paths():
    tracer = Tracer(enabled=True)
    with tracer.span("episode"):
        with tracer.span("world.tick"):
            pass
        with tracer.span("world.tick"):
            pass
    snapshot = tracer.snapshot()
    assert snapshot["episode"]["count"] == 1
    assert snapshot["episode/world.tick"]["count"] == 2
    # the stack unwound fully
    assert tracer._stack() == []


def test_stack_unwinds_on_exception():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            raise RuntimeError("boom")
    assert tracer._stack() == []
    assert tracer.snapshot()["outer"]["count"] == 1


def test_timed_decorator_uses_global_tracer():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    try:
        @timed("math.square")
        def square(x):
            return x * x

        assert square(3) == 9
        assert tracer.snapshot()["math.square"]["count"] == 1
        tracer.disable()
        assert square(4) == 16  # falls through, no new record
        assert tracer.snapshot()["math.square"]["count"] == 1
    finally:
        tracer.reset()
        tracer.enabled = was_enabled


def test_record_events_collects_chrome_exportable_tuples():
    tracer = Tracer(enabled=True)
    tracer.record_events = True
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [name for name, _, _ in tracer.events] == ["a/b", "a"]
    for _, start, duration in tracer.events:
        assert start > 0.0 and duration >= 0.0


def test_reset_clears_stats_and_events():
    tracer = Tracer(enabled=True)
    tracer.record_events = True
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.snapshot() == {} and tracer.events == []
