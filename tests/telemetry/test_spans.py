"""Span tracer: nesting, aggregation, the @timed decorator, enable/disable."""

import time

import pytest

from repro.telemetry.spans import (
    SpanProbe,
    Tracer,
    _NULL_SPAN,
    get_tracer,
    timed,
)

pytestmark = pytest.mark.telemetry


def test_disabled_tracer_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    assert tracer.span("x") is tracer.span("y") is _NULL_SPAN
    with tracer.span("x"):
        pass
    assert tracer.snapshot() == {}


def test_span_aggregation_counts_and_totals():
    tracer = Tracer(enabled=True)
    for _ in range(5):
        with tracer.span("tick"):
            pass
    snapshot = tracer.snapshot()
    assert snapshot["tick"]["count"] == 5
    assert snapshot["tick"]["total_s"] >= 0.0
    assert snapshot["tick"]["p50_us"] <= snapshot["tick"]["p99_us"]


def test_nested_spans_aggregate_under_slash_paths():
    tracer = Tracer(enabled=True)
    with tracer.span("episode"):
        with tracer.span("world.tick"):
            pass
        with tracer.span("world.tick"):
            pass
    snapshot = tracer.snapshot()
    assert snapshot["episode"]["count"] == 1
    assert snapshot["episode/world.tick"]["count"] == 2
    # the stack unwound fully
    assert tracer._stack() == []


def test_stack_unwinds_on_exception():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            raise RuntimeError("boom")
    assert tracer._stack() == []
    assert tracer.snapshot()["outer"]["count"] == 1


def test_timed_decorator_uses_global_tracer():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    try:
        @timed("math.square")
        def square(x):
            return x * x

        assert square(3) == 9
        assert tracer.snapshot()["math.square"]["count"] == 1
        tracer.disable()
        assert square(4) == 16  # falls through, no new record
        assert tracer.snapshot()["math.square"]["count"] == 1
    finally:
        tracer.reset()
        tracer.enabled = was_enabled


def test_record_events_collects_chrome_exportable_tuples():
    tracer = Tracer(enabled=True)
    tracer.record_events = True
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [name for name, _, _ in tracer.events] == ["a/b", "a"]
    for _, start, duration in tracer.events:
        assert start > 0.0 and duration >= 0.0


def test_reset_clears_stats_and_events():
    tracer = Tracer(enabled=True)
    tracer.record_events = True
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.snapshot() == {} and tracer.events == []
    assert tracer.events_dropped == 0


def test_self_time_bookkeeping_is_exact():
    tracer = Tracer(enabled=True)
    with tracer.span("episode"):
        for _ in range(3):
            with tracer.span("world.tick"):
                time.sleep(0.002)
    snapshot = tracer.snapshot()
    parent = snapshot["episode"]
    child = snapshot["episode/world.tick"]
    # leaf spans: self == inclusive
    assert child["self_total_s"] == pytest.approx(child["total_s"])
    # parent: self == inclusive - direct children, from exact bookkeeping
    assert parent["self_total_s"] == pytest.approx(
        parent["total_s"] - child["total_s"], abs=5e-6
    )
    assert parent["self_mean_us"] <= parent["mean_us"]


def test_self_time_survives_slash_in_span_names():
    # Path parsing would mis-parent "a/b" opened at the root; the exit
    # bookkeeping keys on the actual stack, so self time stays exact.
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("a/b"):
            time.sleep(0.002)
    snapshot = tracer.snapshot()
    assert snapshot["outer"]["self_total_s"] == pytest.approx(
        snapshot["outer"]["total_s"] - snapshot["outer/a/b"]["total_s"],
        abs=5e-6,
    )


def test_event_cap_counts_drops_and_marks_chrome_trace(monkeypatch):
    monkeypatch.setattr("repro.telemetry.spans.MAX_RAW_EVENTS", 2)
    tracer = Tracer(enabled=True)
    tracer.record_events = True
    for _ in range(5):
        with tracer.span("tick"):
            pass
    assert len(tracer.events) == 2
    assert tracer.events_dropped == 3
    # aggregates still cover every span
    assert tracer.snapshot()["tick"]["count"] == 5
    document = tracer.chrome_trace()
    markers = [
        e for e in document["traceEvents"] if e["name"] == "spans_truncated"
    ]
    assert len(markers) == 1
    assert markers[0]["args"]["dropped"] == 3
    # the marker lands after the last recorded slice
    last = max(
        e["ts"] + e.get("dur", 0.0)
        for e in document["traceEvents"]
        if e["name"] != "spans_truncated"
    )
    assert markers[0]["ts"] >= last


def test_probes_see_enter_exit_with_token_and_duration():
    seen = []

    class Probe(SpanProbe):
        def on_enter(self, path):
            seen.append(("enter", path))
            return len(seen)

        def on_exit(self, path, token, duration):
            seen.append(("exit", path, token, duration))

    tracer = Tracer(enabled=True)
    probe = Probe()
    tracer.add_probe(probe)
    tracer.add_probe(probe)  # idempotent
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert seen[0] == ("enter", "a")
    assert seen[1] == ("enter", "a/b")
    assert seen[2][:3] == ("exit", "a/b", 2) and seen[2][3] >= 0.0
    assert seen[3][:3] == ("exit", "a", 1)
    tracer.remove_probe(probe)
    with tracer.span("c"):
        pass
    assert len(seen) == 4  # removed probe no longer called
