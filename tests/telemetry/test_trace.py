"""Trace writer: JSONL round-trip, schema validation, Chrome export."""

import json

import pytest

from repro.telemetry.trace import (
    TraceWriter,
    default_writer,
    read_trace,
    reset_default_writer,
    to_chrome_trace,
    validate_event,
    validate_trace,
)

pytestmark = pytest.mark.telemetry


def _tick(**overrides):
    event = {
        "event": "tick", "episode": 0, "tick": 1, "t": 0.1, "delta": 0.0,
        "x": 1.0, "y": 2.0, "yaw": 0.0, "speed": 12.0,
    }
    event.update(overrides)
    return event


def test_writer_creates_missing_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "trace.jsonl"
    with TraceWriter(path) as writer:
        writer.emit("episode_start", episode=0, seed=1)
    assert [e["event"] for e in read_trace(path)] == ["episode_start"]


def test_jsonl_roundtrip_through_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(path) as writer:
        writer.emit("episode_start", episode=0, seed=7)
        writer.emit(
            "tick", episode=0, tick=1, t=0.1, delta=0.05,
            x=1.0, y=-2.0, yaw=0.01, speed=15.5,
        )
        writer.emit("episode_end", episode=0, steps=1, duration=0.1,
                    collision=None)
    events = read_trace(path)
    assert [e["event"] for e in events] == [
        "episode_start", "tick", "episode_end",
    ]
    assert events[1]["delta"] == 0.05
    assert validate_trace(path) == []


def test_in_memory_writer_keeps_events():
    writer = TraceWriter()
    writer.emit("train_step", loop="sac-driver", step=3, reward=-0.5)
    assert writer.count == 1
    assert writer.events[0]["step"] == 3
    assert validate_trace(writer.events) == []


def test_numpy_scalars_serialize(tmp_path):
    import numpy as np

    path = tmp_path / "np.jsonl"
    with TraceWriter(path) as writer:
        writer.emit("train_step", loop="sac", step=int(np.int64(1)),
                    reward=np.float64(0.25))
    assert read_trace(path)[0]["reward"] == 0.25


def test_validate_event_flags_missing_and_mistyped_fields():
    assert validate_event(_tick()) == []
    errors = validate_event({"event": "tick", "episode": 0})
    assert any("missing required field" in e for e in errors)
    errors = validate_event(_tick(speed="fast"))
    assert any("'speed'" in e for e in errors)
    assert validate_event({"event": "warp_drive"}) == [
        "unknown event kind 'warp_drive'"
    ]
    assert validate_event([1, 2]) != []


def test_bool_is_not_a_number():
    # bool subclasses int; the schema must still reject it for numerics.
    errors = validate_event(_tick(delta=True))
    assert any("'delta'" in e for e in errors)


def test_extra_fields_are_allowed():
    assert validate_event(_tick(custom="annotation")) == []


def test_emit_time_validation():
    writer = TraceWriter(validate=True)
    with pytest.raises(ValueError):
        writer.emit("tick", episode=0)  # missing required fields


def test_validate_trace_reports_line_indices(tmp_path):
    path = tmp_path / "bad.jsonl"
    with TraceWriter(path) as writer:
        writer.emit("episode_start", episode=0, seed=1)
        writer.emit("bogus_kind")
    errors = validate_trace(path)
    assert len(errors) == 1 and errors[0].startswith("event 1:")


def test_chrome_export_from_span_tuples(tmp_path):
    out = tmp_path / "chrome.json"
    document = to_chrome_trace(
        [("episode/world.tick", 1.0, 0.002), ("episode", 0.9, 0.5)], out
    )
    slices = document["traceEvents"]
    assert slices[0] == {
        "name": "episode/world.tick", "ph": "X", "ts": 1e6, "dur": 2000.0,
        "pid": 0, "tid": 0,
    }
    assert json.loads(out.read_text())["traceEvents"] == slices


def test_chrome_export_from_trace_events():
    document = to_chrome_trace(
        [
            {"event": "span", "name": "sac.update", "start_s": 0.5,
             "duration_s": 0.001},
            _tick(),
        ]
    )
    complete, instant = document["traceEvents"]
    assert complete["ph"] == "X" and complete["name"] == "sac.update"
    assert instant["ph"] == "i" and instant["name"] == "tick"


def test_default_writer_reads_env(tmp_path, monkeypatch):
    reset_default_writer()
    try:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert default_writer() is None
        reset_default_writer()
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(target))
        writer = default_writer()
        assert writer is not None and writer is default_writer()
        writer.emit("episode_start", episode=0, seed=0)
        writer.flush()
        assert read_trace(target)[0]["event"] == "episode_start"
    finally:
        reset_default_writer()
