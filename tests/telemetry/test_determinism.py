"""Telemetry must be a pure observer: instrumented runs are bit-identical."""

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episode
from repro.eval.recorder import record_episode
from repro.telemetry.log import configure
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.telemetry

SEED = 11


@pytest.fixture()
def full_telemetry():
    """Enable every telemetry layer; restore the previous state after."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable(record_events=True)
    configure(level="debug", force=True)
    yield TraceWriter()  # in-memory, handed to the runner by the test
    tracer.record_events = False
    tracer.reset()
    if not was_enabled:
        tracer.disable()
    configure(force=True)


def _victim(world):
    return ModularAgent(world.road)


def test_record_episode_trajectory_bit_identical(full_telemetry):
    baseline, base_world = record_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
    )
    instrumented, inst_world = record_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED,
        trace=full_telemetry,
    )
    assert instrumented.to_csv() == baseline.to_csv()
    assert instrumented.to_jsonl() == baseline.to_jsonl()
    assert (base_world.collisions == inst_world.collisions)
    # the instrumented run really did emit a trace
    assert full_telemetry.count >= len(baseline)


def test_run_episode_result_identical_under_telemetry(full_telemetry):
    baseline = run_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
    )
    instrumented = run_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED,
        trace=full_telemetry,
    )
    assert instrumented == baseline  # frozen dataclass: exact float equality


def test_metrics_counters_do_not_feed_back():
    # Polluting the registry beforehand must not change outcomes either.
    registry = get_registry()
    registry.counter("episodes_total").inc(1000)
    first = run_episode(_victim, attacker=OracleAttacker(budget=1.0),
                        seed=SEED)
    second = run_episode(_victim, attacker=OracleAttacker(budget=1.0),
                         seed=SEED)
    assert first == second
