"""Telemetry must be a pure observer: instrumented runs are bit-identical."""

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episode
from repro.eval.recorder import record_episode
from repro.telemetry.log import configure
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.telemetry.trace import TraceWriter

pytestmark = pytest.mark.telemetry

SEED = 11


@pytest.fixture()
def full_telemetry():
    """Enable every telemetry layer; restore the previous state after."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable(record_events=True)
    configure(level="debug", force=True)
    yield TraceWriter()  # in-memory, handed to the runner by the test
    tracer.record_events = False
    tracer.reset()
    if not was_enabled:
        tracer.disable()
    configure(force=True)


def _victim(world):
    return ModularAgent(world.road)


def test_record_episode_trajectory_bit_identical(full_telemetry):
    baseline, base_world = record_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
    )
    instrumented, inst_world = record_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED,
        trace=full_telemetry,
    )
    assert instrumented.to_csv() == baseline.to_csv()
    assert instrumented.to_jsonl() == baseline.to_jsonl()
    assert (base_world.collisions == inst_world.collisions)
    # the instrumented run really did emit a trace
    assert full_telemetry.count >= len(baseline)


def test_run_episode_result_identical_under_telemetry(full_telemetry):
    baseline = run_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
    )
    instrumented = run_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED,
        trace=full_telemetry,
    )
    assert instrumented == baseline  # frozen dataclass: exact float equality


def test_metrics_counters_do_not_feed_back():
    # Polluting the registry beforehand must not change outcomes either.
    registry = get_registry()
    registry.counter("episodes_total").inc(1000)
    first = run_episode(_victim, attacker=OracleAttacker(budget=1.0),
                        seed=SEED)
    second = run_episode(_victim, attacker=OracleAttacker(budget=1.0),
                         seed=SEED)
    assert first == second


def test_profiling_disabled_by_default_and_zero_footprint():
    # REPRO_PROF is unset in the test environment: no env session runs,
    # the tracer has no probes, and the NN FLOP hook stays cleared — the
    # exact state the bit-identical baselines above were recorded in.
    import os

    from repro.obsv.prof import env_session
    from repro.rl.nn import autograd

    assert os.environ.get("REPRO_PROF") in (None, "", "0")
    assert env_session() is None
    assert get_tracer()._probes == []
    assert autograd.FLOP_HOOK is None


def test_trajectory_bit_identical_under_full_profiling():
    """The profiler is a pure observer: sampler thread, tracemalloc
    probes, and FLOP accounting running together must not change a
    single recorded value."""
    from repro.obsv.prof import ProfileConfig, ProfileSession

    baseline, base_world = record_episode(
        _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
    )
    config = ProfileConfig(hz=250.0, mem=None, flops=True)
    session = ProfileSession(config, reset=True)
    session.start()
    try:
        profiled, prof_world = record_episode(
            _victim, attacker=OracleAttacker(budget=1.0), seed=SEED
        )
    finally:
        report = session.stop()
    assert profiled.to_csv() == baseline.to_csv()
    assert profiled.to_jsonl() == baseline.to_jsonl()
    assert base_world.collisions == prof_world.collisions
    # and the profiler really was live: spans were recorded
    assert report.spans


def test_parallel_sweep_bit_identical_to_serial(tmp_path):
    """Process-pool evaluation is a pure distribution strategy: the same
    seeds produce bit-identical episode results and trace records whether
    they run in one process or across a worker pool."""
    from repro.eval.parallel import run_sweep
    from repro.telemetry.trace import read_trace

    serial = run_sweep(
        n_episodes=4, workers=1, out_dir=tmp_path / "serial",
        run_id="detrun",
    )
    parallel = run_sweep(
        n_episodes=4, workers=2, out_dir=tmp_path / "parallel",
        run_id="detrun",
    )
    # Frozen dataclasses: exact float equality, per episode, in order.
    assert parallel.results == serial.results

    def trajectory(out_dir):
        """Trace records per shard, minus process-dependent stamps.

        ``pid`` differs between runs by construction, ``span`` events
        carry wall-clock timings, and the ``provenance`` preamble is
        run metadata (checked separately below) — none are trajectory.
        Everything else must match bit-for-bit (the serial path shards
        identically: worker k gets seeds k::2).
        """
        records = {}
        for shard in sorted(out_dir.glob("trace.w*.jsonl")):
            events = [
                {key: value for key, value in event.items() if key != "pid"}
                for event in read_trace(shard)
                if event.get("event") not in ("span", "provenance")
            ]
            records[shard.name] = events
        return records

    def provenance(out_dir):
        """One provenance preamble per shard, identical across shards
        and execution strategies once process identity is stripped."""
        blocks = []
        for shard in sorted(out_dir.glob("trace.w*.jsonl")):
            events = list(read_trace(shard))
            stamps = [e for e in events if e["event"] == "provenance"]
            assert len(stamps) == 1, f"{shard.name}: want 1 provenance"
            assert events[0] is stamps[0], (
                f"{shard.name}: provenance must open the shard"
            )
            blocks.append(
                {
                    k: v
                    for k, v in stamps[0].items()
                    if k not in ("pid", "worker")
                }
            )
        return blocks

    serial_two_way = run_sweep(
        n_episodes=4, workers=1, out_dir=tmp_path / "serial2",
        run_id="detrun",
    )
    assert serial_two_way.results == serial.results
    # workers=1 runs every spec serially but shards the trace the same
    # way workers=2 does only when the partition matches; compare the
    # merged per-seed streams instead of assuming equal file layouts.
    serial_events = [
        event
        for events in trajectory(tmp_path / "serial").values()
        for event in events
    ]
    parallel_events = [
        event
        for events in trajectory(tmp_path / "parallel").values()
        for event in events
    ]

    def by_episode(events):
        grouped = {}
        for event in events:
            grouped.setdefault(event.get("episode"), []).append(event)
        return grouped

    serial_grouped = by_episode(serial_events)
    parallel_grouped = by_episode(parallel_events)
    assert set(serial_grouped) == set(parallel_grouped) == {0, 1, 2, 3}

    # Every shard carries the same provenance block regardless of how
    # the sweep was distributed: the pool workers inherit it through the
    # environment, the serial path stamps it directly.
    serial_prov = provenance(tmp_path / "serial")
    parallel_prov = provenance(tmp_path / "parallel")
    assert serial_prov and parallel_prov
    assert all(block == serial_prov[0] for block in parallel_prov)
    for episode in serial_grouped:
        # Worker assignment differs (serial packs everything into w0),
        # so compare after dropping the worker stamp too.
        strip = lambda evs: [
            {k: v for k, v in e.items() if k != "worker"} for e in evs
        ]
        assert strip(parallel_grouped[episode]) == strip(
            serial_grouped[episode]
        ), f"episode {episode} trajectory diverged across the pool"


def test_profiled_episode_replays_faithfully(tmp_path):
    """Seeded replay diff: an episode traced while the sampler and span
    probes were running re-simulates to the recorded trajectory."""
    from repro.obsv import replay as replay_mod
    from repro.obsv.loader import load_episodes
    from repro.obsv.prof import ProfileConfig, ProfileSession

    trace_path = tmp_path / "profiled.jsonl"
    session = ProfileSession(
        ProfileConfig(hz=250.0, mem=None, flops=True), reset=True
    )
    session.start()
    try:
        with TraceWriter(trace_path) as writer:
            run_episode(
                _victim, attacker=OracleAttacker(budget=1.0), seed=SEED,
                trace=writer, episode_id=SEED,
            )
    finally:
        session.stop()
    (episode,) = load_episodes(trace_path)
    report = replay_mod.replay_episode(episode)
    assert report.ok, report.to_markdown()
