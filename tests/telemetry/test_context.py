"""Cross-process trace context: stamping, env inheritance, shards, lanes."""

import json

import pytest

from repro.telemetry.context import (
    ENV_RUN_ID,
    ENV_SPAN_PATH,
    ENV_TRACE_SHARD,
    ENV_WORKER_ID,
    TraceContext,
    current_context,
    find_shards,
    merge_shards,
    new_run_id,
    reset_context,
    set_context,
    shard_path,
    shard_worker,
)
from repro.telemetry.trace import (
    TraceWriter,
    default_writer,
    reset_default_writer,
    to_chrome_trace,
    validate_event,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def clean_context(monkeypatch):
    """Isolate every test from ambient context/env and restore after."""
    for var in (ENV_RUN_ID, ENV_WORKER_ID, ENV_SPAN_PATH, ENV_TRACE_SHARD,
                "REPRO_TRACE"):
        monkeypatch.delenv(var, raising=False)
    reset_context()
    reset_default_writer()
    yield
    reset_context()
    reset_default_writer()


class TestTraceContext:
    def test_stamp_adds_identity_fields(self):
        ctx = TraceContext(run="r1", worker=3, pid=42, parent="sweep")
        record = ctx.stamp({"event": "tick"})
        assert record["run"] == "r1"
        assert record["worker"] == 3
        assert record["pid"] == 42
        assert record["parent"] == "sweep"

    def test_stamp_never_overwrites_existing_fields(self):
        ctx = TraceContext(run="r1", worker=3, pid=42)
        record = ctx.stamp({"event": "tick", "run": "other", "worker": 9})
        assert record["run"] == "other"
        assert record["worker"] == 9

    def test_stamp_without_worker_or_parent_omits_them(self):
        record = TraceContext(run="r1", pid=1).stamp({"event": "tick"})
        assert "worker" not in record and "parent" not in record

    def test_context_fields_pass_schema_validation(self):
        ctx = TraceContext(run="r1", worker=0, pid=7, parent="sweep")
        record = ctx.stamp(
            {"event": "train_step", "loop": "sac", "step": 1}
        )
        assert validate_event(record) == []

    def test_child_env_round_trips_through_environment(self, monkeypatch):
        parent = TraceContext(run="runX", worker=None, parent="sweep")
        for key, value in parent.child_env(worker=5).items():
            monkeypatch.setenv(key, value)
        reset_context()
        child = current_context()
        assert child is not None
        assert child.run == "runX"
        assert child.worker == 5
        assert child.parent == "sweep"

    def test_no_env_means_no_context(self):
        assert current_context() is None

    def test_set_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_RUN_ID, "env-run")
        ctx = TraceContext(run="explicit")
        set_context(ctx)
        assert current_context() is ctx

    def test_new_run_ids_are_distinct(self):
        assert new_run_id() != new_run_id()


class TestShardFiles:
    def test_shard_path_and_worker_round_trip(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        assert shard_path(base, 3).name == "trace.w3.jsonl"
        assert shard_worker(shard_path(base, 3)) == 3
        assert shard_worker(base) is None
        assert shard_worker("trace.w12.jsonl") == 12

    def test_find_shards_ordered_by_worker(self, tmp_path):
        for worker in (10, 2, 0):
            (tmp_path / f"trace.w{worker}.jsonl").write_text("")
        (tmp_path / "plain.jsonl").write_text("")  # not a shard
        names = [p.name for p in find_shards(tmp_path)]
        assert names == ["trace.w0.jsonl", "trace.w2.jsonl",
                         "trace.w10.jsonl"]

    def test_merge_shards_stamps_worker_from_filename(self, tmp_path):
        for worker in (0, 1):
            (tmp_path / f"trace.w{worker}.jsonl").write_text(
                json.dumps({"event": "train_step", "loop": "l", "step": 1})
                + "\n"
            )
        merged = merge_shards(tmp_path)
        assert [event["worker"] for event in merged] == [0, 1]

    def test_merge_shards_keeps_explicit_worker_stamp(self, tmp_path):
        (tmp_path / "trace.w0.jsonl").write_text(
            json.dumps(
                {"event": "train_step", "loop": "l", "step": 1, "worker": 7}
            )
            + "\n"
        )
        (merged,) = merge_shards(tmp_path)
        assert merged["worker"] == 7


class TestWriterStamping:
    def test_writer_inherits_ambient_context(self):
        set_context(TraceContext(run="r1", worker=2, pid=9))
        writer = TraceWriter()
        record = writer.emit("train_step", loop="l", step=1)
        assert record["run"] == "r1"
        assert record["worker"] == 2
        assert record["pid"] == 9

    def test_writer_without_context_emits_unchanged_records(self):
        writer = TraceWriter()
        record = writer.emit("train_step", loop="l", step=1)
        assert set(record) == {"event", "loop", "step"}

    def test_context_none_disables_stamping(self):
        set_context(TraceContext(run="r1", worker=2))
        writer = TraceWriter(context=None)
        record = writer.emit("train_step", loop="l", step=1)
        assert "run" not in record

    def test_default_writer_shards_per_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        monkeypatch.setenv(ENV_RUN_ID, "r1")
        monkeypatch.setenv(ENV_WORKER_ID, "4")
        monkeypatch.setenv(ENV_TRACE_SHARD, "1")
        reset_context()
        reset_default_writer()
        writer = default_writer()
        writer.emit("train_step", loop="l", step=1)
        reset_default_writer()  # close
        shard = tmp_path / "trace.w4.jsonl"
        assert shard.exists()
        (event,) = [
            json.loads(line) for line in shard.read_text().splitlines()
        ]
        assert event["run"] == "r1" and event["worker"] == 4

    def test_default_writer_unsharded_without_flag(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        monkeypatch.setenv(ENV_RUN_ID, "r1")
        monkeypatch.setenv(ENV_WORKER_ID, "4")
        reset_context()
        reset_default_writer()
        default_writer().emit("train_step", loop="l", step=1)
        reset_default_writer()
        assert (tmp_path / "trace.jsonl").exists()


class TestChromeLanes:
    def _span(self, **extra):
        return {
            "event": "span", "name": "tick", "start_s": 0.0,
            "duration_s": 0.5, **extra,
        }

    def test_unstamped_events_keep_lane_zero(self):
        doc = to_chrome_trace([self._span()])
        (sl,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert (sl["pid"], sl["tid"]) == (0, 0)
        assert not [e for e in doc["traceEvents"] if e["ph"] == "M"]

    def test_stamped_spans_get_worker_lanes_and_metadata(self):
        events = [
            self._span(run="r1", worker=0, pid=100),
            self._span(run="r1", worker=1, pid=101),
        ]
        doc = to_chrome_trace(events)
        lanes = {
            (e["pid"], e["tid"])
            for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert lanes == {(100, 0), (101, 1)}
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            "worker 0 (pid 100) — run r1",
            "worker 1 (pid 101) — run r1",
        }

    def test_parent_path_prefixes_span_names(self):
        doc = to_chrome_trace(
            [self._span(worker=0, pid=1, parent="sweep")]
        )
        (sl,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert sl["name"] == "sweep/tick"

    def test_metadata_precedes_slices(self):
        doc = to_chrome_trace([self._span(worker=0, pid=1)])
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.index("M") < phases.index("X")
