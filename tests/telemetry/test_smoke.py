"""Fast end-to-end smoke: one instrumented episode, schema-valid JSONL out."""

import pytest

from repro.agents.modular import ModularAgent
from repro.core.attackers import OracleAttacker
from repro.eval.episodes import run_episode
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer
from repro.telemetry.trace import TraceWriter, validate_trace

pytestmark = pytest.mark.telemetry


@pytest.fixture()
def spans_enabled():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    yield tracer
    tracer.reset()
    if not was_enabled:
        tracer.disable()


def test_instrumented_episode_emits_schema_valid_trace(spans_enabled):
    registry = get_registry()
    episodes_before = registry.counter("episodes_total").value
    writer = TraceWriter()
    result = run_episode(
        lambda w: ModularAgent(w.road),
        attacker=OracleAttacker(budget=1.0),
        seed=3,
        trace=writer,
        episode_id=3,
    )

    # Every emitted event passes the schema checker.
    assert validate_trace(writer.events) == []

    # Envelope: the provenance preamble, then one start, one end, one
    # tick record per control step.
    kinds = [event["event"] for event in writer.events]
    assert kinds[0] == "provenance"
    assert kinds[1] == "episode_start" and kinds[-1] == "episode_end"
    ticks = [event for event in writer.events if event["event"] == "tick"]
    assert len(ticks) == result.steps
    assert [t["tick"] for t in ticks] == list(range(1, result.steps + 1))

    # The end record mirrors the measured EpisodeResult.
    end = writer.events[-1]
    assert end["steps"] == result.steps
    assert end["nominal_return"] == pytest.approx(result.nominal_return)
    expected_kind = (
        result.collision.kind.name if result.collision is not None else None
    )
    assert end["collision"] == expected_kind

    # Metrics moved: the episode was counted, spans were recorded.
    assert registry.counter("episodes_total").value == episodes_before + 1
    span_paths = spans_enabled.snapshot()
    assert any(path.endswith("world.tick") for path in span_paths)
    assert any(path.startswith("episode") for path in span_paths)


def test_oracle_attack_activations_are_counted(spans_enabled):
    registry = get_registry()
    active_before = registry.counter("attack_active_ticks_total").value
    result = run_episode(
        lambda w: ModularAgent(w.road),
        attacker=OracleAttacker(budget=1.0),
        seed=3,
        trace=TraceWriter(),
    )
    gained = registry.counter("attack_active_ticks_total").value - active_before
    assert 0 < gained <= result.steps
