"""Bounded-memory histograms: deterministic reservoir sampling past a cap."""

import numpy as np
import pytest

from repro.telemetry.metrics import Histogram, MetricsRegistry

pytestmark = pytest.mark.telemetry


class TestUncappedBehaviour:
    def test_default_stores_everything_exactly(self):
        hist = Histogram()
        values = np.sin(np.arange(1000) * 0.1) * 10.0
        for v in values:
            hist.observe(v)
        assert hist.count == 1000
        assert hist.sample_size == 1000
        summary = hist.summary()
        assert summary["count"] == 1000
        assert summary["mean"] == pytest.approx(float(values.mean()))
        assert summary["min"] == float(values.min())
        assert summary["max"] == float(values.max())
        assert "samples" not in summary
        assert summary["p50"] == pytest.approx(
            float(np.percentile(values, 50.0))
        )

    def test_cap_larger_than_n_is_exact(self):
        capped = Histogram(max_samples=5000)
        plain = Histogram()
        for v in range(1000):
            capped.observe(float(v))
            plain.observe(float(v))
        assert capped.summary() == plain.summary()


class TestCappedBehaviour:
    def test_reservoir_bounds_memory(self):
        hist = Histogram(max_samples=100)
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.count == 10_000
        assert hist.sample_size == 100
        assert len(hist.values) == 100

    def test_capped_scalar_stats_stay_exact(self):
        values = np.linspace(-50.0, 50.0, 5000)
        hist = Histogram(max_samples=64)
        for v in values:
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 5000
        assert summary["samples"] == 64
        assert summary["sum"] == pytest.approx(float(values.sum()), abs=1e-6)
        assert summary["mean"] == pytest.approx(float(values.mean()))
        assert summary["min"] == float(values.min())
        assert summary["max"] == float(values.max())
        # Percentiles are estimates from the reservoir but must stay in
        # the observed range and roughly ordered.
        assert summary["min"] <= summary["p50"] <= summary["max"]
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_reservoir_is_deterministic(self):
        def run():
            hist = Histogram(max_samples=32)
            for v in range(2000):
                hist.observe(float(v * 7 % 997))
            return hist.summary(), hist.values.tolist()

        first, second = run(), run()
        assert first == second

    def test_reservoir_never_touches_global_rng(self):
        np.random.seed(42)
        before = np.random.get_state()[1].copy()
        hist = Histogram(max_samples=16)
        for v in range(500):
            hist.observe(float(v))
        import random

        state = random.getstate()
        hist.observe(1.0)
        assert random.getstate() == state
        assert (np.random.get_state()[1] == before).all()

    def test_env_cap_applies_to_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_HIST_MAX_SAMPLES", "8")
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.sample_size == 8

    def test_env_cap_garbage_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_HIST_MAX_SAMPLES", "not-a-number")
        hist = Histogram()
        for v in range(300):
            hist.observe(float(v))
        assert hist.sample_size == 300

    def test_empty_summary_unchanged(self):
        assert Histogram(max_samples=4).summary() == {"count": 0}
