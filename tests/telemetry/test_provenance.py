"""Tests for run provenance: collection, stamping, propagation."""

import json

import numpy as np
import pytest

from repro.sim.config import ScenarioConfig
from repro.telemetry.provenance import (
    ENV_PROVENANCE,
    Provenance,
    checkpoint_checksum,
    collect,
    config_hash,
    env_snapshot,
    git_revision,
    reset_git_cache,
    scan_provenance,
    stamp_provenance,
)
from repro.telemetry.trace import TraceWriter, validate_event

pytestmark = pytest.mark.telemetry


class TestGitRevision:
    def test_reports_this_checkout(self):
        reset_git_cache()
        sha, dirty = git_revision()
        assert sha != "" and isinstance(dirty, bool)
        if sha != "unknown":
            assert len(sha) == 40

    def test_cached_per_process(self):
        reset_git_cache()
        assert git_revision() is git_revision()

    def test_non_checkout_degrades(self, tmp_path):
        sha, dirty = git_revision(tmp_path)
        assert (sha, dirty) == ("unknown", False)


class TestConfigHash:
    def test_none_means_default_scenario(self):
        assert config_hash(None) == config_hash(ScenarioConfig())

    def test_sensitive_to_any_field(self):
        default = config_hash(ScenarioConfig())
        changed = config_hash(ScenarioConfig(dt=0.05))
        assert default != changed
        assert len(default) == 64

    def test_deterministic(self):
        assert config_hash(ScenarioConfig()) == config_hash(ScenarioConfig())


class TestCheckpointChecksum:
    def test_reads_embedded_checksum_without_arrays(self, tmp_path):
        from repro.utils.serialization import load_checkpoint, save_checkpoint

        path = tmp_path / "weights.npz"
        save_checkpoint(path, {"w": np.arange(6.0).reshape(2, 3)})
        checksum = checkpoint_checksum(path)
        assert checksum is not None and checksum.startswith("sha256:")
        # Same value the loader verifies against.
        load_checkpoint(path)  # does not raise => checksum is the real one

    def test_legacy_npz_falls_back_to_recompute(self, tmp_path):
        from repro.utils.serialization import checksum_arrays

        path = tmp_path / "legacy.npz"
        arrays = {"w": np.ones(4)}
        np.savez(path, **arrays)
        assert checkpoint_checksum(path) == (
            f"sha256:{checksum_arrays(arrays)}"
        )

    def test_missing_file_is_none(self, tmp_path):
        assert checkpoint_checksum(tmp_path / "nope.npz") is None


class TestCollect:
    def test_fresh_block_has_all_fields(self, monkeypatch):
        monkeypatch.delenv(ENV_PROVENANCE, raising=False)
        monkeypatch.setenv("REPRO_TEST_KNOB", "1")
        block = collect()
        assert block.config_hash == config_hash(None)
        assert block.env.get("REPRO_TEST_KNOB") == "1"
        assert ENV_PROVENANCE not in block.env
        assert block.python and block.numpy

    def test_inherited_env_block_returned_verbatim(self, monkeypatch):
        parent = Provenance(
            git_sha="f" * 40, git_dirty=True, config_hash="abc",
            weights={"e2e_driver.npz": "sha256:123"},
        )
        monkeypatch.setenv(
            ENV_PROVENANCE, parent.child_env()[ENV_PROVENANCE]
        )
        child = collect(config=ScenarioConfig(dt=0.01))
        assert child == parent  # config argument ignored: stamp inherited

    def test_malformed_env_falls_back_to_fresh(self, monkeypatch):
        monkeypatch.setenv(ENV_PROVENANCE, "{not json")
        block = collect()
        assert block.config_hash == config_hash(None)

    def test_weights_checksums_resolved_and_missing_dropped(
        self, tmp_path, monkeypatch
    ):
        from repro.utils.serialization import save_checkpoint

        monkeypatch.delenv(ENV_PROVENANCE, raising=False)
        path = tmp_path / "w.npz"
        save_checkpoint(path, {"w": np.ones(2)})
        block = collect(weights={
            "present": path,
            "missing": tmp_path / "gone.npz",
            "precomputed": "sha256:deadbeef",
        })
        assert set(block.weights) == {"present", "precomputed"}
        assert block.weights["precomputed"] == "sha256:deadbeef"


class TestEnvSnapshot:
    def test_only_repro_vars_and_no_payload(self, monkeypatch):
        monkeypatch.setenv("REPRO_FOO", "x")
        monkeypatch.setenv("NOT_REPRO", "y")
        monkeypatch.setenv(ENV_PROVENANCE, "{}")
        snap = env_snapshot()
        assert snap.get("REPRO_FOO") == "x"
        assert "NOT_REPRO" not in snap
        assert ENV_PROVENANCE not in snap


class TestStamping:
    def test_one_event_per_writer_and_schema_valid(self, monkeypatch):
        monkeypatch.delenv(ENV_PROVENANCE, raising=False)
        writer = TraceWriter(None)
        record = stamp_provenance(writer, ScenarioConfig())
        assert record is not None
        assert stamp_provenance(writer, ScenarioConfig()) is None
        events = [e for e in writer.events if e["event"] == "provenance"]
        assert len(events) == 1
        assert validate_event(json.loads(json.dumps(events[0]))) == []

    def test_run_episode_stamps_before_episode_start(self):
        from repro.agents.modular import ModularAgent
        from repro.eval.episodes import run_episode

        writer = TraceWriter(None)
        for seed in (0, 1):
            run_episode(
                lambda w: ModularAgent(w.road), seed=seed,
                trace=writer, episode_id=seed,
            )
        kinds = [e["event"] for e in writer.events]
        assert kinds[0] == "provenance"
        assert kinds.count("provenance") == 1  # idempotent across episodes
        assert scan_provenance(writer.events)["config_hash"] == (
            config_hash(None)
        )

    def test_roundtrip_json(self):
        block = collect()
        assert Provenance.from_json(block.to_json()) == block
