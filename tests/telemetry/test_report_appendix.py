"""The report's telemetry appendix renders spans + counters and dumps JSON."""

import json

import pytest

from repro.experiments.report import telemetry_appendix
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer, span

pytestmark = pytest.mark.telemetry


@pytest.fixture()
def populated_telemetry():
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    registry = get_registry()
    registry.counter("appendix_demo_total", kind="SIDE").inc(3)
    with span("appendix.outer"):
        with span("inner"):
            pass
    yield
    tracer.reset()
    if not was_enabled:
        tracer.disable()


def test_appendix_renders_spans_counters_and_metrics_json(
    populated_telemetry, tmp_path
):
    metrics_path = tmp_path / "EXPERIMENTS_metrics.json"
    lines = telemetry_appendix(metrics_path)
    text = "\n".join(lines)

    assert lines[0] == "## Timing & counters (telemetry appendix)"
    assert "`appendix.outer`" in text
    assert "`appendix.outer/inner`" in text  # nested path reads as call-tree
    assert "`appendix_demo_total{kind=SIDE}` | 3" in text
    assert "EXPERIMENTS_metrics.json" in text

    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["appendix_demo_total{kind=SIDE}"] == 3.0


def test_appendix_without_spans_still_emits_counters(tmp_path):
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.disable()
    get_registry().counter("appendix_plain_total").inc()
    try:
        lines = telemetry_appendix(tmp_path / "m.json")
    finally:
        if was_enabled:
            tracer.enable()
    text = "\n".join(lines)
    assert "| span |" not in text
    assert "`appendix_plain_total`" in text
