"""Structured logger: formatters, levels, suppression cost path."""

import io
import json
import logging

import pytest

from repro.telemetry.log import (
    JsonFormatter,
    KeyValueFormatter,
    configure,
    get_logger,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture()
def capture():
    """Re-point the repro handler at a buffer; restore defaults after."""
    stream = io.StringIO()
    configure(level="debug", json_lines=False, stream=stream, force=True)
    yield stream
    configure(force=True)


def test_key_value_lines(capture):
    log = get_logger("test.kv")
    log.info("episode.end", steps=180, ret=-12.5, agent="modular")
    line = capture.getvalue().strip()
    assert " info " in line
    assert "repro.test.kv" in line
    assert "episode.end" in line
    assert "steps=180" in line and "ret=-12.5" in line and "agent=modular" in line


def test_values_with_spaces_are_quoted(capture):
    get_logger("test.kv").info("evt", msg="two words")
    assert 'msg="two words"' in capture.getvalue()


def test_json_lines_mode():
    stream = io.StringIO()
    configure(level="debug", json_lines=True, stream=stream, force=True)
    try:
        get_logger("test.json").warning("attack.active", delta=0.4)
        payload = json.loads(stream.getvalue().strip())
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.test.json"
        assert payload["event"] == "attack.active"
        assert payload["delta"] == 0.4
        assert isinstance(payload["ts"], float)
    finally:
        configure(force=True)


def test_level_suppression(capture):
    configure(level="warning", stream=capture, force=True)
    log = get_logger("test.levels")
    log.debug("hidden")
    log.info("hidden")
    log.warning("shown")
    lines = capture.getvalue().strip().splitlines()
    assert len(lines) == 1 and "shown" in lines[0]
    assert not log.isEnabledFor(logging.INFO)


def test_configure_is_idempotent():
    first = configure(force=True)
    second = configure()
    assert first is second
    assert len(first.handlers) == 1
