"""Metrics-registry semantics: counters, gauges, histograms, snapshots."""

import json

import numpy as np
import pytest

from repro.telemetry.metrics import MetricsRegistry, get_registry

pytestmark = pytest.mark.telemetry


def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_counter_labels_are_independent_children():
    registry = MetricsRegistry()
    registry.counter("collisions_total", kind="SIDE").inc()
    registry.counter("collisions_total", kind="SIDE").inc()
    registry.counter("collisions_total", kind="REAR").inc()
    snapshot = registry.snapshot()["counters"]
    assert snapshot["collisions_total{kind=SIDE}"] == 2.0
    assert snapshot["collisions_total{kind=REAR}"] == 1.0


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("replay_occupancy")
    gauge.set(10.0)
    gauge.inc(5.0)
    gauge.dec(3.0)
    assert gauge.value == 12.0


def test_histogram_summary_matches_numpy():
    registry = MetricsRegistry()
    hist = registry.histogram("episode_steps")
    values = np.arange(1, 1001, dtype=float)
    for value in values:
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 1000
    assert summary["sum"] == pytest.approx(values.sum())
    assert summary["mean"] == pytest.approx(values.mean())
    assert summary["min"] == 1.0 and summary["max"] == 1000.0
    assert summary["p50"] == pytest.approx(np.percentile(values, 50))
    assert summary["p99"] == pytest.approx(np.percentile(values, 99))


def test_histogram_growth_beyond_initial_capacity():
    hist = MetricsRegistry().histogram("grow")
    for i in range(1000):  # > initial capacity of 256
        hist.observe(float(i))
    assert hist.count == 1000
    assert list(hist.values[:3]) == [0.0, 1.0, 2.0]


def test_empty_histogram_summary():
    assert MetricsRegistry().histogram("empty").summary() == {"count": 0}


def test_snapshot_roundtrips_through_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc(4)
    registry.gauge("b", role="driver").set(-1.5)
    registry.histogram("c").observe(2.0)
    path = tmp_path / "metrics.json"
    text = registry.to_json(path)
    assert json.loads(text) == json.loads(path.read_text())
    decoded = json.loads(text)
    assert decoded["counters"]["a"] == 4.0
    assert decoded["gauges"]["b{role=driver}"] == -1.5
    assert decoded["histograms"]["c"]["count"] == 1


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }
    # get-or-create returns a fresh child after reset
    assert registry.counter("a").value == 0.0


def test_global_registry_is_a_singleton():
    assert get_registry() is get_registry()
