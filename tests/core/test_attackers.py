"""Tests for the attackers: null, oracle baseline, and learned policy."""

import numpy as np
import pytest

from repro.agents.modular import ModularAgent
from repro.core import (
    CameraAttackObservation,
    ImuAttackObservation,
    InjectionChannel,
    InjectionChannelConfig,
    LearnedAttacker,
    NullAttacker,
    OracleAttacker,
)
from repro.rl.policy import SquashedGaussianPolicy
from repro.sim import Control, CollisionKind, make_world


class TestNullAttacker:
    def test_always_zero(self, quiet_world):
        attacker = NullAttacker()
        attacker.reset(quiet_world)
        assert attacker.delta(quiet_world, Control()) == 0.0
        assert attacker.mean_effort == 0.0
        assert attacker.budget == 0.0


class TestOracleAttacker:
    def test_lurks_when_far(self, quiet_world):
        attacker = OracleAttacker(budget=1.0)
        attacker.reset(quiet_world)
        assert attacker.normalized_action(quiet_world) == 0.0

    def test_attacks_when_beside(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        # Ego one lane to the right of the NPC: steer left = negative.
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=0.0, speed=16.0
        )
        attacker = OracleAttacker(budget=1.0)
        attacker.reset(quiet_world)
        assert attacker.normalized_action(quiet_world) == -1.0

    def test_attack_direction_flips_with_side(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y + 3.5, yaw=0.0, speed=16.0
        )
        attacker = OracleAttacker(budget=1.0)
        attacker.reset(quiet_world)
        assert attacker.normalized_action(quiet_world) == 1.0

    def test_respects_max_range(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        quiet_world.ego.teleport(
            npc.state.x - 100.0, npc.state.y - 3.5, yaw=0.0, speed=16.0
        )
        attacker = OracleAttacker(budget=1.0, max_range=25.0)
        attacker.reset(quiet_world)
        assert attacker.normalized_action(quiet_world) == 0.0

    def test_delta_scaled_by_budget(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=0.0, speed=16.0
        )
        attacker = OracleAttacker(budget=0.5)
        attacker.reset(quiet_world)
        assert attacker.delta(quiet_world, Control()) == pytest.approx(-0.5)

    def test_causes_side_collision_at_full_budget(self):
        """The oracle defeats the modular victim at epsilon = 1 (the
        pilot result behind Figs. 4-5)."""
        successes = 0
        for seed in range(5):
            world = make_world(rng=np.random.default_rng(seed + 1))
            victim = ModularAgent(world.road)
            victim.reset(world)
            attacker = OracleAttacker(budget=1.0)
            attacker.reset(world)
            result = None
            while not world.done:
                control = victim.act(world)
                delta = attacker.delta(world, control)
                result = world.tick(control, steer_delta=delta)
            if (
                result.collision is not None
                and result.collision.kind is CollisionKind.SIDE
            ):
                successes += 1
        assert successes >= 3


class TestLearnedAttacker:
    def make(self, budget=1.0, sensor=None):
        sensor = sensor or CameraAttackObservation()
        policy = SquashedGaussianPolicy(
            sensor.observation_dim, 1, (16, 16), np.random.default_rng(0)
        )
        return LearnedAttacker(
            policy,
            sensor,
            channel=InjectionChannel(InjectionChannelConfig(budget=budget)),
        )

    def test_delta_within_budget(self, quiet_world):
        attacker = self.make(budget=0.4)
        attacker.reset(quiet_world)
        for _ in range(5):
            delta = attacker.delta(quiet_world, Control())
            assert abs(delta) <= 0.4
            quiet_world.tick(Control(), steer_delta=delta)

    def test_with_budget_shares_policy(self, quiet_world):
        attacker = self.make(budget=1.0)
        scaled = attacker.with_budget(0.25)
        assert scaled.policy is attacker.policy
        assert scaled.budget == 0.25
        assert attacker.budget == 1.0

    def test_reset_clears_channel(self, quiet_world):
        attacker = self.make()
        attacker.reset(quiet_world)
        attacker.delta(quiet_world, Control())
        attacker.reset(quiet_world)
        assert attacker.channel.steps == 0

    def test_save_load_roundtrip_camera(self, tmp_path, quiet_world):
        attacker = self.make()
        attacker.reset(quiet_world)
        path = attacker.save(tmp_path / "atk")
        # hidden sizes in the checkpoint differ from the default; load
        # reconstructs from metadata.
        loaded = LearnedAttacker.load(path, budget=0.5)
        assert loaded.budget == 0.5
        assert isinstance(loaded.sensor, CameraAttackObservation)
        loaded.reset(quiet_world)
        attacker.reset(quiet_world)
        a = loaded.normalized_action(quiet_world)
        b = attacker.normalized_action(quiet_world)
        assert a == pytest.approx(b)

    def test_save_load_roundtrip_imu(self, tmp_path, quiet_world):
        attacker = self.make(sensor=ImuAttackObservation())
        path = attacker.save(tmp_path / "imu_atk")
        loaded = LearnedAttacker.load(path)
        assert isinstance(loaded.sensor, ImuAttackObservation)


class TestAttackObservations:
    def test_camera_dims_match_policy_camera(self):
        sensor = CameraAttackObservation()
        assert sensor.observation_dim == 3 * 15 * 10

    def test_imu_dims(self):
        sensor = ImuAttackObservation()
        assert sensor.observation_dim == 128

    def test_imu_scaling(self, quiet_world):
        sensor = ImuAttackObservation(accel_scale=1.0, yaw_rate_scale=1.0)
        scaled = ImuAttackObservation(accel_scale=10.0, yaw_rate_scale=10.0)
        quiet_world.tick(Control(thrust=1.0, steer=0.5))
        raw = sensor.observe(quiet_world)
        small = scaled.observe(quiet_world)
        np.testing.assert_allclose(small * 10.0, raw, atol=1e-12)
