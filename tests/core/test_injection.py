"""Tests for the injection channel (budget, quantization, noise, effort)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.injection import (
    ACTIVE_THRESHOLD,
    InjectionChannel,
    InjectionChannelConfig,
)


class TestConfigValidation:
    def test_budget_bounds(self):
        InjectionChannelConfig(budget=0.0)
        InjectionChannelConfig(budget=1.2)
        with pytest.raises(ValueError):
            InjectionChannelConfig(budget=-0.1)
        with pytest.raises(ValueError):
            InjectionChannelConfig(budget=2.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            InjectionChannelConfig(noise_std=-1.0)
        with pytest.raises(ValueError):
            InjectionChannelConfig(quantization=-1.0)


class TestInjection:
    def test_scaling_by_budget(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=0.5))
        assert channel.inject(1.0) == pytest.approx(0.5)
        assert channel.inject(-0.5) == pytest.approx(-0.25)

    def test_action_clipped_before_scaling(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=0.5))
        assert channel.inject(10.0) == pytest.approx(0.5)

    @given(st.floats(-2.0, 2.0), st.floats(0.0, 1.2))
    @settings(max_examples=50)
    def test_never_exceeds_budget(self, action, budget):
        channel = InjectionChannel(InjectionChannelConfig(budget=budget))
        assert abs(channel.inject(action)) <= budget + 1e-12

    def test_quantization(self):
        channel = InjectionChannel(
            InjectionChannelConfig(budget=1.0, quantization=0.25)
        )
        assert channel.inject(0.3) == pytest.approx(0.25)
        assert channel.inject(0.4) == pytest.approx(0.5)

    def test_noise_bounded_by_budget(self):
        channel = InjectionChannel(
            InjectionChannelConfig(budget=0.5, noise_std=1.0),
            rng=np.random.default_rng(0),
        )
        for _ in range(100):
            assert abs(channel.inject(1.0)) <= 0.5

    def test_zero_budget_always_zero(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=0.0))
        assert channel.inject(1.0) == 0.0


class TestEffortAccounting:
    def test_effort_over_active_steps_only(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=1.0))
        channel.inject(1.0)
        channel.inject(0.0)  # lurking
        channel.inject(-1.0)
        assert channel.active_steps == 2
        assert channel.steps == 3
        assert channel.mean_effort == pytest.approx(1.0)

    def test_tiny_injections_count_as_lurking(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=1.0))
        channel.inject(ACTIVE_THRESHOLD / 2.0)
        assert channel.active_steps == 0
        assert channel.mean_effort == 0.0

    def test_reset_clears_counters(self):
        channel = InjectionChannel()
        channel.inject(1.0)
        channel.reset()
        assert channel.total_effort == 0.0
        assert channel.mean_effort == 0.0
        assert channel.steps == 0

    def test_effort_reflects_partial_magnitude(self):
        channel = InjectionChannel(InjectionChannelConfig(budget=1.0))
        channel.inject(0.5)
        channel.inject(0.5)
        assert channel.mean_effort == pytest.approx(0.5)
