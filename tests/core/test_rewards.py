"""Tests for adversarial reward shaping (Section IV-D/E)."""

import math

import numpy as np
import pytest

from repro.core.rewards import (
    BETA,
    AdversarialReward,
    AdversarialRewardConfig,
    collision_label,
    critical_moment,
)
from repro.sim import Control, CollisionKind, make_world
from repro.sim.collision import Collision


def make_collision(kind):
    return Collision(kind=kind, ego="ego", other="npc_0", step=3, time=0.3)


class TestCollisionLabel:
    def test_side_is_positive(self):
        assert collision_label(make_collision(CollisionKind.SIDE)) == 1

    @pytest.mark.parametrize(
        "kind", [CollisionKind.FRONT, CollisionKind.REAR, CollisionKind.BARRIER]
    )
    def test_undesired_is_negative(self, kind):
        assert collision_label(make_collision(kind)) == -1

    def test_none_is_zero(self):
        assert collision_label(None) == 0


class TestBeta:
    def test_paper_value(self):
        assert BETA == pytest.approx(math.cos(math.pi / 6.0))


class TestCriticalMoment:
    def test_far_behind_not_critical(self, quiet_world):
        # Ego far behind the NPC: the ego->npc vector aligns with the
        # NPC's heading, omega ~ 1 > beta.
        assert not critical_moment(quiet_world)

    def test_beside_is_critical(self, quiet_world):
        # Teleport ego right beside the first NPC.
        npc = quiet_world.npcs[0].vehicle
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=0.0, speed=16.0
        )
        assert critical_moment(quiet_world)

    def test_no_npcs_not_critical(self, quiet_world):
        quiet_world.npcs.clear()
        assert not critical_moment(quiet_world)


class TestAdversarialReward:
    def setup_method(self):
        self.reward = AdversarialReward()

    def test_side_collision_rewarded(self, quiet_world):
        out = self.reward.step(
            quiet_world, 0.5, make_collision(CollisionKind.SIDE)
        )
        assert out.collision == pytest.approx(10.0)
        assert out.total >= 9.0

    def test_undesired_collision_penalized(self, quiet_world):
        out = self.reward.step(
            quiet_world, 0.5, make_collision(CollisionKind.BARRIER)
        )
        assert out.collision == pytest.approx(-10.0)

    def test_non_critical_maneuver_penalty(self, quiet_world):
        out = self.reward.step(quiet_world, 0.8, None)
        assert not out.critical
        assert out.maneuver == pytest.approx(-0.2 * 0.8)
        assert out.potential == 0.0

    def test_non_critical_zero_delta_no_penalty(self, quiet_world):
        out = self.reward.step(quiet_world, 0.0, None)
        assert out.total == pytest.approx(0.0)

    def test_critical_uses_potential_not_maneuver(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=0.0, speed=16.0
        )
        out = self.reward.step(quiet_world, 1.0, None)
        assert out.critical
        assert out.maneuver == 0.0

    def test_potential_maximized_driving_at_target(self, quiet_world):
        npc = quiet_world.npcs[0].vehicle
        # Ego beside the NPC, heading straight at it (90 deg left).
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=math.pi / 2.0, speed=16.0
        )
        toward = self.reward.step(quiet_world, 1.0, None)
        # Same position, heading away from it.
        quiet_world.ego.teleport(
            npc.state.x, npc.state.y - 3.5, yaw=-math.pi / 2.0, speed=16.0
        )
        away = self.reward.step(quiet_world, 1.0, None)
        assert toward.potential == pytest.approx(1.0, abs=0.05)
        assert away.potential == pytest.approx(-1.0, abs=0.05)

    def test_teacher_term(self, quiet_world):
        out = self.reward.step(quiet_world, 0.6, None, teacher_delta=0.1)
        assert out.teacher == pytest.approx(-1.0 * (0.6 - 0.1) ** 2)

    def test_teacher_term_zero_when_matching(self, quiet_world):
        out = self.reward.step(quiet_world, 0.4, None, teacher_delta=0.4)
        assert out.teacher == 0.0

    def test_custom_config(self, quiet_world):
        reward = AdversarialReward(
            AdversarialRewardConfig(collision_reward=5.0, maneuver_weight=1.0)
        )
        out = reward.step(
            quiet_world, 1.0, make_collision(CollisionKind.SIDE)
        )
        assert out.collision == pytest.approx(5.0)
